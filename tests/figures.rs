//! Structural assertions for the regenerated figures (E4) and the DOT
//! renderer over the real corpus build.

use prospector_core::dot::{neighborhood, DotOptions};
use prospector_core::{GraphConfig, JungloidGraph, NodeId};
use prospector_corpora::{build, eclipse_api, BuildOptions};

#[test]
fn figure1_fragment_has_the_parsing_chain() {
    let api = eclipse_api().unwrap();
    let graph = JungloidGraph::from_api(&api, GraphConfig::default());
    let ifile = api.types().resolve("IFile").unwrap();
    let icu = api.types().resolve("ICompilationUnit").unwrap();
    let dot = neighborhood(
        &api,
        &graph,
        &[NodeId::Ty(ifile), NodeId::Ty(icu)],
        &DotOptions::default(),
    );
    assert!(dot.contains("JavaCore.createCompilationUnitFrom"));
    assert!(dot.contains("AST.parseCompilationUnit"));
    // Figure 1's widening example: IClassFile ⇒ IJavaElement enables
    // classFile.getResource().
    let class_file = api.types().resolve("IClassFile").unwrap();
    let dot2 =
        neighborhood(&api, &graph, &[NodeId::Ty(class_file)], &DotOptions::default());
    assert!(dot2.contains("style=dotted"), "widening edge missing:\n{dot2}");
    assert!(dot2.contains("IJavaElement"));
}

#[test]
fn figure3_naive_graph_admits_cast_anything() {
    let api = eclipse_api().unwrap();
    let graph = JungloidGraph::from_api(&api, GraphConfig::default());
    let naive = graph.with_naive_downcasts(&api);
    let object = api.types().object().unwrap();
    let dot = neighborhood(
        &api,
        &naive,
        &[NodeId::Ty(object)],
        &DotOptions { hops: 1, max_nodes: 500, ..DotOptions::default() },
    );
    // Object sprouts red downcast edges to (many) subtypes.
    assert!(dot.matches("color=red").count() > 20, "expected a red fan from Object");
    assert!(dot.contains("(JavaInspectExpression)"));
}

#[test]
fn figure6_mined_path_renders_dashed_typestate_nodes() {
    let built = build(&BuildOptions::default()).unwrap();
    let engine = built.prospector;
    let api = engine.api();
    let debug_view = api.types().resolve("IDebugView").unwrap();
    let dot = neighborhood(
        api,
        engine.graph(),
        &[NodeId::Ty(debug_view)],
        &DotOptions { hops: 4, max_nodes: 200, ..DotOptions::default() },
    );
    assert!(dot.contains("style=dashed"), "no typestate nodes rendered:\n{dot}");
    assert!(dot.contains("color=red"), "no downcast edges rendered");
    // The mined chain's labels appear.
    assert!(dot.contains("Viewer.getSelection"));
    assert!(dot.contains("(IStructuredSelection)"));
}

#[test]
fn dot_output_is_well_formed() {
    let built = build(&BuildOptions::default()).unwrap();
    let engine = built.prospector;
    let api = engine.api();
    for root in ["IFile", "IWorkbench", "Map", "ZipFile"] {
        let Ok(ty) = api.types().resolve(root) else { continue };
        let dot = neighborhood(
            api,
            engine.graph(),
            &[NodeId::Ty(ty)],
            &DotOptions { hops: 2, ..DotOptions::default() },
        );
        assert!(dot.starts_with("digraph jungloids {"));
        assert!(dot.trim_end().ends_with('}'));
        // Balanced braces and quotes.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('"').count() % 2, 0);
    }
}
