//! Cross-crate integration: the full mining pipeline (§4) from MiniJava
//! source through extraction, generalization, graph splicing, query
//! answering, and persistence.

use prospector_core::generalize::generalize;
use prospector_core::{persist, Prospector};
use prospector_corpora::{build, build_default, corpus_units, eclipse_api, BuildOptions};

#[test]
fn figure2_chain_end_to_end() {
    let prospector = build_default();
    let api = prospector.api();
    let debug_view = api.types().resolve("IDebugView").unwrap();
    let expr = api.types().resolve("JavaInspectExpression").unwrap();
    let result = prospector.query(debug_view, expr).unwrap();
    let top = &result.suggestions[0];
    // Figure 2's jungloid, with both casts.
    assert!(top.code.contains("(IStructuredSelection)"));
    assert!(top.code.contains("(JavaInspectExpression)"));
    assert!(top.code.contains("getViewer()"));
    assert!(top.code.contains("getSelection()"));
    assert!(top.code.contains("getFirstElement()"));
    // And it is well-typed.
    top.jungloid.validate(api).unwrap();
    // The rendered code re-parses as MiniJava.
    jungloid_minijava::parse::parse_expr(&top.code).unwrap();
}

#[test]
fn mining_is_required_for_downcast_queries() {
    let baseline = build(&BuildOptions { mining: false, ..BuildOptions::default() })
        .unwrap()
        .prospector;
    let api = baseline.api();
    let debug_view = api.types().resolve("IDebugView").unwrap();
    let expr = api.types().resolve("JavaInspectExpression").unwrap();
    assert!(baseline.query(debug_view, expr).unwrap().suggestions.is_empty());
}

#[test]
fn generalization_extends_coverage() {
    // With generalization, an example mined from `page.getActivePart()`
    // lends its suffix to *other* producers of the same type; without it,
    // the examples stay whole. Verify via the Figure 7 ant corpus: the
    // generalized graph answers (Project, Target); and both configurations
    // answer the original full chain.
    let with = build(&BuildOptions::default()).unwrap().prospector;
    let without =
        build(&BuildOptions { generalize: false, ..BuildOptions::default() }).unwrap().prospector;

    let api = with.api();
    let project = api.types().resolve("Project").unwrap();
    let target = api.types().resolve("Target").unwrap();
    let r = with.query(project, target).unwrap();
    assert!(
        r.suggestions.iter().any(|s| s.code.contains("getTargets().get(")),
        "generalized suffix should answer (Project, Target): {:?}",
        r.suggestions.iter().map(|s| &s.code).collect::<Vec<_>>()
    );

    // Ungeneralized examples keep their prefixes, so the same query works
    // only from the example's full entry point (String buildFile).
    let api = without.api();
    let project = api.types().resolve("Project").unwrap();
    let target = api.types().resolve("Target").unwrap();
    let r2 = without.query(project, target).unwrap();
    assert!(
        r2.suggestions.iter().all(|s| !s.code.contains("getTargets().get(")),
        "ungeneralized graph should not have the suffix path from Project"
    );
    let string = api.types().resolve("java.lang.String").unwrap();
    let r3 = without.query(string, target).unwrap();
    assert!(
        r3.suggestions.iter().any(|s| s.code.contains("createProject(")),
        "ungeneralized graph should still answer from the example's entry type"
    );
}

#[test]
fn generalization_preserves_figure7_distinction() {
    // Mined raw examples: (Target) …getTargets().get() vs
    // (Task) …getTasks().get() — generalization must keep the
    // distinguishing call (Figure 7's area II), not collapse to bare
    // casts.
    let built = build(&BuildOptions::default()).unwrap();
    let report = built.mine_report.unwrap();
    let generalized = generalize(&report.examples);
    let api = built.prospector.api();
    let descs: Vec<String> = generalized
        .iter()
        .map(|e| e.iter().map(|s| s.label(api)).collect::<Vec<_>>().join(" . "))
        .collect();
    assert!(
        descs.iter().any(|d| d.contains("Project.getTargets") && d.ends_with("(Target)")),
        "got {descs:#?}"
    );
    assert!(
        descs.iter().any(|d| d.contains("Project.getTasks") && d.ends_with("(Task)")),
        "got {descs:#?}"
    );
    // And no bare `(Target)` / `(Task)` suffixes.
    assert!(!descs.iter().any(|d| d == "(Target)" || d == "(Task)"));
}

#[test]
fn corpus_examples_all_well_typed_and_spliceable() {
    let mut api = eclipse_api().unwrap();
    let units = corpus_units().unwrap();
    let lowered = jungloid_dataflow::LoweredCorpus::lower(&mut api, &units).unwrap();
    let miner = jungloid_dataflow::Miner::new(&api, &lowered);
    let report = miner.mine();
    assert!(report.examples.len() >= 10, "only {} examples mined", report.examples.len());
    let mut graph = prospector_core::JungloidGraph::from_api(&api, Default::default());
    for e in &report.examples {
        graph.add_example(&api, e).unwrap_or_else(|err| panic!("{err}"));
        assert!(e.last().unwrap().is_downcast());
    }
}

#[test]
fn persisted_engine_answers_identically() {
    let prospector = build_default();
    let json = persist::to_json(prospector.api(), prospector.graph());
    let loaded = persist::from_json(&json).unwrap();
    let thawed = Prospector::from_parts(loaded.api, loaded.graph);

    for problem in prospector_corpora::problems::table1() {
        let a = prospector_corpora::report::run_problem(&prospector, &problem);
        let b = prospector_corpora::report::run_problem(&thawed, &problem);
        assert_eq!(a.rank, b.rank, "persisted engine diverges on P{}", problem.id);
        assert_eq!(a.candidates, b.candidates);
    }
}

#[test]
fn jungle_does_not_disturb_table1() {
    // The procedural jungle adds distractor mass but must not change the
    // hand-modeled answers (cross-links are rare and jungle types are
    // unreachable from the modeled tins at competitive cost).
    let spec = prospector_corpora::jungle::JungleSpec {
        classes: 400,
        ..prospector_corpora::jungle::JungleSpec::default()
    };
    let with_jungle = build(&BuildOptions { jungle: Some(spec), ..BuildOptions::default() })
        .unwrap()
        .prospector;
    let rows = prospector_corpora::report::run_table1(&with_jungle);
    let found = rows.iter().filter(|r| r.rank.is_some()).count();
    assert!(found >= 18, "jungle broke Table 1: found {found}/20");
}

#[test]
fn suggestions_globally_well_formed() {
    // Every suggestion for every Table 1 query: well-typed jungloid,
    // monotone rank keys, re-parseable code, correct input variable.
    let prospector = build_default();
    let api = prospector.api();
    for problem in prospector_corpora::problems::table1() {
        let tin = api.types().resolve(problem.tin).unwrap();
        let tout = api.types().resolve(problem.tout).unwrap();
        let result = prospector.query(tin, tout).unwrap();
        let mut prev: Option<&prospector_core::RankKey> = None;
        for s in result.suggestions.iter() {
            s.jungloid.validate(api).unwrap_or_else(|e| panic!("P{}: {e}", problem.id));
            assert_eq!(s.jungloid.source, tin);
            assert!(api.types().is_subtype(s.jungloid.output_ty(api), tout) || s.jungloid.output_ty(api) == tout);
            jungloid_minijava::parse::parse_expr(&s.code)
                .unwrap_or_else(|e| panic!("P{}: `{}`: {e}", problem.id, s.code));
            if let Some(p) = prev {
                assert!(p <= &s.key, "P{}: ranking not monotone", problem.id);
            }
            prev = Some(&s.key);
        }
    }
}
