//! Cross-crate property: the whole mining pipeline is *faithful*. For a
//! random well-typed jungloid ending in a downcast, rendered as ordinary
//! client source code, the miner recovers an example that ends in the
//! same downcast — and after splicing, the engine can synthesize code
//! using that cast again.
//!
//! Walks are drawn from seeded deterministic generators — failures
//! reproduce by seed.

use jungloid_dataflow::{LoweredCorpus, Miner};
use jungloid_minijava::ast::TypeName;
use jungloid_minijava::parse::parse_unit;
use prospector_core::synth::{synthesize_statements, ty_to_type_name};
use prospector_core::{GraphConfig, Jungloid, JungloidGraph};
use prospector_corpora::eclipse_api;
use prospector_obs::SmallRng;

/// Renders a jungloid as a full MiniJava compilation unit.
fn render_as_client(api: &jungloid_apidef::Api, j: &Jungloid) -> Option<String> {
    let (stmts, _snippet) = synthesize_statements(api, j, Some("input"));
    let last_var = stmts.iter().rev().find_map(|s| match s {
        jungloid_minijava::ast::Stmt::Local { name, init: Some(_), .. } => Some(name.clone()),
        _ => None,
    })?;
    let ret = ty_to_type_name(api, j.output_ty(api));
    let src_ty: TypeName = ty_to_type_name(api, j.source);
    let mut body = String::new();
    for s in &stmts {
        body.push_str("        ");
        body.push_str(&jungloid_minijava::print::stmt_to_string(s));
        body.push('\n');
    }
    Some(format!(
        "package propcorpus;\nclass PropClient {{\n    {ret} run({src_ty} input) {{\n{body}        return {last_var};\n    }}\n}}\n"
    ))
}

#[test]
fn mining_recovers_rendered_jungloids() {
    for seed in 0..24u64 {
        let api = eclipse_api().unwrap();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let mut rng = SmallRng::seed_from_u64(seed);

        // Random walk from a random declared class.
        let classes: Vec<_> = api
            .types()
            .decls()
            .map(|d| d.id)
            .filter(|&t| !graph.out_edges(prospector_core::NodeId::Ty(t)).is_empty())
            .collect();
        let start = classes[rng.gen_range(0..classes.len())];
        let mut at = prospector_core::NodeId::Ty(start);
        let mut steps = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let edges = graph.out_edges(at);
            if edges.is_empty() {
                break;
            }
            let e = edges[rng.gen_range(0..edges.len())];
            steps.push(e.elem);
            at = e.to;
        }
        // Trailing widenings are invisible in rendered statements, which
        // would make the appended cast cross unrelated types; trim them.
        while steps.last().is_some_and(jungloid_apidef::ElemJungloid::is_widen) {
            steps.pop();
        }
        if steps.iter().filter(|e| !e.is_widen()).count() == 0 {
            continue;
        }
        let out_ty = steps.last().unwrap().output_ty(&api);
        // Arrays make poor cast targets in rendered client code; skip.
        if !matches!(api.types().ty(out_ty), jungloid_typesys::Ty::Decl) {
            continue;
        }
        let subs: Vec<_> = api
            .types()
            .strict_subtypes(out_ty)
            .into_iter()
            .filter(|&s| matches!(api.types().ty(s), jungloid_typesys::Ty::Decl))
            .collect();
        if subs.is_empty() {
            continue;
        }
        let target = subs[rng.gen_range(0..subs.len())];
        steps.push(jungloid_apidef::ElemJungloid::Downcast { from: out_ty, to: target });
        let j = Jungloid::new(&api, steps[0].input_ty(&api), steps).unwrap();
        if j.source == api.types().void() {
            continue;
        }

        // Render as client source…
        let Some(source) = render_as_client(&api, &j) else { continue };
        let unit = parse_unit("prop.mj", &source)
            .unwrap_or_else(|e| panic!("seed {seed}: rendered client failed to parse: {e}\n{source}"));

        // …and mine it back.
        let mut mining_api = eclipse_api().unwrap();
        let lowered = LoweredCorpus::lower(&mut mining_api, &[unit])
            .unwrap_or_else(|e| panic!("seed {seed}: rendered client failed to lower: {e}\n{source}"));
        let mut miner = Miner::new(&mining_api, &lowered);
        miner.config.parallel = false;
        let report = miner.mine();
        assert!(
            report.examples.iter().any(|e| matches!(
                e.last(),
                Some(jungloid_apidef::ElemJungloid::Downcast { to, .. }) if *to == target
            )),
            "seed {seed}: no mined example ends with the rendered cast\nsource:\n{source}\nexamples: {}",
            report.examples.len()
        );

        // Splice the mined examples and re-synthesize across the cast.
        let mut engine = prospector_core::Prospector::new(mining_api);
        engine.add_examples(&report.examples, false).unwrap();
        let result = engine.query(j.source, target).unwrap();
        if result.shortest.is_some() {
            for s in result.suggestions.iter() {
                s.jungloid
                    .validate(engine.api())
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }
}
