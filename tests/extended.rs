//! The extended evaluation: twelve additional problems over the classic
//! downcast-heavy J2SE corners (zip, DOM, Swing trees, JDBC), run against
//! the extended build. Validates that the pipeline generalizes beyond the
//! paper's hand-modeled Eclipse corpus — and that loading the extra APIs
//! does not disturb Table 1.

use prospector_corpora::report::{run_problem, run_table1};
use prospector_corpora::{build, problems_ext, BuildOptions};

fn extended_build() -> prospector_core::Prospector {
    build(&BuildOptions { extended: true, ..BuildOptions::default() })
        .expect("extended corpora assemble")
        .prospector
}

#[test]
fn all_extended_problems_answered() {
    let engine = extended_build();
    for problem in problems_ext::extended() {
        let row = run_problem(&engine, &problem);
        assert!(
            row.rank.is_some(),
            "E{} ({}) unanswered; top = {:?}",
            problem.id,
            problem.label,
            row.top_code
        );
        assert!(
            row.rank.unwrap() <= 3,
            "E{} desired at rank {:?}: top = {:?}",
            problem.id,
            row.rank,
            row.top_code
        );
    }
}

#[test]
fn zip_iteration_idiom_is_rank_one() {
    let engine = extended_build();
    let api = engine.api();
    let zip = api.types().resolve("ZipFile").unwrap();
    let entry = api.types().resolve("ZipEntry").unwrap();
    let result = engine.query(zip, entry).unwrap();
    assert_eq!(
        result.suggestions[0].code,
        "(ZipEntry) zipFile.entries().nextElement()"
    );
    assert!(result.suggestions[0].jungloid.contains_downcast());
}

#[test]
fn dom_and_tree_casts_are_mined() {
    let engine = extended_build();
    let api = engine.api();
    // (Element) list.item(i)
    let list = api.types().resolve("NodeList").unwrap();
    let element = api.types().resolve("Element").unwrap();
    let r = engine.query(list, element).unwrap();
    assert!(r.suggestions[0].code.contains("(Element)"), "{}", r.suggestions[0].code);
    // (Text) vs (Attr) after getFirstChild stay distinguished by their
    // entry types (Figure 7's rule at work in a fresh domain).
    let text = api.types().resolve("Text").unwrap();
    let node = api.types().resolve("org.w3c.dom.Node").unwrap();
    let from_element = engine.query(element, text).unwrap();
    assert!(
        from_element.suggestions.iter().any(|s| s.code.contains("(Text)")),
        "Element -> Text should go through the mined cast"
    );
    let attr = api.types().resolve("Attr").unwrap();
    let from_node = engine.query(node, attr).unwrap();
    assert!(from_node.suggestions.iter().any(|s| s.code.contains("(Attr)")));
}

#[test]
fn extended_pack_does_not_disturb_table1() {
    let engine = extended_build();
    let rows = run_table1(&engine);
    let found = rows.iter().filter(|r| r.rank.is_some()).count();
    assert!(found >= 18, "extended pack broke Table 1: {found}/20");
    // The two headline rows stay put.
    let p1 = rows.iter().find(|r| r.problem.id == 1).unwrap();
    assert_eq!(p1.rank, Some(1));
    let p19 = rows.iter().find(|r| r.problem.id == 19).unwrap();
    assert_eq!(p19.rank, None);
}

#[test]
fn signature_only_loses_the_cast_problems() {
    let engine = build(&BuildOptions {
        extended: true,
        mining: false,
        ..BuildOptions::default()
    })
    .unwrap()
    .prospector;
    let mut lost = 0;
    for problem in problems_ext::extended() {
        let row = run_problem(&engine, &problem);
        if row.rank.is_none() {
            lost += 1;
        }
    }
    // The cast-dependent problems (zip entry, DOM element/text, tree
    // nodes…) all fail without mining.
    assert!(lost >= 5, "expected the downcast problems to fail, lost only {lost}");
}
