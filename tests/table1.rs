//! Integration test for experiment E1: Table 1 (§7).
//!
//! The reproduction targets are the paper's *shape claims*:
//! * the desired solution is found for ≥ 18 of 20 problems (paper: 18);
//! * every found solution appears within the first 5 suggestions;
//! * at least 11 problems put the desired solution at rank 1 (paper: 11);
//! * `(AbstractGraphicalEditPart, ConnectionLayer)` fails *because the
//!   solution needs a protected method* and is fixed by the switch §7
//!   proposes;
//! * all queries answer well under the paper's 1.1 s bound.
//!
//! Exact per-row ranks are asserted where our deterministic tie-breaking
//! reproduces the paper's; the documented deviations (EXPERIMENTS.md) are
//! pinned so regressions are visible.

use prospector_corpora::report::{run_problem, run_table1};
use prospector_corpora::{build, build_default, problems, BuildOptions};

#[test]
fn table1_shape_claims() {
    let prospector = build_default();
    let rows = run_table1(&prospector);
    assert_eq!(rows.len(), 20);

    let found = rows.iter().filter(|r| r.rank.is_some()).count();
    assert!(found >= 18, "found only {found}/20");

    for row in &rows {
        if let Some(rank) = row.rank {
            assert!(
                rank <= 5,
                "P{} desired solution at rank {rank} (> 5): {:?}",
                row.problem.id,
                row.top_code
            );
        }
        assert!(
            row.time.as_secs_f64() < 1.1,
            "P{} took {:?} (paper bound: 1.1 s)",
            row.problem.id,
            row.time
        );
    }

    let rank_one = rows.iter().filter(|r| r.rank == Some(1)).count();
    assert!(rank_one >= 11, "only {rank_one} rank-1 results (paper: 11)");
}

#[test]
fn table1_exact_ranks_where_reproduced() {
    let prospector = build_default();
    let rows = run_table1(&prospector);
    // Rows whose measured rank must equal the paper's exactly.
    let exact: &[(u32, u32)] = &[
        (1, 1),
        (2, 1),
        (3, 1),
        (4, 1),
        (5, 1),
        (6, 1),
        (7, 1),
        (8, 1),
        (9, 1),
        (10, 1),
        (11, 1),
        (12, 2),
        (14, 3),
        (16, 3),
        (17, 4),
    ];
    for &(id, expected) in exact {
        let row = rows.iter().find(|r| r.problem.id == id).expect("row exists");
        assert_eq!(
            row.rank,
            Some(expected as usize),
            "P{id} ({}) measured {:?}, paper {expected}",
            row.problem.label,
            row.raw_rank
        );
    }
    // Pinned documented deviations (see EXPERIMENTS.md): our deterministic
    // tie-breaking ranks these *higher* than the paper's tool did.
    let deviations: &[(u32, usize)] = &[(13, 1), (15, 1), (18, 2), (20, 1)];
    for &(id, measured) in deviations {
        let row = rows.iter().find(|r| r.problem.id == id).expect("row exists");
        assert_eq!(row.rank, Some(measured), "pinned deviation for P{id} moved");
    }
}

#[test]
fn connection_layer_fails_for_the_papers_reason() {
    // Public-only (the paper's configuration): no solution at all.
    let default = build_default();
    let p19 = problems::table1().into_iter().find(|p| p.id == 19).expect("row 19");
    let row = run_problem(&default, &p19);
    assert_eq!(row.rank, None, "P19 should fail under public-only synthesis");
    assert_eq!(row.candidates, 0);

    // With the §7 fix (protected members allowed), the solution appears —
    // and it is the protected `getLayer` plus a mined downcast.
    let fixed = build(&BuildOptions { include_protected: true, ..BuildOptions::default() })
        .expect("assembles")
        .prospector;
    let row = run_problem(&fixed, &p19);
    assert_eq!(row.rank, Some(1), "include_protected should repair P19");
    let top = row.top_code.expect("has top suggestion");
    assert!(top.contains(".getLayer("), "unexpected repair: {top}");
    assert!(top.contains("(ConnectionLayer)"), "repair should keep the mined cast: {top}");
}

#[test]
fn downcast_rows_require_mining() {
    // Rows 5, 15, 16 (and the repaired 19) depend on mined examples;
    // the signature-graph baseline must lose them but keep the pure
    // signature rows.
    let baseline = build(&BuildOptions { mining: false, ..BuildOptions::default() })
        .expect("assembles")
        .prospector;
    let all = problems::table1();
    for p in &all {
        let row = run_problem(&baseline, p);
        match p.id {
            5 | 15 => assert_eq!(
                row.rank, None,
                "P{} should need mining, got {:?}",
                p.id, row.top_code
            ),
            1 | 2 | 3 | 4 | 6 | 7 | 8 | 9 | 10 | 13 => {
                assert!(row.rank.is_some(), "P{} should not need mining", p.id);
            }
            _ => {}
        }
    }
}

#[test]
fn average_time_far_below_paper_budget() {
    let prospector = build_default();
    let rows = run_table1(&prospector);
    let avg = rows.iter().map(|r| r.time.as_secs_f64()).sum::<f64>() / rows.len() as f64;
    // Paper: 0.23 s average on a 2.26 GHz Pentium 4. Allow generous slack
    // for debug builds; the bench measures precisely.
    assert!(avg < 0.25, "average {avg}s exceeds paper's average");
}
