//! Experiment E8-extension — §4.3, "Other applications of jungloid
//! mining": methods with `Object`/`String` parameters usually accept only
//! specific values ("some methods in Eclipse take as input model classes
//! … the method parameters are declared as Object"). The paper sketches —
//! but does not test — mining those parameters like downcasts. This test
//! exercises our implementation of that sketch end to end.

use jungloid_dataflow::{LoweredCorpus, Miner};
use jungloid_minijava::parse::parse_unit;
use prospector_core::{GraphConfig, Prospector};

/// An Eclipse-flavoured model-viewer API: `TreeViewer.setInput(Object)`
/// accepts "any Object" by signature, but real clients only pass model
/// objects.
const MODEL_API: &str = r"
package modelui;

public class TreeContent {}

public class ClassModel extends TreeContent {
    static ClassModel forProject(Workspace w);
}

public class Workspace {
    static Workspace current();
}

public class TreeViewer {
    TreeViewer();
    ViewHandle setInput(Object input);
}

public class ViewHandle {}
";

const MODEL_CORPUS: &str = r#"
package corpus.model;

class ModelWiring {
    ViewHandle showClasses(TreeViewer viewer) {
        ClassModel model = ClassModel.forProject(Workspace.current());
        return viewer.setInput(model);
    }
}
"#;

fn build() -> (jungloid_apidef::Api, jungloid_dataflow::ParamMineReport) {
    let mut loader = jungloid_apidef::ApiLoader::with_prelude();
    loader.add_source("model.api", MODEL_API).unwrap();
    let mut api = loader.finish().unwrap();
    let unit = parse_unit("model.mj", MODEL_CORPUS).unwrap();
    let corpus = LoweredCorpus::lower(&mut api, &[unit]).unwrap();
    let miner = Miner::new(&api, &corpus);
    let weak = [api.types().object().unwrap()];
    let report = miner.mine_params(&weak);
    (api, report)
}

#[test]
fn param_examples_extracted() {
    let (api, report) = build();
    assert!(report.arg_sites >= 1);
    assert!(!report.examples.is_empty());
    // Some example ends in the setInput call, fed by the model chain.
    let descs: Vec<String> = report
        .examples
        .iter()
        .map(|e| e.iter().map(|s| s.label(&api)).collect::<Vec<_>>().join(" . "))
        .collect();
    assert!(
        descs.iter().any(|d| d.contains("ClassModel.forProject") && d.ends_with("TreeViewer.setInput")),
        "got {descs:#?}"
    );
}

#[test]
fn unrestricted_graph_accepts_any_object() {
    // Without the §4.3 restriction, the signature graph will happily pass
    // *anything* into setInput — the inviable-jungloid problem.
    let (api, _) = build();
    let workspace = api.types().resolve("Workspace").unwrap();
    let handle = api.types().resolve("ViewHandle").unwrap();
    let engine = Prospector::new(api);
    let result = engine.query(workspace, handle).unwrap();
    assert!(
        result.suggestions.iter().any(|s| s.code.contains("setInput(workspace)")),
        "expected the any-Object junk route: {:?}",
        result.suggestions.iter().map(|s| &s.code).collect::<Vec<_>>()
    );
}

#[test]
fn restricted_graph_synthesizes_only_mined_usage() {
    let (api, report) = build();
    let workspace = api.types().resolve("Workspace").unwrap();
    let handle = api.types().resolve("ViewHandle").unwrap();
    let mut engine = Prospector::with_config(
        api,
        GraphConfig { restrict_weak_params: true, ..GraphConfig::default() },
    );

    // Restriction alone: setInput is unusable, so no junk route.
    let before = engine.query(workspace, handle).unwrap();
    assert!(
        before.suggestions.iter().all(|s| !s.code.contains("setInput(workspace)")),
        "restriction failed: {:?}",
        before.suggestions.iter().map(|s| &s.code).collect::<Vec<_>>()
    );

    // With parameter mining: the *model* route appears.
    engine.add_param_examples(&report.examples, true).unwrap();
    let after = engine.query(workspace, handle).unwrap();
    let top = after
        .suggestions
        .iter()
        .find(|s| s.code.contains("setInput("))
        .unwrap_or_else(|| panic!(
            "mined param usage missing: {:?}",
            after.suggestions.iter().map(|s| &s.code).collect::<Vec<_>>()
        ));
    assert!(
        top.code.contains("ClassModel.forProject"),
        "synthesized usage should follow the corpus idiom: {}",
        top.code
    );
    top.jungloid.validate(engine.api()).unwrap();
}

#[test]
fn full_corpus_param_mining_is_productive() {
    // Over the bundled Eclipse corpus, parameter mining extracts the
    // getDocument(editor.getEditorInput()) and getAdapter(cls) idioms.
    let mut api = prospector_corpora::eclipse_api().unwrap();
    let units = prospector_corpora::corpus_units().unwrap();
    let corpus = LoweredCorpus::lower(&mut api, &units).unwrap();
    let miner = Miner::new(&api, &corpus);
    let weak = [
        api.types().object().unwrap(),
        api.types().resolve("java.lang.String").unwrap(),
    ];
    let report = miner.mine_params(&weak);
    assert!(report.arg_sites >= 3, "found only {} weak arg sites", report.arg_sites);
    assert!(!report.examples.is_empty());
    let descs: Vec<String> = report
        .examples
        .iter()
        .map(|e| e.iter().map(|s| s.label(&api)).collect::<Vec<_>>().join(" . "))
        .collect();
    assert!(
        descs.iter().any(|d| d.ends_with("IDocumentProvider.getDocument")),
        "expected the getDocument idiom, got {descs:#?}"
    );
}
