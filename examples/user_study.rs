//! Regenerates Figure 8 (§7): the simulated user study — 13 programmers,
//! 4 problems, two solved with Prospector and two without.
//!
//! Run with `cargo run --release --example user_study [seed]`.

use prospector_repro::corpora::build_default;
use prospector_repro::study::{simulate, StudyConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(StudyConfig::default().seed);
    let prospector = build_default();
    let config = StudyConfig { seed, ..StudyConfig::default() };
    let report = simulate(&prospector, &config);
    println!("{}", report.format_figure8());
    println!("{}", report.format_scatter());

    println!("\nper-user totals (minutes):");
    println!("{:>6} {:>12} {:>12} {:>9}", "user", "with tool", "without", "speedup");
    for (u, speedup) in report.user_speedups().iter().enumerate() {
        let total = |with_tool: bool| -> f64 {
            report
                .trials
                .iter()
                .filter(|t| t.user == u && t.with_tool == with_tool)
                .map(|t| t.minutes)
                .sum()
        };
        println!("{:>6} {:>12.1} {:>12.1} {:>8.2}x", u + 1, total(true), total(false), speedup);
    }
    println!(
        "\npaper: average speedup 1.9; 10 of 13 users faster; one user 8x faster;\n\
         baseline users reimplemented or picked inefficient routes where tool users reused."
    );
}
