//! The paper's opening example (§1): parsing a Java source file inside
//! Eclipse. Two of the authors independently lost hours to this — the
//! crucial link is a static method of `JavaCore`, a class neither would
//! think to browse, and grepping for methods returning `ASTNode` misses
//! `parseCompilationUnit` because it returns the *subclass*
//! `CompilationUnit`.
//!
//! Run with `cargo run --example parse_ifile`.

use prospector_repro::corpora::build_default;

fn main() {
    let prospector = build_default();
    let api = prospector.api();

    let ifile = api.types().resolve("IFile").expect("modeled");
    let astnode = api.types().resolve("ASTNode").expect("modeled");

    println!("query: (IFile, ASTNode)\n");
    let result = prospector.query(ifile, astnode).expect("valid query");
    for (i, s) in result.suggestions.iter().take(5).enumerate() {
        println!("{}. {}", i + 1, s.code);
        for decl in s.snippet.free_var_decls(api) {
            println!("     {decl}");
        }
    }

    let top = &result.suggestions[0];
    assert!(top.code.contains("AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom("));

    // Why grep fails (§1): the concrete result type is CompilationUnit,
    // not ASTNode; the graph finds it through a zero-cost widening edge.
    let concrete = top.jungloid.concrete_output_ty(api);
    println!(
        "\nconcrete result type: {} (grep for `ASTNode` would miss it)",
        api.types().display(concrete)
    );
    assert_eq!(api.types().display_simple(concrete), "CompilationUnit");

    println!("\nthe paper's hand-written solution:\n");
    println!("    IFile file = ...;");
    println!("    ICompilationUnit cu = JavaCore.createCompilationUnitFrom(file);");
    println!("    ASTNode ast = AST.parseCompilationUnit(cu, false);");
    println!("\nProspector's insertable block:\n");
    println!("{}", top.snippet.render_block(api, "ast"));
}
