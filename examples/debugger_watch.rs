//! Figure 2's jungloid — getting the watch expression selected in the
//! Java debugger's GUI — cannot be synthesized from signatures alone: it
//! needs two downcasts, and `ISelection` "appears to be a dead end"
//! (§4.1). This example shows the signature-graph baseline failing, then
//! mining Figure 4's corpus method making the query answerable.
//!
//! Run with `cargo run --example debugger_watch`.

use prospector_repro::corpora::{build, BuildOptions};

fn main() {
    // Baseline: signatures only (§3).
    let baseline = build(&BuildOptions { mining: false, ..BuildOptions::default() })
        .expect("corpora assemble")
        .prospector;
    let api = baseline.api();
    let debug_view = api.types().resolve("IDebugView").expect("modeled");
    let expr = api.types().resolve("JavaInspectExpression").expect("modeled");

    println!("query: (IDebugView, JavaInspectExpression)\n");
    let r = baseline.query(debug_view, expr).expect("valid");
    println!("signature graph only: {} solutions (the paper's §4.1 dead end)", r.suggestions.len());
    assert!(r.suggestions.is_empty());

    // With jungloid mining (§4.2): the corpus contains Figure 4's method.
    let mined = build(&BuildOptions::default()).expect("corpora assemble").prospector;
    let api = mined.api();
    let debug_view = api.types().resolve("IDebugView").expect("modeled");
    let expr = api.types().resolve("JavaInspectExpression").expect("modeled");
    let r = mined.query(debug_view, expr).expect("valid");
    println!("with mining: {} solutions\n", r.suggestions.len());
    for (i, s) in r.suggestions.iter().take(3).enumerate() {
        println!("{}. {}", i + 1, s.code);
    }
    let top = &r.suggestions[0];
    assert!(top.jungloid.contains_downcast());
    assert!(top.code.contains("(JavaInspectExpression)"));
    assert!(top.code.contains("(IStructuredSelection)"));

    println!("\nFigure 2's hand-written version:\n");
    println!("    IDebugView debugger = ...;");
    println!("    Viewer viewer = debugger.getViewer();");
    println!("    IStructuredSelection sel = (IStructuredSelection) viewer.getSelection();");
    println!("    JavaInspectExpression expr = (JavaInspectExpression) sel.getFirstElement();");
    println!("\nProspector's statement rendering:\n");
    let (stmts, _) = prospector_repro::core::synthesize_statements(
        api,
        &top.jungloid,
        Some("debugger"),
    );
    for stmt in &stmts {
        println!("{}", prospector_repro::minijava::print::stmt_to_string(stmt));
    }
}
