//! The content-assist flow of §5, end to end: parse a MiniJava file,
//! place the "cursor" on an uninitialized local, infer the query from
//! context (declared type = `tout`; visible variables + `void` = the
//! `tin` set), and print the ranked completions.
//!
//! Run with `cargo run --example content_assist`.

use prospector_repro::corpora::build_default;
use prospector_repro::minijava::ast::Stmt;
use prospector_repro::minijava::parse::parse_unit;
use prospector_repro::typesys::TyId;

const USER_FILE: &str = r"
package myplugin;

class OpenFileAction {
    void run(IWorkbench workbench, IFile selectedFile) {
        ASTNode ast;
    }
}
";

fn main() {
    let prospector = build_default();
    let api = prospector.api();

    let unit = parse_unit("user.mj", USER_FILE).expect("user file parses");
    let method = &unit.classes[0].methods[0];

    // Context inference: params + earlier locals are visible; the
    // uninitialized local's declared type is the target.
    let mut visible: Vec<(String, TyId)> = Vec::new();
    let mut target = None;
    for (ty, name) in &method.params {
        visible.push((name.clone(), api.types().resolve(&ty.parts.join(".")).expect("resolves")));
    }
    for stmt in &method.body {
        if let Stmt::Local { ty, name, init: None } = stmt {
            target = Some((name.clone(), api.types().resolve(&ty.parts.join(".")).expect("resolves")));
        }
    }
    let (var, tout) = target.expect("cursor variable");
    println!("cursor on `{} {var} = |` with visible variables:", api.types().display_simple(tout));
    for (name, ty) in &visible {
        println!("  {} {}", api.types().display_simple(*ty), name);
    }

    let vars: Vec<(&str, TyId)> = visible.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let result = prospector.assist(&vars, tout).expect("valid");
    println!("\ncompletions:");
    for (i, s) in result.suggestions.iter().take(5).enumerate() {
        let from = s.input_var.as_deref().unwrap_or("<nothing>");
        println!("  {}. {}   (from {})", i + 1, s.code, from);
    }
    // The top completion uses the *file* variable, not the workbench.
    let top = &result.suggestions[0];
    assert_eq!(top.input_var.as_deref(), Some("selectedFile"));
    assert!(top.code.contains("createCompilationUnitFrom(selectedFile)"));
    println!("\ninserted:\n    ASTNode {var} = {};", top.code);
}
