//! Regenerates the paper's graph figures as text/DOT:
//!
//! * Figure 1 — a fragment of the signature graph around the parsing
//!   example (`IFile → ICompilationUnit → CompilationUnit ⇒ ASTNode`),
//!   including the widening edge that lets `classFile.getResource()` be
//!   found;
//! * Figure 3 — what goes wrong if *all* downcast edges are added to the
//!   signature graph: short inviable jungloids like
//!   `(JavaInspectExpression) debugger.getViewer().getInput()` appear;
//! * Figure 6 — the jungloid graph: the mined example enters through
//!   fresh typestate nodes, so only code reproducing the example's call
//!   sequence gains the downcast.
//!
//! Run with `cargo run --example graph_figures`.

use prospector_repro::core::{JungloidGraph, NodeId};
use prospector_repro::corpora::{build, eclipse_api, BuildOptions};

fn dot_neighborhood(api: &prospector_repro::apidef::Api, graph: &JungloidGraph, roots: &[&str]) {
    println!("digraph fragment {{");
    println!("  rankdir=LR; node [shape=box];");
    let mut shown: Vec<NodeId> = Vec::new();
    for name in roots {
        let t = api.types().resolve(name).expect("root resolves");
        shown.push(NodeId::Ty(t));
    }
    // One hop out from each root.
    let mut edges = Vec::new();
    let frontier = shown.clone();
    for node in frontier {
        for e in graph.out_edges(node) {
            edges.push((node, e.elem.label(api), e.to, e.elem.is_widen(), e.elem.is_downcast()));
            if !shown.contains(&e.to) {
                shown.push(e.to);
            }
        }
    }
    for node in &shown {
        let label = match node {
            NodeId::Ty(t) => api.types().display_simple(*t),
            NodeId::Mined(i) => format!("{}-{}", api.types().display_simple(graph.base_ty(*node)), i),
        };
        let style = if matches!(node, NodeId::Mined(_)) { ", style=dashed" } else { "" };
        println!("  \"{node:?}\" [label=\"{label}\"{style}];");
    }
    for (from, label, to, widen, cast) in edges {
        let style = if widen {
            " style=dotted"
        } else if cast {
            " color=red"
        } else {
            ""
        };
        println!("  \"{from:?}\" -> \"{to:?}\" [label=\"{label}\"{style}];");
    }
    println!("}}");
}

fn main() {
    let api = eclipse_api().expect("stubs load");
    let signature = JungloidGraph::from_api(&api, prospector_repro::core::GraphConfig::default());

    println!("=== Figure 1: signature-graph fragment (parsing example) ===\n");
    dot_neighborhood(&api, &signature, &["IFile", "ICompilationUnit", "CompilationUnit", "IClassFile"]);

    println!("\n=== Figure 3: naive downcast edges (what the paper avoids) ===\n");
    let naive = signature.with_naive_downcasts(&api);
    println!(
        "signature graph: {} edges; with all downcasts: {} edges (+{})",
        signature.edge_count(),
        naive.edge_count(),
        naive.edge_count() - signature.edge_count()
    );
    // The inviable jungloid the paper calls out becomes expressible:
    let debug_view = api.types().resolve("IDebugView").expect("modeled");
    let expr = api.types().resolve("JavaInspectExpression").expect("modeled");
    let field = prospector_repro::core::DistanceField::towards(&naive, expr);
    // In the naive graph the *shortest* "solution" is casting the input
    // itself (`(JavaInspectExpression) debugger` via a free widening to
    // Object) — precisely why the paper keeps downcasts out of the
    // signature graph. Widen the window to show §4.1's named example.
    let outcome = prospector_repro::core::search::enumerate(
        &naive,
        &[debug_view],
        expr,
        &field,
        &prospector_repro::core::SearchConfig {
            extra_steps: 2,
            ..prospector_repro::core::SearchConfig::default()
        },
    );
    let codes: Vec<String> = outcome
        .jungloids
        .iter()
        .map(|j| prospector_repro::core::synthesize(&api, j, Some("debugger")).code())
        .collect();
    println!(
        "naive graph now \"answers\" (IDebugView, JavaInspectExpression) with {} jungloids,\n\
         shortest (m = {:?}): {}",
        codes.len(),
        outcome.shortest,
        codes.first().map_or("-", |c| c.as_str())
    );
    let inviable = codes.iter().find(|c| c.contains("getInput"));
    match inviable {
        Some(code) => println!("including the always-throws example from §4.1:\n  {code}"),
        None => println!("(§4.1 getInput example beyond the enumeration window)"),
    }
    assert!(inviable.is_some());

    println!("\n=== Figure 6: jungloid-graph fragment (mined typestate path) ===\n");
    let built = build(&BuildOptions::default()).expect("corpora assemble");
    let engine = built.prospector;
    dot_neighborhood(engine.api(), engine.graph(), &["IDebugView", "IStructuredSelection"]);
    println!(
        "\nmined nodes: {} (each mined example runs through fresh typestate nodes)",
        engine.graph().mined_node_count()
    );
}
