//! Quickstart: define a small API, ask Prospector how to get from one
//! type to another, and print insertable code.
//!
//! Run with `cargo run --example quickstart`.

use prospector_repro::apidef::ApiLoader;
use prospector_repro::core::Prospector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe an API. Normally this comes from `.api` stub files; the
    //    format mirrors Java declarations.
    let mut loader = ApiLoader::with_prelude();
    loader.add_source(
        "io.api",
        r"
        package java.io;
        public class InputStream {}
        public class Reader {}
        public class InputStreamReader extends Reader {
            InputStreamReader(InputStream in);
        }
        public class BufferedReader extends Reader {
            BufferedReader(Reader in);
            String readLine();
        }
        ",
    )?;
    let api = loader.finish()?;

    // 2. Build the engine (signature graph, §3.1).
    let tin = api.types().resolve("InputStream")?;
    let tout = api.types().resolve("BufferedReader")?;
    let prospector = Prospector::new(api);

    // 3. Ask: "I have an InputStream, I need a BufferedReader."
    let result = prospector.query(tin, tout)?;
    println!("how do I turn an InputStream into a BufferedReader?");
    for (i, s) in result.suggestions.iter().enumerate() {
        println!("  {}. {}", i + 1, s.code);
    }

    // 4. The top suggestion is the classic idiom, ready to insert.
    let top = &result.suggestions[0];
    assert_eq!(top.code, "new BufferedReader(new InputStreamReader(inputStream))");
    println!("\ninsertable block:\n{}", top.snippet.render_block(prospector.api(), "reader"));
    Ok(())
}
