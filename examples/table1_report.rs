//! Regenerates Table 1 (§7): the twenty query-processing problems, the
//! measured time and rank for each, side by side with the paper's
//! numbers.
//!
//! Run with `cargo run --release --example table1_report`.

use prospector_repro::corpora::{build_default, report};

fn main() {
    let prospector = build_default();
    let rows = report::run_table1(&prospector);
    println!("{}", report::format_table1(&rows));

    let agreements = rows.iter().filter(|r| r.agrees_on_found()).count();
    println!("found/not-found agreement with the paper: {agreements}/20");
    let exact = rows
        .iter()
        .filter(|r| r.rank.map(|x| u32::try_from(x).expect("small")) == r.problem.paper_rank)
        .count();
    println!("exact rank agreement: {exact}/20 (deviations discussed in EXPERIMENTS.md)");
}
