//! The §2.2 walkthrough (Eclipse FAQ 270): "How do I manipulate the data
//! in my visual editor?" — solved by *composing* two jungloid queries.
//! The first answer leaves a free variable (`DocumentProviderRegistry`);
//! the user binds it with a follow-up output-only query, which reduces to
//! jungloid queries over the visible variables plus `void`.
//!
//! Run with `cargo run --example editor_document`.

use prospector_repro::core::synth::synthesize_statements;
use prospector_repro::corpora::build_default;

fn main() {
    let prospector = build_default();
    let api = prospector.api();

    let editor_part = api.types().resolve("IEditorPart").expect("modeled");
    let provider = api.types().resolve("IDocumentProvider").expect("modeled");

    // Query 1: (IEditorPart, IDocumentProvider).
    println!("query 1: (IEditorPart, IDocumentProvider)\n");
    let r1 = prospector.query(editor_part, provider).expect("valid");
    let first = r1
        .suggestions
        .iter()
        .find(|s| s.code.contains("getDocumentProvider(ep") || s.code.contains("getEditorInput"))
        .unwrap_or(&r1.suggestions[0]);
    // Use the named input variable `ep`, like the paper.
    let snippet = prospector_repro::core::synthesize(api, &first.jungloid, Some("ep"));
    println!("{}", snippet.render_block(api, "dp"));

    // The snippet has a free variable of type DocumentProviderRegistry.
    let (free_name, free_ty) = snippet
        .free_vars
        .first()
        .expect("the §2.2 jungloid leaves the registry free")
        .clone();
    println!(
        "\n`{}` is free — follow-up query for {}:",
        free_name,
        api.types().display(free_ty)
    );

    // Query 2: output-only. Visible objects: ep, inp. Their types plus
    // void form the tin set (§2.2 shows the first two fail and the void
    // query succeeds).
    let inp = api.types().resolve("IEditorInput").expect("modeled");
    let r2 = prospector
        .assist(&[("ep", editor_part), ("inp", inp)], free_ty)
        .expect("valid");
    for (i, s) in r2.suggestions.iter().take(3).enumerate() {
        println!("  {}. {}", i + 1, s.code);
    }
    let reg = &r2.suggestions[0];
    assert_eq!(reg.code, "DocumentProviderRegistry.getDefault()");
    assert!(reg.input_var.is_none(), "the registry comes from the void query");

    // Compose: the finished §2.2 code.
    println!("\ncomposed solution (paper §2.2):\n");
    let (stmts, _) = synthesize_statements(api, &first.jungloid, Some("ep"));
    for stmt in &stmts {
        let line = prospector_repro::minijava::print::stmt_to_string(stmt);
        // Bind the free registry variable with query 2's answer.
        if line.ends_with("documentProviderRegistry;") {
            println!(
                "DocumentProviderRegistry documentProviderRegistry = {};",
                reg.code
            );
        } else {
            println!("{line}");
        }
    }
}
