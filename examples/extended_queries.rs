//! The extended evaluation: fourteen additional problems over the
//! classic downcast-heavy J2SE corners (zip archives, DOM, Swing trees,
//! JDBC) — the APIs whose casts defined the pre-generics era the paper
//! mined. Demonstrates the pipeline generalizing beyond the hand-modeled
//! Eclipse corpus.
//!
//! Run with `cargo run --example extended_queries`.

use prospector_repro::corpora::report::{format_table1, run_problem};
use prospector_repro::corpora::{build, problems_ext, BuildOptions};

fn main() {
    let engine = build(&BuildOptions { extended: true, ..BuildOptions::default() })
        .expect("extended corpora assemble")
        .prospector;

    let rows: Vec<_> =
        problems_ext::extended().iter().map(|p| run_problem(&engine, p)).collect();
    println!("=== Extended problem set (beyond the paper's Table 1) ===\n");
    println!("{}", format_table1(&rows));

    println!("highlights:\n");
    for (id, note) in [
        (101u32, "the era-defining zip idiom, mined from the corpus"),
        (106, "DOM's NodeList.item cast"),
        (109, "ranked behind §4.3 constructor junk — see tests/param_mining.rs"),
        (110, "the §3.2 String ambiguity in a fresh domain"),
    ] {
        if let Some(row) = rows.iter().find(|r| r.problem.id == id) {
            let api = engine.api();
            let tin = api.types().resolve(row.problem.tin).unwrap();
            let tout = api.types().resolve(row.problem.tout).unwrap();
            let result = engine.query(tin, tout).unwrap();
            println!("E{id} ({}):", note);
            for (i, s) in result.suggestions.iter().take(2).enumerate() {
                println!("  {}. {}", i + 1, s.code);
            }
            println!();
        }
    }
}
