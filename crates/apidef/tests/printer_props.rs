//! Property: printing any buildable API to `.api` text and reloading it
//! preserves every signature-level fact the synthesizer consumes.
//!
//! Checked over a sweep of seeded random APIs (deterministic — failures
//! reproduce by seed).

use jungloid_apidef::{Api, ApiLoader, FieldDef, MethodDef, Visibility};
use jungloid_typesys::TyId;
use prospector_obs::SmallRng;

fn random_api(seed: u64) -> Api {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut api = ApiLoader::with_prelude().finish().expect("prelude");
    let n_classes = rng.gen_range(2..10);
    let mut classes: Vec<TyId> = Vec::new();
    let mut interfaces: Vec<TyId> = Vec::new();
    for i in 0..n_classes {
        let pkg = format!("p{}", rng.gen_range(0..3));
        if rng.gen_bool(0.3) {
            interfaces.push(api.declare_interface(&pkg, &format!("I{i}")).expect("unique"));
        } else {
            let c = api.declare_class(&pkg, &format!("C{i}")).expect("unique");
            if !classes.is_empty() && rng.gen_bool(0.5) {
                let sup = classes[rng.gen_range(0..classes.len())];
                api.types_mut().set_superclass(c, sup).expect("acyclic by construction");
            }
            if !interfaces.is_empty() && rng.gen_bool(0.4) {
                let iface = interfaces[rng.gen_range(0..interfaces.len())];
                api.types_mut().add_interface(c, iface).expect("acyclic by construction");
            }
            classes.push(c);
        }
    }
    let all: Vec<TyId> = classes.iter().chain(&interfaces).copied().collect();
    let n_methods = rng.gen_range(0..20);
    for m in 0..n_methods {
        let declaring = all[rng.gen_range(0..all.len())];
        let is_iface = interfaces.contains(&declaring);
        let is_ctor = !is_iface && rng.gen_bool(0.2);
        let n_params = rng.gen_range(0..=3);
        let params: Vec<TyId> = (0..n_params)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    api.types().prim(jungloid_typesys::Prim::Int)
                } else {
                    let base = all[rng.gen_range(0..all.len())];
                    if rng.gen_bool(0.15) {
                        api.types_mut().array_of(base)
                    } else {
                        base
                    }
                }
            })
            .collect();
        let ret = if is_ctor {
            declaring
        } else if rng.gen_bool(0.1) {
            api.types().void()
        } else {
            all[rng.gen_range(0..all.len())]
        };
        let named = rng.gen_bool(0.5);
        let _ = api.add_method(MethodDef {
            name: if is_ctor { "<init>".into() } else { format!("m{m}") },
            declaring,
            params: params.clone(),
            param_names: if named {
                (0..params.len()).map(|i| Some(format!("a{i}"))).collect()
            } else {
                Vec::new()
            },
            ret,
            visibility: match rng.gen_range(0..3) {
                0 => Visibility::Public,
                1 => Visibility::Protected,
                _ => Visibility::Private,
            },
            is_static: !is_ctor && rng.gen_bool(0.3),
            is_constructor: is_ctor,
        });
    }
    for f in 0..rng.gen_range(0..6) {
        let declaring = all[rng.gen_range(0..all.len())];
        let ty = all[rng.gen_range(0..all.len())];
        let _ = api.add_field(FieldDef {
            name: format!("f{f}"),
            declaring,
            ty,
            visibility: Visibility::Public,
            is_static: rng.gen_bool(0.4),
        });
    }
    api
}

#[test]
fn print_reload_preserves_signatures() {
    for seed in 0..64u64 {
        let api = random_api(seed);
        let printed = jungloid_apidef::printer::to_stub_text(&api);
        let mut loader = ApiLoader::new();
        loader
            .add_source("printed.api", &printed)
            .unwrap_or_else(|e| panic!("printed text failed to parse: {e}\n{printed}"));
        let reloaded = loader
            .finish()
            .unwrap_or_else(|e| panic!("printed text failed to resolve: {e}\n{printed}"));

        assert_eq!(reloaded.types().len(), api.types().len());
        assert_eq!(reloaded.method_count(), api.method_count());
        assert_eq!(reloaded.field_count(), api.field_count());

        // Every method's signature facts survive (same arena order: the
        // printer emits in declaration order per class, and classes in
        // declaration order).
        for decl in api.types().decls() {
            let other = reloaded
                .types()
                .resolve(&decl.qualified_name())
                .unwrap_or_else(|e| panic!("{e}\n{printed}"));
            assert_eq!(api.methods_of(decl.id).len(), reloaded.methods_of(other).len());
            for (&m1, &m2) in api.methods_of(decl.id).iter().zip(reloaded.methods_of(other)) {
                let d1 = api.method(m1);
                let d2 = reloaded.method(m2);
                assert_eq!(&d1.name, &d2.name);
                assert_eq!(d1.params.len(), d2.params.len());
                assert_eq!(d1.visibility, d2.visibility);
                assert_eq!(d1.is_static, d2.is_static);
                assert_eq!(d1.is_constructor, d2.is_constructor);
                for (&p1, &p2) in d1.params.iter().zip(&d2.params) {
                    assert_eq!(api.types().display(p1), reloaded.types().display(p2));
                }
                assert_eq!(api.types().display(d1.ret), reloaded.types().display(d2.ret));
            }
        }

        // Subtyping agrees on every declared pair.
        for a in api.types().decls() {
            for b in api.types().decls() {
                let a2 = reloaded.types().resolve(&a.qualified_name()).expect("resolves");
                let b2 = reloaded.types().resolve(&b.qualified_name()).expect("resolves");
                assert_eq!(api.types().is_subtype(a.id, b.id), reloaded.types().is_subtype(a2, b2));
            }
        }
    }
}

#[test]
fn json_round_trip_preserves_apis() {
    for seed in 0..64u64 {
        let api = random_api(seed);
        let doc = api.to_json();
        let back = Api::from_json(&doc).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back.types().len(), api.types().len());
        assert_eq!(back.method_count(), api.method_count());
        assert_eq!(back.field_count(), api.field_count());
        for m in api.method_ids() {
            assert_eq!(back.method(m), api.method(m));
        }
        for f in api.field_ids() {
            assert_eq!(back.field(f), api.field(f));
        }
        for decl in api.types().decls() {
            assert_eq!(back.methods_of(decl.id), api.methods_of(decl.id));
            assert_eq!(back.fields_of(decl.id), api.fields_of(decl.id));
        }
        // The serialized text also survives a parse round trip.
        assert_eq!(back.to_json(), doc);
        let text = doc.to_text();
        assert_eq!(prospector_obs::Json::parse(&text).unwrap(), doc);
    }
}
