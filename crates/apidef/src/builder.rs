//! A fluent builder for constructing [`Api`]s programmatically — the
//! ergonomic alternative to `.api` stub text when the API is generated or
//! assembled in code (tests, the jungle generator, downstream tools).
//!
//! ```
//! use jungloid_apidef::{Api, ApiLoader};
//!
//! let mut api = ApiLoader::with_prelude().finish()?;
//! api.class("java.io", "Reader")?;
//! api.class("java.io", "InputStream")?;
//! api.class("java.io", "InputStreamReader")?
//!     .extends("Reader")?
//!     .ctor(&["InputStream"])?;
//! api.class("java.io", "BufferedReader")?
//!     .extends("Reader")?
//!     .ctor(&["Reader"])?
//!     .method("readLine", &[], "String")?;
//!
//! let br = api.types().resolve("BufferedReader")?;
//! assert_eq!(api.constructors_of(br).len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use jungloid_typesys::{Prim, TyId, TypeKind};

use crate::{Api, ApiError, FieldDef, MethodDef, Visibility};

impl Api {
    /// Declares a class and returns a builder for its hierarchy and
    /// members.
    ///
    /// # Errors
    ///
    /// Fails on duplicate type names.
    pub fn class<'a>(&'a mut self, package: &str, name: &str) -> Result<ClassBuilder<'a>, ApiError> {
        let ty = self.declare_class(package, name)?;
        Ok(ClassBuilder { api: self, ty })
    }

    /// Declares an interface and returns a builder.
    ///
    /// # Errors
    ///
    /// Fails on duplicate type names.
    pub fn interface<'a>(
        &'a mut self,
        package: &str,
        name: &str,
    ) -> Result<ClassBuilder<'a>, ApiError> {
        let ty = self.declare_interface(package, name)?;
        Ok(ClassBuilder { api: self, ty })
    }

    /// Parses a builder type name: `void`, a primitive keyword, a
    /// simple/qualified declared name, with `[]` suffixes.
    ///
    /// # Errors
    ///
    /// Unknown or ambiguous names fail.
    pub fn parse_type(&mut self, name: &str) -> Result<TyId, ApiError> {
        let mut dims = 0;
        let mut base = name.trim();
        while let Some(stripped) = base.strip_suffix("[]") {
            base = stripped.trim_end();
            dims += 1;
        }
        let mut ty = if base == "void" {
            self.types().void()
        } else if let Some(p) = Prim::from_keyword(base) {
            self.types().prim(p)
        } else {
            self.types().resolve(base)?
        };
        for _ in 0..dims {
            ty = self.types_mut().array_of(ty);
        }
        Ok(ty)
    }
}

/// Builder over one declared class or interface.
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    api: &'a mut Api,
    ty: TyId,
}

impl ClassBuilder<'_> {
    /// The id of the type under construction.
    #[must_use]
    pub fn ty(&self) -> TyId {
        self.ty
    }

    /// Sets the superclass (classes) by name.
    ///
    /// # Errors
    ///
    /// Propagates resolution and hierarchy errors.
    pub fn extends(&mut self, name: &str) -> Result<&mut Self, ApiError> {
        let sup = self.api.types().resolve(name)?;
        match self.api.types().kind(self.ty) {
            Some(TypeKind::Class) => self.api.types_mut().set_superclass(self.ty, sup)?,
            _ => self.api.types_mut().add_interface(self.ty, sup)?,
        }
        Ok(self)
    }

    /// Adds an implemented/extended interface by name.
    ///
    /// # Errors
    ///
    /// Propagates resolution and hierarchy errors.
    pub fn implements(&mut self, name: &str) -> Result<&mut Self, ApiError> {
        let iface = self.api.types().resolve(name)?;
        self.api.types_mut().add_interface(self.ty, iface)?;
        Ok(self)
    }

    /// Adds a public constructor with the given parameter type names.
    ///
    /// # Errors
    ///
    /// Propagates resolution and duplicate-member errors.
    pub fn ctor(&mut self, params: &[&str]) -> Result<&mut Self, ApiError> {
        let params = self.parse_params(params)?;
        self.api.add_method(MethodDef {
            name: "<init>".to_owned(),
            declaring: self.ty,
            params,
            param_names: Vec::new(),
            ret: self.ty,
            visibility: Visibility::Public,
            is_static: false,
            is_constructor: true,
        })?;
        Ok(self)
    }

    /// Adds a public instance method.
    ///
    /// # Errors
    ///
    /// Propagates resolution and duplicate-member errors.
    pub fn method(&mut self, name: &str, params: &[&str], ret: &str) -> Result<&mut Self, ApiError> {
        self.add(name, params, ret, Visibility::Public, false)
    }

    /// Adds a public static method.
    ///
    /// # Errors
    ///
    /// Propagates resolution and duplicate-member errors.
    pub fn static_method(
        &mut self,
        name: &str,
        params: &[&str],
        ret: &str,
    ) -> Result<&mut Self, ApiError> {
        self.add(name, params, ret, Visibility::Public, true)
    }

    /// Adds a protected instance method (for exercising the §7 visibility
    /// rules).
    ///
    /// # Errors
    ///
    /// Propagates resolution and duplicate-member errors.
    pub fn protected_method(
        &mut self,
        name: &str,
        params: &[&str],
        ret: &str,
    ) -> Result<&mut Self, ApiError> {
        self.add(name, params, ret, Visibility::Protected, false)
    }

    /// Adds a public instance field.
    ///
    /// # Errors
    ///
    /// Propagates resolution and duplicate-member errors.
    pub fn field(&mut self, name: &str, ty: &str) -> Result<&mut Self, ApiError> {
        let ty = self.api.parse_type(ty)?;
        self.api.add_field(FieldDef {
            name: name.to_owned(),
            declaring: self.ty,
            ty,
            visibility: Visibility::Public,
            is_static: false,
        })?;
        Ok(self)
    }

    /// Adds a public static field.
    ///
    /// # Errors
    ///
    /// Propagates resolution and duplicate-member errors.
    pub fn static_field(&mut self, name: &str, ty: &str) -> Result<&mut Self, ApiError> {
        let ty = self.api.parse_type(ty)?;
        self.api.add_field(FieldDef {
            name: name.to_owned(),
            declaring: self.ty,
            ty,
            visibility: Visibility::Public,
            is_static: true,
        })?;
        Ok(self)
    }

    fn add(
        &mut self,
        name: &str,
        params: &[&str],
        ret: &str,
        visibility: Visibility,
        is_static: bool,
    ) -> Result<&mut Self, ApiError> {
        let params = self.parse_params(params)?;
        let ret = self.api.parse_type(ret)?;
        self.api.add_method(MethodDef {
            name: name.to_owned(),
            declaring: self.ty,
            params,
            param_names: Vec::new(),
            ret,
            visibility,
            is_static,
            is_constructor: false,
        })?;
        Ok(self)
    }

    fn parse_params(&mut self, params: &[&str]) -> Result<Vec<TyId>, ApiError> {
        params.iter().map(|p| self.api.parse_type(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApiLoader;

    #[test]
    fn fluent_construction() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        api.interface("u", "IBase").unwrap();
        api.class("u", "Base").unwrap().implements("IBase").unwrap();
        api.class("u", "Derived")
            .unwrap()
            .extends("Base")
            .unwrap()
            .ctor(&["String"])
            .unwrap()
            .method("sibling", &["Derived", "int"], "Base")
            .unwrap()
            .static_method("make", &[], "Derived")
            .unwrap()
            .protected_method("inner", &[], "Base")
            .unwrap()
            .field("data", "Object")
            .unwrap()
            .static_field("ALL", "Derived[]")
            .unwrap();

        let derived = api.types().resolve("Derived").unwrap();
        let base = api.types().resolve("Base").unwrap();
        let ibase = api.types().resolve("IBase").unwrap();
        assert!(api.types().is_subtype(derived, base));
        assert!(api.types().is_subtype(derived, ibase));
        assert_eq!(api.lookup_constructor(derived, 1).len(), 1);
        assert_eq!(api.lookup_instance_method(derived, "sibling", 2).len(), 1);
        assert_eq!(api.lookup_static_method(derived, "make", 0).len(), 1);
        let inner = api.lookup_instance_method(derived, "inner", 0)[0];
        assert_eq!(api.method(inner).visibility, Visibility::Protected);
        let all = api.lookup_field(derived, "ALL").unwrap();
        assert!(api.field(all).is_static);
    }

    #[test]
    fn interface_extends_goes_to_interface_list() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        api.interface("u", "IA").unwrap();
        api.interface("u", "IB").unwrap().extends("IA").unwrap();
        let ia = api.types().resolve("IA").unwrap();
        let ib = api.types().resolve("IB").unwrap();
        assert!(api.types().is_subtype(ib, ia));
    }

    #[test]
    fn parse_type_handles_arrays_prims_void() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        assert_eq!(api.parse_type("void").unwrap(), api.types().void());
        assert_eq!(
            api.parse_type("int").unwrap(),
            api.types().prim(jungloid_typesys::Prim::Int)
        );
        let arr = api.parse_type("String[][]").unwrap();
        let jungloid_typesys::Ty::Array(inner) = api.types().ty(arr) else { panic!() };
        assert!(matches!(api.types().ty(inner), jungloid_typesys::Ty::Array(_)));
        assert!(api.parse_type("Nope").is_err());
    }

    #[test]
    fn builder_errors_propagate() {
        let mut api = ApiLoader::with_prelude().finish().unwrap();
        api.class("u", "A").unwrap();
        assert!(api.class("u", "A").is_err()); // duplicate
        let mut b = api.class("u", "B").unwrap();
        assert!(b.extends("Nope").is_err());
        assert!(b.method("m", &["Nope"], "A").is_err());
    }
}
