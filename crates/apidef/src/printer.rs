//! Rendering an [`Api`] back to `.api` stub text.
//!
//! Useful for debugging modeled APIs, for dumping procedurally generated
//! jungles into reviewable form, and as a round-trip oracle: an `Api`
//! printed and reloaded must describe the same signatures.

use std::fmt::Write as _;

use jungloid_typesys::{Ty, TyId, TypeKind};

use crate::{Api, Visibility};

/// Renders every declared type of `api` as `.api` stub text, grouped by
/// package (packages and members in declaration order).
#[must_use]
pub fn to_stub_text(api: &Api) -> String {
    let mut out = String::new();
    let mut current_package: Option<String> = None;
    for decl in api.types().decls() {
        let pkg = decl.package_name.to_owned();
        if current_package.as_deref() != Some(&pkg) {
            if current_package.is_some() {
                out.push('\n');
            }
            let _ = writeln!(out, "package {pkg};\n");
            current_package = Some(pkg);
        }
        let kind = match decl.kind {
            TypeKind::Class => "class",
            TypeKind::Interface => "interface",
        };
        let _ = write!(out, "public {kind} {}", decl.simple_name);
        match decl.kind {
            TypeKind::Class => {
                if let Some(sup) = decl.superclass {
                    let _ = write!(out, " extends {}", api.types().display(sup));
                }
                if !decl.interfaces.is_empty() {
                    let names: Vec<String> =
                        decl.interfaces.iter().map(|&i| api.types().display(i)).collect();
                    let _ = write!(out, " implements {}", names.join(", "));
                }
            }
            TypeKind::Interface => {
                if !decl.interfaces.is_empty() {
                    let names: Vec<String> =
                        decl.interfaces.iter().map(|&i| api.types().display(i)).collect();
                    let _ = write!(out, " extends {}", names.join(", "));
                }
            }
        }
        out.push_str(" {\n");
        for &f in api.fields_of(decl.id) {
            let field = api.field(f);
            let _ = writeln!(
                out,
                "    {}{}{} {};",
                vis_prefix(field.visibility),
                if field.is_static { "static " } else { "" },
                type_text(api, field.ty),
                field.name
            );
        }
        for &m in api.methods_of(decl.id) {
            let def = api.method(m);
            let params: Vec<String> = def
                .params
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let name = def.param_names.get(i).and_then(|n| n.as_deref());
                    match name {
                        Some(n) => format!("{} {n}", type_text(api, p)),
                        None => type_text(api, p),
                    }
                })
                .collect();
            if def.is_constructor {
                let _ = writeln!(
                    out,
                    "    {}{}({});",
                    vis_prefix(def.visibility),
                    decl.simple_name,
                    params.join(", ")
                );
            } else {
                let _ = writeln!(
                    out,
                    "    {}{}{} {}({});",
                    vis_prefix(def.visibility),
                    if def.is_static { "static " } else { "" },
                    type_text(api, def.ret),
                    def.name,
                    params.join(", ")
                );
            }
        }
        out.push_str("}\n\n");
    }
    out
}

fn vis_prefix(v: Visibility) -> &'static str {
    match v {
        Visibility::Public => "",
        Visibility::Protected => "protected ",
        Visibility::Private => "private ",
    }
}

/// Qualified type text as the stub grammar expects it.
fn type_text(api: &Api, ty: TyId) -> String {
    match api.types().ty(ty) {
        Ty::Void => "void".to_owned(),
        Ty::Prim(p) => p.keyword().to_owned(),
        Ty::Array(elem) => format!("{}[]", type_text(api, elem)),
        _ => api.types().display(ty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApiLoader;

    fn load(text: &str) -> Api {
        let mut loader = ApiLoader::new();
        loader.add_source("printed.api", text).unwrap();
        loader.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_shape() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public interface I { Object pick(String key); }
                public class A implements I {
                    A(int size);
                    static A[] all();
                    protected String hidden();
                    static int COUNT;
                    Object data;
                }
                public class B extends A {
                    B(int size);
                }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let printed = to_stub_text(&api);
        let reloaded = load(&printed);

        assert_eq!(reloaded.types().len(), api.types().len());
        assert_eq!(reloaded.method_count(), api.method_count());
        assert_eq!(reloaded.field_count(), api.field_count());

        let a = reloaded.types().resolve("t.A").unwrap();
        let b = reloaded.types().resolve("t.B").unwrap();
        let i = reloaded.types().resolve("t.I").unwrap();
        assert!(reloaded.types().is_subtype(b, a));
        assert!(reloaded.types().is_subtype(a, i));
        assert_eq!(reloaded.lookup_constructor(a, 1).len(), 1);
        let hidden = reloaded.lookup_instance_method(a, "hidden", 0)[0];
        assert_eq!(reloaded.method(hidden).visibility, Visibility::Protected);
        let all = reloaded.lookup_static_method(a, "all", 0)[0];
        assert!(matches!(
            reloaded.types().ty(reloaded.method(all).ret),
            jungloid_typesys::Ty::Array(_)
        ));
    }

    #[test]
    fn double_round_trip_is_fixed_point() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source("t.api", "package t; public class A { A(String name); B toB(); } public class B {}")
            .unwrap();
        let api = loader.finish().unwrap();
        let once = to_stub_text(&api);
        let twice = to_stub_text(&load(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn parameter_names_survive() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source("t.api", "package t; public class A { static A make(String label, int n); }")
            .unwrap();
        let api = loader.finish().unwrap();
        let printed = to_stub_text(&api);
        assert!(printed.contains("static t.A make(java.lang.String label, int n);"), "{printed}");
    }
}
