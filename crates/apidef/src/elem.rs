//! Elementary jungloids (paper §2.1, Definition 2).
//!
//! An elementary jungloid is a typed unary expression `λx.e : T → U`. The
//! paper defines six kinds for Java; we reify them as [`ElemJungloid`]:
//!
//! | paper kind                        | representation                          |
//! |-----------------------------------|-----------------------------------------|
//! | field access                      | `FieldAccess` (instance: `T → U`; static: `void → U`) |
//! | static method / constructor       | `Call { input: Some(Arg(i)) }` per class-typed parameter, or `Call { input: None }` (`void → U`) when none |
//! | instance method                   | `Call { input: Some(Receiver) }` plus one per class-typed parameter |
//! | widening reference conversion     | `Widen` (`T → U`, `T <: U`, zero length) |
//! | downcast                          | `Downcast` (`T → U`, `U <: T`; never derived from signatures — only mined) |
//!
//! Parameters other than the consumed input slot are *free variables*
//! (§2.1): they are left unbound during synthesis and the user fills them
//! in afterwards, typically with a follow-up query.

use jungloid_typesys::{Ty, TyId};
use prospector_obs::json::{decode_err, Json, JsonError};

use crate::model::{ty_ref, want_ty};
use crate::{Api, FieldId, MethodId};

/// Which of a method's value inputs an elementary jungloid consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputSlot {
    /// The receiver of an instance method.
    Receiver,
    /// The `i`-th parameter.
    Arg(usize),
}

/// One elementary jungloid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElemJungloid {
    /// Reading a field: instance fields are `declaring → fieldty`; static
    /// fields have no value input and are `void → fieldty`.
    FieldAccess {
        /// The accessed field.
        field: FieldId,
    },
    /// Invoking a method or constructor, consuming `input`.
    /// `input == None` means the call has no class-typed inputs (a static
    /// method or constructor whose parameters are all primitive or absent):
    /// the jungloid is `void → ret`.
    Call {
        /// The invoked method.
        method: MethodId,
        /// Consumed slot, if any.
        input: Option<InputSlot>,
    },
    /// The no-syntax widening reference conversion `from <: to`.
    Widen {
        /// Source type.
        from: TyId,
        /// Target (super)type.
        to: TyId,
    },
    /// A downcast `(to) x` with `to <: from`.
    Downcast {
        /// Static type of the operand.
        from: TyId,
        /// Target (sub)type.
        to: TyId,
    },
}

impl ElemJungloid {
    /// The input type `T` of this `T → U` jungloid (`void` for
    /// zero-argument jungloids).
    #[must_use]
    pub fn input_ty(&self, api: &Api) -> TyId {
        match *self {
            ElemJungloid::FieldAccess { field } => {
                let def = api.field(field);
                if def.is_static {
                    api.types().void()
                } else {
                    def.declaring
                }
            }
            ElemJungloid::Call { method, input } => {
                let def = api.method(method);
                match input {
                    None => api.types().void(),
                    Some(InputSlot::Receiver) => def.declaring,
                    Some(InputSlot::Arg(i)) => def.params[i],
                }
            }
            ElemJungloid::Widen { from, .. } | ElemJungloid::Downcast { from, .. } => from,
        }
    }

    /// The output type `U` of this `T → U` jungloid.
    #[must_use]
    pub fn output_ty(&self, api: &Api) -> TyId {
        match *self {
            ElemJungloid::FieldAccess { field } => api.field(field).ty,
            ElemJungloid::Call { method, .. } => api.method(method).ret,
            ElemJungloid::Widen { to, .. } | ElemJungloid::Downcast { to, .. } => to,
        }
    }

    /// Whether this is a widening conversion (length 0 in ranking, §3.2:
    /// "we do not count widening elementary jungloids in computing the
    /// length").
    #[must_use]
    pub fn is_widen(&self) -> bool {
        matches!(self, ElemJungloid::Widen { .. })
    }

    /// Whether this is a downcast.
    #[must_use]
    pub fn is_downcast(&self) -> bool {
        matches!(self, ElemJungloid::Downcast { .. })
    }

    /// Free variables left by this jungloid, split into
    /// `(reference-typed, primitive-typed)` counts.
    ///
    /// For a call consuming one slot, every other parameter — plus the
    /// receiver, when an argument slot of an instance method is consumed —
    /// is free.
    #[must_use]
    pub fn free_var_counts(&self, api: &Api) -> (u32, u32) {
        let ElemJungloid::Call { method, input } = *self else { return (0, 0) };
        let def = api.method(method);
        let mut refs = 0;
        let mut prims = 0;
        let mut count = |ty: TyId| {
            if matches!(api.types().ty(ty), Ty::Prim(_)) {
                prims += 1;
            } else {
                refs += 1;
            }
        };
        if def.needs_receiver() && input != Some(InputSlot::Receiver) {
            count(def.declaring);
        }
        for (i, &p) in def.params.iter().enumerate() {
            if input != Some(InputSlot::Arg(i)) {
                count(p);
            }
        }
        (refs, prims)
    }

    /// The types of the free variables, in receiver-then-parameter order.
    #[must_use]
    pub fn free_var_types(&self, api: &Api) -> Vec<TyId> {
        let ElemJungloid::Call { method, input } = *self else { return Vec::new() };
        let def = api.method(method);
        let mut out = Vec::new();
        if def.needs_receiver() && input != Some(InputSlot::Receiver) {
            out.push(def.declaring);
        }
        for (i, &p) in def.params.iter().enumerate() {
            if input != Some(InputSlot::Arg(i)) {
                out.push(p);
            }
        }
        out
    }

    /// Short human-readable label, e.g. `widen`, `(IFile)`,
    /// `JavaCore.createCompilationUnitFrom`.
    #[must_use]
    pub fn label(&self, api: &Api) -> String {
        match *self {
            ElemJungloid::FieldAccess { field } => {
                let def = api.field(field);
                format!("{}.{}", api.types().display_simple(def.declaring), def.name)
            }
            ElemJungloid::Call { method, .. } => {
                let def = api.method(method);
                let who = api.types().display_simple(def.declaring);
                if def.is_constructor {
                    format!("new {who}")
                } else {
                    format!("{who}.{}", def.name)
                }
            }
            ElemJungloid::Widen { .. } => "widen".to_owned(),
            ElemJungloid::Downcast { to, .. } => {
                format!("({})", api.types().display_simple(to))
            }
        }
    }
}

impl ElemJungloid {
    /// Serializes to a JSON value (tagged by `"k"`; member references are
    /// arena indexes, so they only decode against the same API).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match *self {
            ElemJungloid::FieldAccess { field } => Json::obj(vec![
                ("k", Json::Str("field".to_owned())),
                ("field", Json::num_u(field.index() as u64)),
            ]),
            ElemJungloid::Call { method, input } => Json::obj(vec![
                ("k", Json::Str("call".to_owned())),
                ("method", Json::num_u(method.index() as u64)),
                (
                    "input",
                    match input {
                        None => Json::Null,
                        Some(InputSlot::Receiver) => Json::Str("recv".to_owned()),
                        Some(InputSlot::Arg(i)) => Json::num_u(i as u64),
                    },
                ),
            ]),
            ElemJungloid::Widen { from, to } => Json::obj(vec![
                ("k", Json::Str("widen".to_owned())),
                ("from", ty_ref(from)),
                ("to", ty_ref(to)),
            ]),
            ElemJungloid::Downcast { from, to } => Json::obj(vec![
                ("k", Json::Str("cast".to_owned())),
                ("from", ty_ref(from)),
                ("to", ty_ref(to)),
            ]),
        }
    }

    /// Decodes [`ElemJungloid::to_json`] output, validating every member
    /// and type reference against `api`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown tag or an out-of-range reference.
    pub fn from_json(v: &Json, api: &Api) -> Result<ElemJungloid, JsonError> {
        let kind = v.want("k")?.as_str().ok_or_else(|| decode_err("`k` must be a string"))?;
        let arena_len = api.types().len();
        match kind {
            "field" => {
                let idx = want_index(v.want("field")?, api.field_count(), "field")?;
                Ok(ElemJungloid::FieldAccess { field: FieldId::from_index(idx) })
            }
            "call" => {
                let idx = want_index(v.want("method")?, api.method_count(), "method")?;
                let method = MethodId::from_index(idx);
                let input = match v.want("input")? {
                    Json::Null => None,
                    Json::Str(s) if s == "recv" => Some(InputSlot::Receiver),
                    arg => {
                        let i =
                            want_index(arg, api.method(method).params.len(), "parameter slot")?;
                        Some(InputSlot::Arg(i))
                    }
                };
                Ok(ElemJungloid::Call { method, input })
            }
            "widen" => Ok(ElemJungloid::Widen {
                from: want_ty(v.want("from")?, arena_len)?,
                to: want_ty(v.want("to")?, arena_len)?,
            }),
            "cast" => Ok(ElemJungloid::Downcast {
                from: want_ty(v.want("from")?, arena_len)?,
                to: want_ty(v.want("to")?, arena_len)?,
            }),
            other => Err(decode_err(format!("unknown elementary jungloid kind `{other}`"))),
        }
    }
}

fn want_index(v: &Json, len: usize, what: &str) -> Result<usize, JsonError> {
    let idx = v.as_u64().ok_or_else(|| decode_err(format!("{what} must be an integer")))?;
    let idx = usize::try_from(idx).map_err(|_| decode_err(format!("{what} out of range")))?;
    if idx >= len {
        return Err(decode_err(format!("{what} index {idx} out of range (<{len})")));
    }
    Ok(idx)
}

/// Enumerates every non-downcast elementary jungloid an API member
/// induces, as `(elem)` entries. Used by signature-graph construction and
/// by tests that need the full §2.1 expansion of a member.
#[must_use]
pub fn elems_of_method(api: &Api, method: MethodId) -> Vec<ElemJungloid> {
    let def = api.method(method);
    // Definition 2 requires the output to be a class type: methods
    // returning `void` produce no value, and primitive-returning methods
    // produce values that can never be a jungloid's output (§2.1
    // footnote 4 excludes primitives end-to-end).
    if !api.types().is_reference(def.ret) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut any_class_input = false;
    if def.needs_receiver() {
        any_class_input = true;
        out.push(ElemJungloid::Call { method, input: Some(InputSlot::Receiver) });
    }
    for (i, &p) in def.params.iter().enumerate() {
        if api.types().is_reference(p) {
            any_class_input = true;
            out.push(ElemJungloid::Call { method, input: Some(InputSlot::Arg(i)) });
        }
    }
    if !any_class_input {
        // Static method or constructor with no class-typed parameters:
        // `void → ret` (§2.1: "Using void in this way extends jungloids to
        // cover expressions with no input values").
        out.push(ElemJungloid::Call { method, input: None });
    }
    out
}

/// The elementary jungloid induced by a field (§2.1 field access).
#[must_use]
pub fn elem_of_field(field: FieldId) -> ElemJungloid {
    ElemJungloid::FieldAccess { field }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApiLoader, Visibility};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A {}
                public class B {}
                public class C {
                    C(A a, int n);
                    static B combine(A a, B b);
                    B pick(A a);
                    B zero();
                    static B lone();
                    void consume(A a);
                    A data;
                    static A shared;
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn find(api: &Api, class: &str, name: &str) -> MethodId {
        let c = api.types().resolve(class).unwrap();
        api.methods_of(c)
            .iter()
            .copied()
            .find(|&m| api.method(m).name == name)
            .unwrap()
    }

    #[test]
    fn constructor_expansion() {
        let api = api();
        let ctor = {
            let c = api.types().resolve("t.C").unwrap();
            api.constructors_of(c)[0]
        };
        let elems = elems_of_method(&api, ctor);
        // One per class-typed parameter: only `A a` (int is primitive).
        assert_eq!(elems.len(), 1);
        let a = api.types().resolve("t.A").unwrap();
        let c = api.types().resolve("t.C").unwrap();
        assert_eq!(elems[0].input_ty(&api), a);
        assert_eq!(elems[0].output_ty(&api), c);
        // The int parameter is a primitive free variable.
        assert_eq!(elems[0].free_var_counts(&api), (0, 1));
    }

    #[test]
    fn static_two_ref_params() {
        let api = api();
        let m = find(&api, "t.C", "combine");
        let elems = elems_of_method(&api, m);
        assert_eq!(elems.len(), 2);
        // Each consumes one slot and leaves the other free (reference).
        for e in &elems {
            assert_eq!(e.free_var_counts(&api), (1, 0));
        }
    }

    #[test]
    fn instance_method_receiver_and_arg() {
        let api = api();
        let m = find(&api, "t.C", "pick");
        let elems = elems_of_method(&api, m);
        assert_eq!(elems.len(), 2);
        let c = api.types().resolve("t.C").unwrap();
        let a = api.types().resolve("t.A").unwrap();
        let recv = elems.iter().find(|e| e.input_ty(&api) == c).unwrap();
        let arg = elems.iter().find(|e| e.input_ty(&api) == a).unwrap();
        // Consuming the receiver leaves `A a` free; consuming the argument
        // leaves the receiver free.
        assert_eq!(recv.free_var_counts(&api), (1, 0));
        assert_eq!(arg.free_var_counts(&api), (1, 0));
        assert_eq!(arg.free_var_types(&api), vec![c]);
    }

    #[test]
    fn instance_zero_arg_is_receiver_only() {
        let api = api();
        let m = find(&api, "t.C", "zero");
        let elems = elems_of_method(&api, m);
        assert_eq!(elems.len(), 1);
        assert_eq!(elems[0].free_var_counts(&api), (0, 0));
    }

    #[test]
    fn static_no_params_is_void_input() {
        let api = api();
        let m = find(&api, "t.C", "lone");
        let elems = elems_of_method(&api, m);
        assert_eq!(elems.len(), 1);
        assert_eq!(elems[0].input_ty(&api), api.types().void());
    }

    #[test]
    fn void_return_is_not_a_jungloid() {
        let api = api();
        let m = find(&api, "t.C", "consume");
        assert!(elems_of_method(&api, m).is_empty());
    }

    #[test]
    fn field_elementaries() {
        let api = api();
        let c = api.types().resolve("t.C").unwrap();
        let a = api.types().resolve("t.A").unwrap();
        let data = api.lookup_field(c, "data").unwrap();
        let shared = api.lookup_field(c, "shared").unwrap();
        let e1 = elem_of_field(data);
        assert_eq!(e1.input_ty(&api), c);
        assert_eq!(e1.output_ty(&api), a);
        let e2 = elem_of_field(shared);
        assert_eq!(e2.input_ty(&api), api.types().void());
        assert_eq!(e2.output_ty(&api), a);
    }

    #[test]
    fn widen_and_downcast_types() {
        let api = api();
        let a = api.types().resolve("t.A").unwrap();
        let obj = api.types().object().unwrap();
        let w = ElemJungloid::Widen { from: a, to: obj };
        assert!(w.is_widen());
        assert_eq!(w.input_ty(&api), a);
        assert_eq!(w.output_ty(&api), obj);
        let d = ElemJungloid::Downcast { from: obj, to: a };
        assert!(d.is_downcast());
        assert_eq!(d.label(&api), "(A)");
    }

    #[test]
    fn labels() {
        let api = api();
        let m = find(&api, "t.C", "combine");
        let e = ElemJungloid::Call { method: m, input: Some(InputSlot::Arg(0)) };
        assert_eq!(e.label(&api), "C.combine");
        let c = api.types().resolve("t.C").unwrap();
        let ctor = api.constructors_of(c)[0];
        let e = ElemJungloid::Call { method: ctor, input: Some(InputSlot::Arg(0)) };
        assert_eq!(e.label(&api), "new C");
    }

    #[test]
    fn visibility_preserved_for_filtering() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "v.api",
                "package v; public class G { protected G inner(); private G hidden(); }",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let g = api.types().resolve("v.G").unwrap();
        let inner = api.lookup_instance_method(g, "inner", 0)[0];
        assert_eq!(api.method(inner).visibility, Visibility::Protected);
        let hidden = api.lookup_instance_method(g, "hidden", 0)[0];
        assert_eq!(api.method(hidden).visibility, Visibility::Private);
    }
}
