//! The `.api` stub format: a compact, Java-like way to declare an API's
//! signatures by hand.
//!
//! ```text
//! package org.eclipse.jdt.core;
//!
//! public interface ICompilationUnit extends IJavaElement {}
//!
//! public class JavaCore {
//!     static ICompilationUnit createCompilationUnitFrom(IFile file);
//! }
//! ```
//!
//! Rules:
//!
//! * `package` applies to the declarations that follow it, until the next
//!   `package` line in the same file;
//! * members default to `public`; `static`, `protected`, `private` are
//!   honored; `final`/`abstract` are accepted and ignored;
//! * a member whose name equals the enclosing class's simple name and that
//!   has no return type is a constructor;
//! * parameter names are optional;
//! * member types may be simple names (resolved globally, must be
//!   unambiguous), qualified names, primitives, `void` (returns only), and
//!   arrays (`String[]`).
//!
//! Loading is two-phase: every source added to the [`ApiLoader`] is parsed
//! immediately, but names are resolved only in [`ApiLoader::finish`], so
//! stub files may reference each other's types in any order.

use jungloid_minijava::lex::{lex, TokKind, Token};
use jungloid_typesys::{Prim, TyId, TypeError, TypeKind};

use crate::{Api, ApiError, FieldDef, MethodDef, Visibility};

/// A minimal `java.lang` every modeled API needs: `Object` (hierarchy
/// root), `String`, and `Class`.
///
/// `Object.toString()` is included deliberately: it gives every type a
/// short jungloid to `String`, the same distractor mass real J2SE has.
/// `Object.getClass()` is *not* modeled: reflection is outside the static
/// model, consistent with the paper's treatment of reflective object
/// creation (§4.1).
pub const PRELUDE: &str = r"
package java.lang;

public class Object {
    String toString();
    boolean equals(Object other);
    int hashCode();
}

public class String {
    int length();
}

public class Class {
    String getName();
}
";

#[derive(Clone, Debug)]
struct RawType {
    parts: Vec<String>,
    dims: usize,
}

impl RawType {
    fn render(&self) -> String {
        let mut s = self.parts.join(".");
        for _ in 0..self.dims {
            s.push_str("[]");
        }
        s
    }
}

#[derive(Clone, Debug)]
enum RawMember {
    Method {
        vis: Visibility,
        is_static: bool,
        ret: RawType,
        name: String,
        params: Vec<(RawType, Option<String>)>,
    },
    Ctor { vis: Visibility, params: Vec<(RawType, Option<String>)> },
    Field { vis: Visibility, is_static: bool, ty: RawType, name: String },
}

#[derive(Clone, Debug)]
struct RawDecl {
    file: String,
    package: String,
    kind: TypeKind,
    name: String,
    extends: Vec<RawType>,
    implements: Vec<RawType>,
    members: Vec<RawMember>,
}

/// Accumulates parsed `.api` sources, then resolves them into an [`Api`].
#[derive(Debug, Default)]
pub struct ApiLoader {
    decls: Vec<RawDecl>,
}

impl ApiLoader {
    /// An empty loader. Most callers want [`ApiLoader::with_prelude`].
    #[must_use]
    pub fn new() -> Self {
        ApiLoader::default()
    }

    /// A loader pre-seeded with [`PRELUDE`] (`java.lang.Object` & co.).
    #[must_use]
    pub fn with_prelude() -> Self {
        let mut loader = ApiLoader::new();
        loader.add_source("<prelude>", PRELUDE).expect("prelude parses");
        loader
    }

    /// Parses one stub source.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Syntax`] for lex/parse failures. Name resolution
    /// is deferred to [`ApiLoader::finish`].
    pub fn add_source(&mut self, file: &str, text: &str) -> Result<&mut Self, ApiError> {
        let tokens = lex(text).map_err(|e| ApiError::Syntax {
            file: file.to_owned(),
            line: e.line,
            col: e.col,
            message: e.message,
        })?;
        let mut parser = StubParser { file, toks: tokens, pos: 0 };
        let decls = parser.file()?;
        self.decls.extend(decls);
        Ok(self)
    }

    /// Resolves all parsed declarations into an [`Api`].
    ///
    /// # Errors
    ///
    /// Duplicate types, unknown or ambiguous names, hierarchy violations,
    /// and duplicate members are reported with the offending file's label.
    pub fn finish(self) -> Result<Api, ApiError> {
        let mut api = Api::new();
        // Phase 1: declare all types.
        let mut ids = Vec::with_capacity(self.decls.len());
        for d in &self.decls {
            let id = api
                .types_mut()
                .declare(&d.package, &d.name, d.kind)
                .map_err(|cause| ApiError::Resolve { file: d.file.clone(), cause })?;
            ids.push(id);
        }
        // Phase 2: hierarchy.
        for (d, &id) in self.decls.iter().zip(&ids) {
            match d.kind {
                TypeKind::Class => {
                    if d.extends.len() > 1 {
                        return Err(ApiError::Syntax {
                            file: d.file.clone(),
                            line: 0,
                            col: 0,
                            message: format!("class `{}` extends more than one class", d.name),
                        });
                    }
                    if let Some(sup) = d.extends.first() {
                        let sup_id = resolve_decl_name(&api, &d.file, sup)?;
                        api.types_mut()
                            .set_superclass(id, sup_id)
                            .map_err(|cause| ApiError::Resolve { file: d.file.clone(), cause })?;
                    }
                    for iface in &d.implements {
                        let i = resolve_decl_name(&api, &d.file, iface)?;
                        api.types_mut()
                            .add_interface(id, i)
                            .map_err(|cause| ApiError::Resolve { file: d.file.clone(), cause })?;
                    }
                }
                TypeKind::Interface => {
                    for iface in d.extends.iter().chain(&d.implements) {
                        let i = resolve_decl_name(&api, &d.file, iface)?;
                        api.types_mut()
                            .add_interface(id, i)
                            .map_err(|cause| ApiError::Resolve { file: d.file.clone(), cause })?;
                    }
                }
            }
        }
        // Phase 3: members.
        for (d, &id) in self.decls.iter().zip(&ids) {
            for m in &d.members {
                match m {
                    RawMember::Method { vis, is_static, ret, name, params } => {
                        let ret = resolve_member_type(&mut api, &d.file, ret, true)?;
                        let param_names = params.iter().map(|(_, n)| n.clone()).collect();
                        let params = params
                            .iter()
                            .map(|(p, _)| resolve_member_type(&mut api, &d.file, p, false))
                            .collect::<Result<Vec<_>, _>>()?;
                        api.add_method(MethodDef {
                            name: name.clone(),
                            declaring: id,
                            params,
                            param_names,
                            ret,
                            visibility: *vis,
                            is_static: *is_static,
                            is_constructor: false,
                        })?;
                    }
                    RawMember::Ctor { vis, params } => {
                        let param_names = params.iter().map(|(_, n)| n.clone()).collect();
                        let params = params
                            .iter()
                            .map(|(p, _)| resolve_member_type(&mut api, &d.file, p, false))
                            .collect::<Result<Vec<_>, _>>()?;
                        api.add_method(MethodDef {
                            name: "<init>".to_owned(),
                            declaring: id,
                            params,
                            param_names,
                            ret: id,
                            visibility: *vis,
                            is_static: false,
                            is_constructor: true,
                        })?;
                    }
                    RawMember::Field { vis, is_static, ty, name } => {
                        let ty = resolve_member_type(&mut api, &d.file, ty, false)?;
                        api.add_field(FieldDef {
                            name: name.clone(),
                            declaring: id,
                            ty,
                            visibility: *vis,
                            is_static: *is_static,
                        })?;
                    }
                }
            }
        }
        Ok(api)
    }
}

fn resolve_decl_name(api: &Api, file: &str, raw: &RawType) -> Result<TyId, ApiError> {
    if raw.dims != 0 {
        return Err(ApiError::Resolve {
            file: file.to_owned(),
            cause: TypeError::UnknownType { name: raw.render() },
        });
    }
    api.types()
        .resolve(&raw.parts.join("."))
        .map_err(|cause| ApiError::Resolve { file: file.to_owned(), cause })
}

fn resolve_member_type(
    api: &mut Api,
    file: &str,
    raw: &RawType,
    allow_void: bool,
) -> Result<TyId, ApiError> {
    let base = if raw.parts.len() == 1 {
        let word = raw.parts[0].as_str();
        if word == "void" {
            if !allow_void || raw.dims != 0 {
                return Err(ApiError::InvalidMember {
                    detail: format!("{file}: `void` is only valid as a return type"),
                });
            }
            return Ok(api.types().void());
        } else if let Some(p) = Prim::from_keyword(word) {
            api.types().prim(p)
        } else {
            api.types()
                .resolve(word)
                .map_err(|cause| ApiError::Resolve { file: file.to_owned(), cause })?
        }
    } else {
        api.types()
            .resolve(&raw.parts.join("."))
            .map_err(|cause| ApiError::Resolve { file: file.to_owned(), cause })?
    };
    let mut ty = base;
    for _ in 0..raw.dims {
        ty = api.types_mut().array_of(ty);
    }
    Ok(ty)
}

struct StubParser<'a> {
    file: &'a str,
    toks: Vec<Token>,
    pos: usize,
}

impl StubParser<'_> {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokKind {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].kind
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: String) -> ApiError {
        let t = &self.toks[self.pos];
        ApiError::Syntax { file: self.file.to_owned(), line: t.line, col: t.col, message }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ApiError> {
        if *self.peek() == TokKind::Punct(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ApiError> {
        if matches!(self.peek(), TokKind::Ident(_)) {
            let TokKind::Ident(s) = self.bump() else { unreachable!() };
            Ok(s)
        } else {
            Err(self.err(format!("expected identifier, found {}", self.peek())))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().as_ident() == Some(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_punct(&self, n: usize, c: char) -> bool {
        *self.peek_at(n) == TokKind::Punct(c)
    }

    fn dotted(&mut self) -> Result<Vec<String>, ApiError> {
        let mut parts = vec![self.expect_ident()?];
        while self.is_punct(0, '.') && matches!(self.peek_at(1), TokKind::Ident(_)) {
            self.bump();
            parts.push(self.expect_ident()?);
        }
        Ok(parts)
    }

    fn raw_type(&mut self) -> Result<RawType, ApiError> {
        let parts = self.dotted()?;
        let mut dims = 0;
        while self.is_punct(0, '[') && self.is_punct(1, ']') {
            self.bump();
            self.bump();
            dims += 1;
        }
        Ok(RawType { parts, dims })
    }

    fn modifiers(&mut self) -> (Visibility, bool) {
        let mut vis = Visibility::Public;
        let mut is_static = false;
        loop {
            if self.eat_kw("public") {
                vis = Visibility::Public;
            } else if self.eat_kw("protected") {
                vis = Visibility::Protected;
            } else if self.eat_kw("private") {
                vis = Visibility::Private;
            } else if self.eat_kw("static") {
                is_static = true;
            } else if self.at_kw("final") || self.at_kw("abstract") {
                self.bump();
            } else {
                return (vis, is_static);
            }
        }
    }

    fn file(&mut self) -> Result<Vec<RawDecl>, ApiError> {
        let mut package = String::new();
        let mut decls = Vec::new();
        loop {
            if matches!(self.peek(), TokKind::Eof) {
                return Ok(decls);
            }
            if self.eat_kw("package") {
                package = self.dotted()?.join(".");
                self.expect_punct(';')?;
                continue;
            }
            decls.push(self.type_decl(&package)?);
        }
    }

    fn type_decl(&mut self, package: &str) -> Result<RawDecl, ApiError> {
        self.modifiers();
        let kind = if self.eat_kw("class") {
            TypeKind::Class
        } else if self.eat_kw("interface") {
            TypeKind::Interface
        } else {
            return Err(self.err(format!("expected `class` or `interface`, found {}", self.peek())));
        };
        let name = self.expect_ident()?;
        let mut extends = Vec::new();
        if self.eat_kw("extends") {
            extends.push(self.raw_type()?);
            while self.is_punct(0, ',') {
                self.bump();
                extends.push(self.raw_type()?);
            }
        }
        let mut implements = Vec::new();
        if self.eat_kw("implements") {
            implements.push(self.raw_type()?);
            while self.is_punct(0, ',') {
                self.bump();
                implements.push(self.raw_type()?);
            }
        }
        self.expect_punct('{')?;
        let mut members = Vec::new();
        while !self.is_punct(0, '}') {
            members.push(self.member(&name)?);
        }
        self.expect_punct('}')?;
        Ok(RawDecl {
            file: self.file.to_owned(),
            package: package.to_owned(),
            kind,
            name,
            extends,
            implements,
            members,
        })
    }

    fn member(&mut self, class_name: &str) -> Result<RawMember, ApiError> {
        let (vis, is_static) = self.modifiers();
        // Constructor: `Name(` with Name == enclosing simple name.
        if self.peek().as_ident() == Some(class_name) && self.is_punct(1, '(') {
            self.bump();
            let params = self.params()?;
            self.expect_punct(';')?;
            return Ok(RawMember::Ctor { vis, params });
        }
        let ty = if self.at_kw("void") {
            self.bump();
            RawType { parts: vec!["void".to_owned()], dims: 0 }
        } else {
            self.raw_type()?
        };
        let name = self.expect_ident()?;
        if self.is_punct(0, '(') {
            let params = self.params()?;
            self.expect_punct(';')?;
            Ok(RawMember::Method { vis, is_static, ret: ty, name, params })
        } else {
            self.expect_punct(';')?;
            Ok(RawMember::Field { vis, is_static, ty, name })
        }
    }

    fn params(&mut self) -> Result<Vec<(RawType, Option<String>)>, ApiError> {
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.is_punct(0, ')') {
            loop {
                let ty = self.raw_type()?;
                // Optional parameter name.
                let name = if matches!(self.peek(), TokKind::Ident(_)) {
                    let TokKind::Ident(n) = self.bump() else { unreachable!() };
                    Some(n)
                } else {
                    None
                };
                params.push((ty, name));
                if self.is_punct(0, ',') {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(sources: &[(&str, &str)]) -> Api {
        let mut loader = ApiLoader::with_prelude();
        for (file, text) in sources {
            loader.add_source(file, text).unwrap();
        }
        loader.finish().unwrap()
    }

    #[test]
    fn prelude_alone() {
        let api = ApiLoader::with_prelude().finish().unwrap();
        let object = api.types().resolve("java.lang.Object").unwrap();
        assert_eq!(api.types().object(), Some(object));
        assert_eq!(api.lookup_instance_method(object, "toString", 0).len(), 1);
    }

    #[test]
    fn classes_methods_fields_ctors() {
        let api = load(&[(
            "io.api",
            r#"
            package java.io;
            public class InputStream {}
            public class Reader {}
            public class InputStreamReader extends Reader {
                InputStreamReader(InputStream in);
            }
            public class BufferedReader extends Reader {
                BufferedReader(Reader in);
                BufferedReader(Reader in, int sz);
                String readLine();
                protected Object lock;
            }
            "#,
        )]);
        let br = api.types().resolve("BufferedReader").unwrap();
        let reader = api.types().resolve("Reader").unwrap();
        assert!(api.types().is_subtype(br, reader));
        assert_eq!(api.constructors_of(br).len(), 2);
        assert_eq!(api.lookup_instance_method(br, "readLine", 0).len(), 1);
        let lock = api.lookup_field(br, "lock").unwrap();
        assert_eq!(api.field(lock).visibility, Visibility::Protected);
    }

    #[test]
    fn interfaces_and_cross_file_refs() {
        let api = load(&[
            (
                "a.api",
                r"
                package p;
                public interface IBase {}
                public interface IChild extends IBase {
                    q.Impl make();
                }
                ",
            ),
            (
                "b.api",
                r"
                package q;
                public class Impl implements p.IChild {
                    Impl();
                }
                ",
            ),
        ]);
        let ibase = api.types().resolve("IBase").unwrap();
        let impl_ = api.types().resolve("Impl").unwrap();
        assert!(api.types().is_subtype(impl_, ibase));
        let ichild = api.types().resolve("IChild").unwrap();
        assert_eq!(api.lookup_instance_method(ichild, "make", 0).len(), 1);
    }

    #[test]
    fn arrays_void_prims_and_statics() {
        let api = load(&[(
            "x.api",
            r"
            package x;
            public class Table {
                static Table[] all();
                int[] widths();
                void clear();
                static int count;
            }
            ",
        )]);
        let table = api.types().resolve("Table").unwrap();
        let all = api.lookup_static_method(table, "all", 0)[0];
        let arr = api.method(all).ret;
        assert!(matches!(api.types().ty(arr), jungloid_typesys::Ty::Array(e) if e == table));
        let clear = api.lookup_instance_method(table, "clear", 0)[0];
        assert_eq!(api.method(clear).ret, api.types().void());
    }

    #[test]
    fn unresolved_and_ambiguous_names_fail() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source("x.api", "package x; public class A { Missing m(); }")
            .unwrap();
        assert!(matches!(loader.finish(), Err(ApiError::Resolve { .. })));

        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "y.api",
                "package a; public class X {} package b; public class X {} package c; public class U { X m(); }",
            )
            .unwrap();
        assert!(matches!(loader.finish(), Err(ApiError::Resolve { .. })));
    }

    #[test]
    fn void_in_bad_positions_rejected() {
        let mut loader = ApiLoader::with_prelude();
        loader.add_source("x.api", "package x; public class A { void f; }").unwrap();
        assert!(loader.finish().is_err());

        let mut loader = ApiLoader::with_prelude();
        loader.add_source("x.api", "package x; public class A { String m(void v); }").unwrap();
        assert!(loader.finish().is_err());
    }

    #[test]
    fn syntax_errors_located() {
        let mut loader = ApiLoader::new();
        let err = loader.add_source("bad.api", "package p; class { }").unwrap_err();
        match err {
            ApiError::Syntax { file, line, .. } => {
                assert_eq!(file, "bad.api");
                assert_eq!(line, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_member_reported() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source("x.api", "package x; public class A { String m(); String m(); }")
            .unwrap();
        assert!(matches!(loader.finish(), Err(ApiError::DuplicateMember { .. })));
    }

    #[test]
    fn parameter_names_optional() {
        let api = load(&[(
            "x.api",
            "package x; public class A { A(String, int count); String cat(A other, A); }",
        )]);
        let a = api.types().resolve("x.A").unwrap();
        assert_eq!(api.lookup_constructor(a, 2).len(), 1);
        assert_eq!(api.lookup_instance_method(a, "cat", 2).len(), 1);
    }
}
