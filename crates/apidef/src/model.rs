//! The in-memory API model: types plus members.

use std::collections::HashMap;

use jungloid_typesys::{Ty, TyId, TypeKind, TypeTable};
use prospector_obs::json::{decode_err, Json, JsonError};

use crate::ApiError;

/// Member visibility. Prospector synthesizes from public members only
/// (§7: a Table 1 query fails because its solution needs a protected
/// method); [`Visibility::Protected`] exists so that failure mode can be
/// reproduced and the paper's proposed fix (`include_protected`) tested.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// `public`
    Public,
    /// `protected`
    Protected,
    /// `private` (and package-private, which we fold in)
    Private,
}

/// Identifier of a method (or constructor) in an [`Api`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(u32);

impl MethodId {
    /// Raw index into the method arena.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from an index previously obtained via
    /// [`MethodId::index`] against the same [`Api`]. The caller is
    /// responsible for range-checking `index` against
    /// [`Api::method_count`] (the snapshot loaders do).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        MethodId(u32::try_from(index).expect("method arena exceeds u32 range"))
    }
}

impl std::fmt::Debug for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m#{}", self.0)
    }
}

/// Identifier of a field in an [`Api`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(u32);

impl FieldId {
    /// Raw index into the field arena.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from an index previously obtained via
    /// [`FieldId::index`] against the same [`Api`]. The caller is
    /// responsible for range-checking `index` against
    /// [`Api::field_count`] (the snapshot loaders do).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        FieldId(u32::try_from(index).expect("field arena exceeds u32 range"))
    }
}

impl std::fmt::Debug for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f#{}", self.0)
    }
}

/// A method or constructor signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDef {
    /// Method name; `"<init>"` for constructors.
    pub name: String,
    /// Declaring class or interface.
    pub declaring: TyId,
    /// Parameter types in order.
    pub params: Vec<TyId>,
    /// Declared parameter names, where the stub provided them. Used only
    /// to name free variables in generated code; `None` entries get
    /// type-derived names. Empty means "no names known" (any arity).
    pub param_names: Vec<Option<String>>,
    /// Return type (`void` allowed). For constructors this is the declaring
    /// class.
    pub ret: TyId,
    /// Visibility.
    pub visibility: Visibility,
    /// Whether the method is `static`.
    pub is_static: bool,
    /// Whether this is a constructor.
    pub is_constructor: bool,
}

impl MethodDef {
    /// Constructors and static methods need no receiver.
    #[must_use]
    pub fn needs_receiver(&self) -> bool {
        !self.is_static && !self.is_constructor
    }
}

/// A field signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Declaring class or interface.
    pub declaring: TyId,
    /// Field type.
    pub ty: TyId,
    /// Visibility.
    pub visibility: Visibility,
    /// Whether the field is `static`.
    pub is_static: bool,
}

/// An API: a type table plus member signatures, with lookup indexes.
///
/// Build one through [`ApiLoader`](crate::ApiLoader) (from `.api` stubs) or
/// programmatically through the `add_*`/`declare_*` methods (the jungle
/// generator in `prospector-corpora` does the latter).
#[derive(Clone, Debug)]
pub struct Api {
    types: TypeTable,
    methods: Vec<MethodDef>,
    fields: Vec<FieldDef>,
    methods_by_class: HashMap<TyId, Vec<MethodId>>,
    fields_by_class: HashMap<TyId, Vec<FieldId>>,
}

impl Api {
    /// An API over a fresh, empty type table.
    #[must_use]
    pub fn new() -> Self {
        Api::from_types(TypeTable::new())
    }

    /// Wraps an existing type table (with no members yet).
    #[must_use]
    pub fn from_types(types: TypeTable) -> Self {
        Api {
            types,
            methods: Vec::new(),
            fields: Vec::new(),
            methods_by_class: HashMap::new(),
            fields_by_class: HashMap::new(),
        }
    }

    /// The underlying type table.
    #[must_use]
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Mutable access to the type table (for declaring types and arrays).
    pub fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    /// Shorthand: declare a class.
    ///
    /// # Errors
    ///
    /// Propagates [`jungloid_typesys::TypeError::DuplicateType`].
    pub fn declare_class(&mut self, package: &str, name: &str) -> Result<TyId, ApiError> {
        Ok(self.types.declare(package, name, TypeKind::Class)?)
    }

    /// Shorthand: declare an interface.
    ///
    /// # Errors
    ///
    /// Propagates [`jungloid_typesys::TypeError::DuplicateType`].
    pub fn declare_interface(&mut self, package: &str, name: &str) -> Result<TyId, ApiError> {
        Ok(self.types.declare(package, name, TypeKind::Interface)?)
    }

    /// Adds a method/constructor definition.
    ///
    /// # Errors
    ///
    /// * [`ApiError::InvalidMember`] if the declaring type is not a class
    ///   or interface, or a parameter is `void`;
    /// * [`ApiError::DuplicateMember`] if an identical
    ///   name-plus-parameter-types signature already exists on the class.
    pub fn add_method(&mut self, def: MethodDef) -> Result<MethodId, ApiError> {
        if self.types.kind(def.declaring).is_none() {
            return Err(ApiError::InvalidMember {
                detail: format!(
                    "method `{}` declared on non-class type {}",
                    def.name,
                    self.types.display(def.declaring)
                ),
            });
        }
        if def.params.iter().any(|&p| matches!(self.types.ty(p), Ty::Void | Ty::Null)) {
            return Err(ApiError::InvalidMember {
                detail: format!("method `{}` has a void/null parameter", def.name),
            });
        }
        if let Some(ids) = self.methods_by_class.get(&def.declaring) {
            if ids.iter().any(|&m| {
                let existing = &self.methods[m.index()];
                existing.name == def.name && existing.params == def.params
            }) {
                return Err(ApiError::DuplicateMember {
                    member: format!("{}.{}", self.types.display(def.declaring), def.name),
                });
            }
        }
        let id = MethodId(u32::try_from(self.methods.len()).expect("method arena overflow"));
        self.methods_by_class.entry(def.declaring).or_default().push(id);
        self.methods.push(def);
        Ok(id)
    }

    /// Adds a field definition.
    ///
    /// # Errors
    ///
    /// Same classes of failure as [`Api::add_method`].
    pub fn add_field(&mut self, def: FieldDef) -> Result<FieldId, ApiError> {
        if self.types.kind(def.declaring).is_none() {
            return Err(ApiError::InvalidMember {
                detail: format!(
                    "field `{}` declared on non-class type {}",
                    def.name,
                    self.types.display(def.declaring)
                ),
            });
        }
        if matches!(self.types.ty(def.ty), Ty::Void | Ty::Null) {
            return Err(ApiError::InvalidMember {
                detail: format!("field `{}` has void/null type", def.name),
            });
        }
        if let Some(ids) = self.fields_by_class.get(&def.declaring) {
            if ids.iter().any(|&f| self.fields[f.index()].name == def.name) {
                return Err(ApiError::DuplicateMember {
                    member: format!("{}.{}", self.types.display(def.declaring), def.name),
                });
            }
        }
        let id = FieldId(u32::try_from(self.fields.len()).expect("field arena overflow"));
        self.fields_by_class.entry(def.declaring).or_default().push(id);
        self.fields.push(def);
        Ok(id)
    }

    /// The definition behind a method id.
    #[must_use]
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.index()]
    }

    /// The definition behind a field id.
    #[must_use]
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.index()]
    }

    /// Number of methods (incl. constructors).
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of fields.
    #[must_use]
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Iterates over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> + '_ {
        (0..self.methods.len()).map(|i| MethodId(u32::try_from(i).expect("checked on insert")))
    }

    /// Iterates over all field ids.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.fields.len()).map(|i| FieldId(u32::try_from(i).expect("checked on insert")))
    }

    /// Method ids declared directly on `class`.
    #[must_use]
    pub fn methods_of(&self, class: TyId) -> &[MethodId] {
        self.methods_by_class.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Field ids declared directly on `class`.
    #[must_use]
    pub fn fields_of(&self, class: TyId) -> &[FieldId] {
        self.fields_by_class.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Constructors declared on `class`.
    #[must_use]
    pub fn constructors_of(&self, class: TyId) -> Vec<MethodId> {
        self.methods_of(class)
            .iter()
            .copied()
            .filter(|&m| self.method(m).is_constructor)
            .collect()
    }

    /// Instance methods named `name` with `arity` parameters, found on
    /// `recv` or any of its supertypes (breadth-first, so overrides on the
    /// receiver come before inherited declarations).
    #[must_use]
    pub fn lookup_instance_method(&self, recv: TyId, name: &str, arity: usize) -> Vec<MethodId> {
        let mut out = Vec::new();
        let mut frontier = vec![recv];
        let mut seen = vec![recv];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for t in frontier {
                for &m in self.methods_of(t) {
                    let def = self.method(m);
                    if def.needs_receiver() && def.name == name && def.params.len() == arity {
                        out.push(m);
                    }
                }
                for sup in self.types.direct_supertypes(t) {
                    if !seen.contains(&sup) {
                        seen.push(sup);
                        next.push(sup);
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// Static methods named `name` with `arity` parameters, declared on
    /// `class` (static members are not inherited in this model).
    #[must_use]
    pub fn lookup_static_method(&self, class: TyId, name: &str, arity: usize) -> Vec<MethodId> {
        self.methods_of(class)
            .iter()
            .copied()
            .filter(|&m| {
                let def = self.method(m);
                def.is_static && def.name == name && def.params.len() == arity
            })
            .collect()
    }

    /// Constructors of `class` with `arity` parameters.
    #[must_use]
    pub fn lookup_constructor(&self, class: TyId, arity: usize) -> Vec<MethodId> {
        self.constructors_of(class)
            .into_iter()
            .filter(|&m| self.method(m).params.len() == arity)
            .collect()
    }

    /// The field named `name` on `recv` or its supertypes, if any
    /// (instance or static; nearest declaration wins).
    #[must_use]
    pub fn lookup_field(&self, recv: TyId, name: &str) -> Option<FieldId> {
        let mut frontier = vec![recv];
        let mut seen = vec![recv];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for t in &frontier {
                for &f in self.fields_of(*t) {
                    if self.field(f).name == name {
                        return Some(f);
                    }
                }
            }
            for t in frontier {
                for sup in self.types.direct_supertypes(t) {
                    if !seen.contains(&sup) {
                        seen.push(sup);
                        next.push(sup);
                    }
                }
            }
            frontier = next;
        }
        None
    }

    /// Class-hierarchy-analysis approximation of dynamic dispatch: all
    /// instance methods named `name`/`arity` declared on `recv_static`, its
    /// supertypes, or any of its subtypes. Used by the miner's
    /// "conservative approximation of the call graph based on the type
    /// hierarchy" (§4.2).
    #[must_use]
    pub fn cha_targets(&self, recv_static: TyId, name: &str, arity: usize) -> Vec<MethodId> {
        let mut out = self.lookup_instance_method(recv_static, name, arity);
        for sub in self.types.strict_subtypes(recv_static) {
            for &m in self.methods_of(sub) {
                let def = self.method(m);
                if def.needs_receiver() && def.name == name && def.params.len() == arity && !out.contains(&m)
                {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Renders a method as `Declaring.name(P1, P2): Ret` for diagnostics.
    #[must_use]
    pub fn method_display(&self, id: MethodId) -> String {
        let def = self.method(id);
        let params: Vec<String> =
            def.params.iter().map(|&p| self.types.display_simple(p)).collect();
        let who = self.types.display_simple(def.declaring);
        if def.is_constructor {
            format!("new {who}({})", params.join(", "))
        } else if def.is_static {
            format!("{who}.{}({}): {}", def.name, params.join(", "), self.types.display_simple(def.ret))
        } else {
            format!(
                "{}.{}({}): {}",
                lowercase_first(&who),
                def.name,
                params.join(", "),
                self.types.display_simple(def.ret)
            )
        }
    }
}

impl Default for Api {
    fn default() -> Self {
        Api::new()
    }
}

fn lowercase_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

// --- JSON persistence ---------------------------------------------------
//
// Members are stored as flat arrays in arena order; ids are implicit
// (array position), so `from_json` replays `add_method`/`add_field` in
// order and every persisted `MethodId`/`FieldId` stays valid.

pub(crate) fn ty_ref(id: TyId) -> Json {
    Json::num_u(id.index() as u64)
}

pub(crate) fn want_ty(v: &Json, arena_len: usize) -> Result<TyId, JsonError> {
    let idx = v.as_u64().ok_or_else(|| decode_err("type reference must be an integer"))?;
    let idx = usize::try_from(idx).map_err(|_| decode_err("type reference out of range"))?;
    if idx >= arena_len {
        return Err(decode_err(format!("type reference {idx} out of range (<{arena_len})")));
    }
    Ok(TyId::from_index(idx))
}

impl Visibility {
    /// The Java keyword for this visibility.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            Visibility::Public => "public",
            Visibility::Protected => "protected",
            Visibility::Private => "private",
        }
    }

    /// Parses [`Visibility::keyword`] output.
    #[must_use]
    pub fn from_keyword(word: &str) -> Option<Visibility> {
        match word {
            "public" => Some(Visibility::Public),
            "protected" => Some(Visibility::Protected),
            "private" => Some(Visibility::Private),
            _ => None,
        }
    }
}

fn want_visibility(v: &Json) -> Result<Visibility, JsonError> {
    v.as_str()
        .and_then(Visibility::from_keyword)
        .ok_or_else(|| decode_err("bad visibility"))
}

fn want_bool(v: &Json) -> Result<bool, JsonError> {
    v.as_bool().ok_or_else(|| decode_err("expected a boolean"))
}

fn want_string(v: &Json) -> Result<String, JsonError> {
    v.as_str().map(str::to_owned).ok_or_else(|| decode_err("expected a string"))
}

fn method_to_json(def: &MethodDef) -> Json {
    Json::obj(vec![
        ("name", Json::Str(def.name.clone())),
        ("declaring", ty_ref(def.declaring)),
        ("params", Json::Arr(def.params.iter().copied().map(ty_ref).collect())),
        (
            "param_names",
            Json::Arr(
                def.param_names
                    .iter()
                    .map(|n| n.as_ref().map_or(Json::Null, |s| Json::Str(s.clone())))
                    .collect(),
            ),
        ),
        ("ret", ty_ref(def.ret)),
        ("visibility", Json::Str(def.visibility.keyword().to_owned())),
        ("static", Json::Bool(def.is_static)),
        ("ctor", Json::Bool(def.is_constructor)),
    ])
}

fn method_from_json(v: &Json, arena_len: usize) -> Result<MethodDef, JsonError> {
    let params = v
        .want("params")?
        .as_arr()
        .ok_or_else(|| decode_err("`params` must be an array"))?
        .iter()
        .map(|p| want_ty(p, arena_len))
        .collect::<Result<Vec<_>, _>>()?;
    let param_names = v
        .want("param_names")?
        .as_arr()
        .ok_or_else(|| decode_err("`param_names` must be an array"))?
        .iter()
        .map(|n| match n {
            Json::Null => Ok(None),
            other => want_string(other).map(Some),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(MethodDef {
        name: want_string(v.want("name")?)?,
        declaring: want_ty(v.want("declaring")?, arena_len)?,
        params,
        param_names,
        ret: want_ty(v.want("ret")?, arena_len)?,
        visibility: want_visibility(v.want("visibility")?)?,
        is_static: want_bool(v.want("static")?)?,
        is_constructor: want_bool(v.want("ctor")?)?,
    })
}

fn field_to_json(def: &FieldDef) -> Json {
    Json::obj(vec![
        ("name", Json::Str(def.name.clone())),
        ("declaring", ty_ref(def.declaring)),
        ("ty", ty_ref(def.ty)),
        ("visibility", Json::Str(def.visibility.keyword().to_owned())),
        ("static", Json::Bool(def.is_static)),
    ])
}

fn field_from_json(v: &Json, arena_len: usize) -> Result<FieldDef, JsonError> {
    Ok(FieldDef {
        name: want_string(v.want("name")?)?,
        declaring: want_ty(v.want("declaring")?, arena_len)?,
        ty: want_ty(v.want("ty")?, arena_len)?,
        visibility: want_visibility(v.want("visibility")?)?,
        is_static: want_bool(v.want("static")?)?,
    })
}

impl Api {
    /// Serializes the API (types plus members) to a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("types", self.types.to_json()),
            ("methods", Json::Arr(self.methods.iter().map(method_to_json).collect())),
            ("fields", Json::Arr(self.fields.iter().map(field_to_json).collect())),
        ])
    }

    /// Rebuilds an API from [`Api::to_json`] output, re-deriving all
    /// lookup indexes.
    ///
    /// # Errors
    ///
    /// Fails on missing keys, dangling type references, or member
    /// definitions the builder itself would reject.
    pub fn from_json(doc: &Json) -> Result<Api, JsonError> {
        let types = TypeTable::from_json(doc.want("types")?)?;
        let arena_len = types.len();
        let mut api = Api::from_types(types);
        let methods = doc
            .want("methods")?
            .as_arr()
            .ok_or_else(|| decode_err("`methods` must be an array"))?;
        for m in methods {
            let def = method_from_json(m, arena_len)?;
            api.add_method(def).map_err(|e| decode_err(format!("bad method: {e}")))?;
        }
        let fields =
            doc.want("fields")?.as_arr().ok_or_else(|| decode_err("`fields` must be an array"))?;
        for f in fields {
            let def = field_from_json(f, arena_len)?;
            api.add_field(def).map_err(|e| decode_err(format!("bad field: {e}")))?;
        }
        Ok(api)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_api() -> (Api, TyId, TyId, TyId) {
        let mut api = Api::new();
        api.declare_class("java.lang", "Object").unwrap();
        let reader = api.declare_class("java.io", "Reader").unwrap();
        let buffered = api.declare_class("java.io", "BufferedReader").unwrap();
        api.types_mut().set_superclass(buffered, reader).unwrap();
        let string = api.declare_class("java.lang", "String").unwrap();
        (api, reader, buffered, string)
    }

    fn inst(name: &str, declaring: TyId, params: Vec<TyId>, ret: TyId) -> MethodDef {
        MethodDef {
            name: name.to_owned(),
            declaring,
            params,
            param_names: Vec::new(),
            ret,
            visibility: Visibility::Public,
            is_static: false,
            is_constructor: false,
        }
    }

    #[test]
    fn add_and_lookup_methods() {
        let (mut api, reader, buffered, string) = tiny_api();
        api.add_method(inst("readLine", buffered, vec![], string)).unwrap();
        api.add_method(inst("close", reader, vec![], api.types().void())).unwrap();

        assert_eq!(api.lookup_instance_method(buffered, "readLine", 0).len(), 1);
        // Inherited through the superclass chain.
        assert_eq!(api.lookup_instance_method(buffered, "close", 0).len(), 1);
        assert!(api.lookup_instance_method(reader, "readLine", 0).is_empty());
        assert!(api.lookup_instance_method(buffered, "readLine", 1).is_empty());
    }

    #[test]
    fn duplicate_method_rejected_overload_allowed() {
        let (mut api, reader, buffered, string) = tiny_api();
        api.add_method(inst("read", buffered, vec![], string)).unwrap();
        assert!(matches!(
            api.add_method(inst("read", buffered, vec![], string)),
            Err(ApiError::DuplicateMember { .. })
        ));
        // Different arity: fine.
        api.add_method(inst("read", buffered, vec![reader], string)).unwrap();
    }

    #[test]
    fn void_param_rejected() {
        let (mut api, _, buffered, string) = tiny_api();
        let void = api.types().void();
        assert!(matches!(
            api.add_method(inst("bad", buffered, vec![void], string)),
            Err(ApiError::InvalidMember { .. })
        ));
    }

    #[test]
    fn member_on_primitive_rejected() {
        let (mut api, _, _, string) = tiny_api();
        let int = api.types().prim(jungloid_typesys::Prim::Int);
        assert!(api.add_method(inst("bad", int, vec![], string)).is_err());
        assert!(api
            .add_field(FieldDef {
                name: "x".into(),
                declaring: int,
                ty: string,
                visibility: Visibility::Public,
                is_static: false,
            })
            .is_err());
    }

    #[test]
    fn static_and_constructor_lookup() {
        let (mut api, reader, buffered, string) = tiny_api();
        api.add_method(MethodDef {
            name: "<init>".into(),
            declaring: buffered,
            params: vec![reader],
            param_names: Vec::new(),
            ret: buffered,
            visibility: Visibility::Public,
            is_static: false,
            is_constructor: true,
        })
        .unwrap();
        api.add_method(MethodDef {
            name: "valueOf".into(),
            declaring: string,
            params: vec![buffered],
            param_names: Vec::new(),
            ret: string,
            visibility: Visibility::Public,
            is_static: true,
            is_constructor: false,
        })
        .unwrap();

        assert_eq!(api.lookup_constructor(buffered, 1).len(), 1);
        assert!(api.lookup_constructor(buffered, 0).is_empty());
        assert_eq!(api.lookup_static_method(string, "valueOf", 1).len(), 1);
        // Static methods are not found through instance lookup.
        assert!(api.lookup_instance_method(string, "valueOf", 1).is_empty());
    }

    #[test]
    fn field_lookup_walks_supertypes() {
        let (mut api, reader, buffered, string) = tiny_api();
        api.add_field(FieldDef {
            name: "lock".into(),
            declaring: reader,
            ty: string,
            visibility: Visibility::Public,
            is_static: false,
        })
        .unwrap();
        assert!(api.lookup_field(buffered, "lock").is_some());
        assert!(api.lookup_field(buffered, "none").is_none());
    }

    #[test]
    fn cha_includes_subtype_overrides() {
        let (mut api, reader, buffered, string) = tiny_api();
        api.add_method(inst("read", reader, vec![], string)).unwrap();
        api.add_method(inst("read", buffered, vec![], string)).unwrap();
        let targets = api.cha_targets(reader, "read", 0);
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn method_display_forms() {
        let (mut api, reader, buffered, string) = tiny_api();
        let ctor = api
            .add_method(MethodDef {
                name: "<init>".into(),
                declaring: buffered,
                params: vec![reader],
                param_names: Vec::new(),
                ret: buffered,
                visibility: Visibility::Public,
                is_static: false,
                is_constructor: true,
            })
            .unwrap();
        let stat = api
            .add_method(MethodDef {
                name: "valueOf".into(),
                declaring: string,
                params: vec![buffered],
                param_names: Vec::new(),
                ret: string,
                visibility: Visibility::Public,
                is_static: true,
                is_constructor: false,
            })
            .unwrap();
        let m = api.add_method(inst("readLine", buffered, vec![], string)).unwrap();
        assert_eq!(api.method_display(ctor), "new BufferedReader(Reader)");
        assert_eq!(api.method_display(stat), "String.valueOf(BufferedReader): String");
        assert_eq!(api.method_display(m), "bufferedReader.readLine(): String");
    }
}
