//! The API signature database that jungloid synthesis runs against.
//!
//! The paper derives every elementary jungloid from "signatures", used in
//! the broad sense of §1 footnote 2: *"all the elements of the static type
//! system: method signatures, field declarations, and class hierarchy
//! declarations."* This crate models exactly those elements:
//!
//! * [`Api`] — a [`jungloid_typesys::TypeTable`] plus method and field
//!   declarations with the modifiers the synthesizer cares about
//!   (`static`, visibility, constructor-ness);
//! * a declarative `.api` stub format ([`ApiLoader`]) for writing large
//!   modeled APIs by hand (the Eclipse/J2SE fragments in
//!   `prospector-corpora` are written in it);
//! * member-lookup routines used by the MiniJava resolver in
//!   `jungloid-dataflow` (instance lookup walks supertypes; a CHA helper
//!   approximates call targets for the miner's interprocedural slices).
//!
//! # Example
//!
//! ```
//! use jungloid_apidef::ApiLoader;
//!
//! let mut loader = ApiLoader::with_prelude();
//! loader.add_source(
//!     "io.api",
//!     r#"
//!     package java.io;
//!     public class Reader {}
//!     public class InputStream {}
//!     public class InputStreamReader extends Reader {
//!         InputStreamReader(InputStream in);
//!     }
//!     public class BufferedReader extends Reader {
//!         BufferedReader(Reader in);
//!         String readLine();
//!     }
//!     "#,
//! )?;
//! let api = loader.finish()?;
//! let buffered = api.types().resolve("BufferedReader")?;
//! assert_eq!(api.constructors_of(buffered).len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod builder;
pub mod elem;
mod error;
mod loader;
mod model;
pub mod printer;

pub use builder::ClassBuilder;
pub use elem::{ElemJungloid, InputSlot};
pub use error::ApiError;
pub use loader::{ApiLoader, PRELUDE};
pub use model::{Api, FieldDef, FieldId, MethodDef, MethodId, Visibility};
