//! Errors for API construction and stub loading.

use jungloid_typesys::TypeError;

/// An error raised while building an [`Api`](crate::Api) or loading `.api`
/// stubs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApiError {
    /// A syntax error in a stub file.
    Syntax {
        /// File label.
        file: String,
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Explanation.
        message: String,
    },
    /// A name in a stub file failed to resolve.
    Resolve {
        /// File label.
        file: String,
        /// The underlying resolution failure.
        cause: TypeError,
    },
    /// A hierarchy operation failed.
    Type(TypeError),
    /// The same member signature was added twice.
    DuplicateMember {
        /// Human-readable description of the member.
        member: String,
    },
    /// A member refers to a type kind that cannot appear there (e.g. a
    /// `void` parameter or field).
    InvalidMember {
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Syntax { file, line, col, message } => {
                write!(f, "{file}:{line}:{col}: {message}")
            }
            ApiError::Resolve { file, cause } => write!(f, "{file}: {cause}"),
            ApiError::Type(e) => e.fmt(f),
            ApiError::DuplicateMember { member } => {
                write!(f, "member `{member}` is declared twice")
            }
            ApiError::InvalidMember { detail } => f.write_str(detail),
        }
    }
}

impl std::error::Error for ApiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiError::Resolve { cause, .. } | ApiError::Type(cause) => Some(cause),
            _ => None,
        }
    }
}

impl From<TypeError> for ApiError {
    fn from(e: TypeError) -> Self {
        ApiError::Type(e)
    }
}
