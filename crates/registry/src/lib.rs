//! `prospector-registry`: a named map of tenants, each serving one API
//! universe from its own engine, with zero-downtime hot reload.
//!
//! The serve layer historically held exactly one [`Prospector`] for the
//! life of the process. Production means many universes at once — one
//! process serving N stub sets or SDK versions, each backed by its own
//! `.pspk` snapshot — and means replacing a tenant's graph **under live
//! traffic** when its snapshot is rebuilt. This crate is that state:
//!
//! * a [`Registry`] — `RwLock<BTreeMap<name, Arc<Tenant>>>` — routes a
//!   `?tenant=` key to a tenant (the [`DEFAULT_TENANT`] preserves every
//!   single-tenant URL unchanged);
//! * each [`Tenant`] holds its engine behind an **atomic-swap slot**
//!   (`RwLock<Arc<Prospector>>`): readers clone the `Arc` in a few
//!   nanoseconds and run their query entirely outside the lock, so a
//!   swap never blocks on query latency and an in-flight query simply
//!   finishes on the engine it started with — the old engine is freed
//!   when its last in-flight reader drops;
//! * [`Registry::reload`] builds the replacement engine **off-lock**
//!   (snapshot read, CRC validation, decode — the expensive part), then
//!   takes the write lock only for the pointer swap. A failed load
//!   leaves the old engine serving and parks the error in
//!   [`TenantState::Failed`], so a bad snapshot push degrades to "stale
//!   but correct", never to an outage;
//! * per-tenant provenance ([`TenantInfo`]) — snapshot path, format
//!   version, owned/mmap mode, graph epoch, load time, RSS estimate,
//!   reload and query counts — feeds `GET /tenants`, `/status`, and the
//!   per-tenant metric labels.
//!
//! Result-cache correctness across a swap needs no extra machinery: the
//! cache lives *inside* each [`Prospector`] and graph epochs are
//! process-globally monotone, so a freshly loaded engine starts with an
//! empty cache stamped against a fresh epoch. Old cached results die
//! with the old engine's `Arc`.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use prospector_core::Prospector;
use prospector_store::LoadMode;

/// The tenant every single-tenant URL and CLI flag routes to when no
/// `?tenant=` key is given.
pub const DEFAULT_TENANT: &str = "default";

/// Longest accepted tenant name. Names become metric label values and
/// window-ring names, so they are also restricted to
/// `[A-Za-z0-9_.-]` (see [`validate_name`]).
pub const MAX_NAME_LEN: usize = 64;

/// Where a tenant's engine came from and how it is held in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Built in-process (graph construction + mining), no snapshot.
    Built,
    /// Decoded from a snapshot into owned storage.
    Owned,
    /// Serving borrowed views out of an mmap'd v2 snapshot.
    Mapped,
}

impl EngineMode {
    /// The label `/readyz`, `/status`, and `/tenants` report.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Built => "built",
            EngineMode::Owned => "owned",
            EngineMode::Mapped => "mmap",
        }
    }
}

impl From<LoadMode> for EngineMode {
    fn from(mode: LoadMode) -> EngineMode {
        match mode {
            LoadMode::Owned => EngineMode::Owned,
            LoadMode::Mapped => EngineMode::Mapped,
        }
    }
}

/// A tenant's lifecycle. The state is *advisory* — queries always run
/// against whatever engine the slot holds — but it tells operators what
/// the registry last did for (or to) this tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// A load or reload is in progress; the previous engine (if any)
    /// keeps serving.
    Loading,
    /// The slot holds the engine the tenant's source most recently
    /// loaded successfully.
    Ready,
    /// The tenant was removed from routing and is finishing in-flight
    /// queries; its engine drops when the last reader does.
    Draining,
    /// The last reload failed; the slot still holds (and serves) the
    /// previous engine. The error names what went wrong.
    Failed {
        /// The displayable reason the reload failed.
        error: String,
    },
}

impl TenantState {
    /// The state's label in JSON manifests and metrics.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TenantState::Loading => "loading",
            TenantState::Ready => "ready",
            TenantState::Draining => "draining",
            TenantState::Failed { .. } => "failed",
        }
    }
}

/// How a tenant's engine was obtained — recorded at load time, reported
/// forever after.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Path of the snapshot the engine was loaded from; `None` for an
    /// in-process build.
    pub snapshot_path: Option<String>,
    /// Snapshot format version (`None` for in-process builds and JSON
    /// debug indexes).
    pub format_version: Option<u32>,
    /// How the engine is held in memory.
    pub mode: EngineMode,
    /// Microseconds the load took (validate + decode; 0 for engines
    /// handed in pre-built).
    pub load_us: u64,
}

impl Provenance {
    /// Provenance for an engine built in-process (no snapshot).
    #[must_use]
    pub fn built() -> Provenance {
        Provenance { snapshot_path: None, format_version: None, mode: EngineMode::Built, load_us: 0 }
    }
}

/// Everything the slot swaps atomically: the engine and the facts about
/// where it came from.
struct Slot {
    engine: Arc<Prospector>,
    provenance: Provenance,
    state: TenantState,
    /// Graph epoch at load time (also readable off the engine, but
    /// snapshotted here so `info()` needs no engine lock).
    graph_epoch: u64,
    /// The engine's approximate resident size (graph + API tables), the
    /// per-tenant RSS estimate `/tenants` reports.
    engine_bytes: u64,
    /// Wall-clock ms when this engine was installed.
    loaded_at_ms: u64,
    /// Successful loads into this slot (1 after the first).
    reloads: u64,
}

/// One named tenant: an atomic-swap engine slot plus counters that
/// survive swaps.
pub struct Tenant {
    name: String,
    slot: RwLock<Slot>,
    /// Serializes reloads of this tenant; queries never take it.
    reload_gate: Mutex<()>,
    /// Queries routed to this tenant (the serve layer bumps it).
    queries: AtomicU64,
    /// Failed reload attempts (the old engine kept serving each time).
    reload_failures: AtomicU64,
}

impl Tenant {
    fn new(name: &str, engine: Prospector, provenance: Provenance) -> Tenant {
        Tenant {
            name: name.to_owned(),
            slot: RwLock::new(Slot::install(Arc::new(engine), provenance)),
            reload_gate: Mutex::new(()),
            queries: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
        }
    }

    /// The tenant's name (the routing key).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clones the current engine `Arc` out of the slot — a read lock
    /// held for one refcount bump. The caller runs its query entirely
    /// outside the lock, so a concurrent swap never waits on it and the
    /// query finishes on the engine it started with.
    ///
    /// # Panics
    ///
    /// Panics only if the slot lock is poisoned.
    #[must_use]
    pub fn engine(&self) -> Arc<Prospector> {
        Arc::clone(&self.slot.read().expect("tenant slot poisoned").engine)
    }

    /// Counts one query routed to this tenant.
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the tenant's manifest row.
    ///
    /// # Panics
    ///
    /// Panics only if the slot lock is poisoned.
    #[must_use]
    pub fn info(&self) -> TenantInfo {
        let slot = self.slot.read().expect("tenant slot poisoned");
        TenantInfo {
            name: self.name.clone(),
            state: slot.state.clone(),
            snapshot_path: slot.provenance.snapshot_path.clone(),
            format_version: slot.provenance.format_version,
            mode: slot.provenance.mode,
            graph_epoch: slot.graph_epoch,
            engine_bytes: slot.engine_bytes,
            loaded_at_ms: slot.loaded_at_ms,
            load_us: slot.provenance.load_us,
            reloads: slot.reloads,
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }
}

impl Slot {
    fn install(engine: Arc<Prospector>, provenance: Provenance) -> Slot {
        let graph_epoch = engine.graph().epoch();
        let engine_bytes = engine.graph().approx_bytes() as u64;
        Slot {
            engine,
            provenance,
            state: TenantState::Ready,
            graph_epoch,
            engine_bytes,
            loaded_at_ms: now_ms(),
            reloads: 0,
        }
    }
}

/// One row of the `GET /tenants` manifest.
#[derive(Clone, Debug)]
pub struct TenantInfo {
    /// The routing key.
    pub name: String,
    /// Lifecycle state (plus the last error when `Failed`).
    pub state: TenantState,
    /// Snapshot path, if any.
    pub snapshot_path: Option<String>,
    /// Snapshot format version, if any.
    pub format_version: Option<u32>,
    /// built / owned / mmap.
    pub mode: EngineMode,
    /// Graph epoch of the installed engine.
    pub graph_epoch: u64,
    /// Approximate resident bytes of the installed engine.
    pub engine_bytes: u64,
    /// Wall-clock ms when the installed engine landed.
    pub loaded_at_ms: u64,
    /// Microseconds the installing load took.
    pub load_us: u64,
    /// Successful reloads since the tenant was added.
    pub reloads: u64,
    /// Failed reload attempts (old engine retained each time).
    pub reload_failures: u64,
    /// Queries routed here so far.
    pub queries: u64,
}

/// Why a registry operation failed, displayable as the admin-endpoint
/// error body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The `?tenant=` key (or admin `name`) names no registered tenant.
    UnknownTenant {
        /// The name that failed to resolve.
        name: String,
    },
    /// `POST /tenants` with a name that already exists.
    DuplicateTenant {
        /// The conflicting name.
        name: String,
    },
    /// The tenant name is empty, too long, or has characters that would
    /// corrupt metric labels.
    InvalidName {
        /// The rejected name.
        name: String,
    },
    /// The tenant was built in-process, so there is no snapshot to
    /// reload from.
    NoSnapshot {
        /// The tenant asked to reload.
        name: String,
    },
    /// The snapshot load failed (the old engine, if any, keeps serving).
    LoadFailed {
        /// The tenant whose load failed.
        name: String,
        /// The displayable load error.
        error: String,
    },
    /// The default tenant cannot be removed — it anchors every
    /// single-tenant URL.
    DefaultNotRemovable,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant { name } => write!(f, "unknown tenant `{name}`"),
            RegistryError::DuplicateTenant { name } => {
                write!(f, "tenant `{name}` already exists")
            }
            RegistryError::InvalidName { name } => write!(
                f,
                "invalid tenant name `{name}` (1-{MAX_NAME_LEN} chars of [A-Za-z0-9_.-])"
            ),
            RegistryError::NoSnapshot { name } => {
                write!(f, "tenant `{name}` was built in-process; no snapshot to reload")
            }
            RegistryError::LoadFailed { name, error } => {
                write!(f, "tenant `{name}`: load failed: {error}")
            }
            RegistryError::DefaultNotRemovable => {
                write!(f, "the default tenant cannot be removed")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Rejects names that would corrupt metric labels, window-ring names,
/// or URLs: empty, longer than [`MAX_NAME_LEN`], or containing anything
/// outside `[A-Za-z0-9_.-]`.
///
/// # Errors
///
/// Returns [`RegistryError::InvalidName`] with the offending name.
pub fn validate_name(name: &str) -> Result<(), RegistryError> {
    let ok = !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::InvalidName { name: name.to_owned() })
    }
}

/// The registry: tenant names to swap slots. All mutation goes through
/// `&self`; the serve layer shares one registry across its workers.
#[derive(Default)]
pub struct Registry {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry whose [`DEFAULT_TENANT`] serves `engine` with the
    /// given provenance — the single-tenant setup every existing CLI
    /// flag and test reduces to.
    #[must_use]
    pub fn with_default(engine: Prospector, provenance: Provenance) -> Registry {
        let registry = Registry::new();
        registry
            .insert(DEFAULT_TENANT, engine, provenance)
            .expect("the default tenant name is valid and the registry is empty");
        registry
    }

    /// Registers a pre-built engine under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidName`] or [`RegistryError::DuplicateTenant`].
    ///
    /// # Panics
    ///
    /// Panics only if the tenant-map lock is poisoned.
    pub fn insert(
        &self,
        name: &str,
        engine: Prospector,
        provenance: Provenance,
    ) -> Result<Arc<Tenant>, RegistryError> {
        validate_name(name)?;
        let tenant = Arc::new(Tenant::new(name, engine, provenance));
        {
            let mut map = self.tenants.write().expect("tenant map poisoned");
            if map.contains_key(name) {
                return Err(RegistryError::DuplicateTenant { name: name.to_owned() });
            }
            map.insert(name.to_owned(), Arc::clone(&tenant));
        }
        self.publish_gauges();
        Ok(tenant)
    }

    /// Adds a tenant by loading its engine from a snapshot. The load
    /// runs before the tenant becomes routable — `POST /tenants` either
    /// installs a working engine or changes nothing.
    ///
    /// # Errors
    ///
    /// Name/duplicate errors as [`Registry::insert`];
    /// [`RegistryError::LoadFailed`] if the snapshot does not load.
    ///
    /// # Panics
    ///
    /// Panics only if the tenant-map lock is poisoned.
    pub fn add_from_path(
        &self,
        name: &str,
        path: &str,
        mmap: bool,
    ) -> Result<Arc<Tenant>, RegistryError> {
        validate_name(name)?;
        if self.get(name).is_some() {
            return Err(RegistryError::DuplicateTenant { name: name.to_owned() });
        }
        // Load outside the map lock: another tenant's traffic (and
        // even concurrent adds of *other* names) proceed during the
        // decode. The duplicate re-check inside `insert` closes the
        // add/add race on the same name.
        let (engine, provenance) = load_engine(path, mmap)
            .map_err(|error| RegistryError::LoadFailed { name: name.to_owned(), error })?;
        self.insert(name, engine, provenance)
    }

    /// Rebuilds a tenant's engine from its recorded snapshot path and
    /// atomically swaps it in. The expensive part (read, CRC validation,
    /// decode) runs **off-lock** against a private engine; the write
    /// lock is held only for the pointer swap, so queries keep flowing
    /// on the old engine throughout and in-flight ones finish on the
    /// `Arc` they cloned. On failure the old engine keeps serving and
    /// the tenant parks in [`TenantState::Failed`] with the error.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`], [`RegistryError::NoSnapshot`],
    /// or [`RegistryError::LoadFailed`].
    ///
    /// # Panics
    ///
    /// Panics only if a registry lock is poisoned.
    pub fn reload(&self, name: &str) -> Result<TenantInfo, RegistryError> {
        let tenant = self.get(name).ok_or_else(|| RegistryError::UnknownTenant {
            name: name.to_owned(),
        })?;
        // One reload at a time per tenant; queries never touch this.
        let _gate = tenant.reload_gate.lock().expect("reload gate poisoned");
        let (path, mmap) = {
            let slot = tenant.slot.read().expect("tenant slot poisoned");
            let Some(path) = slot.provenance.snapshot_path.clone() else {
                return Err(RegistryError::NoSnapshot { name: name.to_owned() });
            };
            (path, slot.provenance.mode == EngineMode::Mapped)
        };
        {
            let mut slot = tenant.slot.write().expect("tenant slot poisoned");
            slot.state = TenantState::Loading;
        }
        match load_engine(&path, mmap) {
            Ok((engine, provenance)) => {
                let engine = Arc::new(engine);
                {
                    let mut slot = tenant.slot.write().expect("tenant slot poisoned");
                    let reloads = slot.reloads + 1;
                    let old = std::mem::replace(&mut *slot, Slot::install(engine, provenance));
                    slot.reloads = reloads;
                    // The old engine's Arc drops here (or later, when
                    // the last in-flight query releases its clone) —
                    // outside no lock but this slot's, which queries
                    // hold only for a refcount bump.
                    drop(old);
                }
                prospector_obs::add("registry.reloads", 1);
                self.publish_gauges();
                Ok(tenant.info())
            }
            Err(error) => {
                {
                    let mut slot = tenant.slot.write().expect("tenant slot poisoned");
                    slot.state = TenantState::Failed { error: error.clone() };
                }
                tenant.reload_failures.fetch_add(1, Ordering::Relaxed);
                prospector_obs::add("registry.reload_failures", 1);
                Err(RegistryError::LoadFailed { name: name.to_owned(), error })
            }
        }
    }

    /// Removes a tenant from routing. The tenant is marked
    /// [`TenantState::Draining`] and dropped from the map; its engine
    /// is freed when the last in-flight query (or manifest holder)
    /// releases its `Arc`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] or
    /// [`RegistryError::DefaultNotRemovable`].
    ///
    /// # Panics
    ///
    /// Panics only if a registry lock is poisoned.
    pub fn remove(&self, name: &str) -> Result<TenantInfo, RegistryError> {
        if name == DEFAULT_TENANT {
            return Err(RegistryError::DefaultNotRemovable);
        }
        let tenant = {
            let mut map = self.tenants.write().expect("tenant map poisoned");
            map.remove(name).ok_or_else(|| RegistryError::UnknownTenant {
                name: name.to_owned(),
            })?
        };
        {
            let mut slot = tenant.slot.write().expect("tenant slot poisoned");
            slot.state = TenantState::Draining;
        }
        self.publish_gauges();
        Ok(tenant.info())
    }

    /// The tenant registered under `name`, if any.
    ///
    /// # Panics
    ///
    /// Panics only if the tenant-map lock is poisoned.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().expect("tenant map poisoned").get(name).cloned()
    }

    /// Routes a request's optional `?tenant=` key: `None` (or the
    /// explicit default name) resolves to [`DEFAULT_TENANT`].
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] naming the unresolved key —
    /// the serve layer renders it as a strict-JSON 400, never a silent
    /// fallback to the default tenant.
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<Tenant>, RegistryError> {
        let key = name.unwrap_or(DEFAULT_TENANT);
        self.get(key).ok_or_else(|| RegistryError::UnknownTenant { name: key.to_owned() })
    }

    /// Manifest rows for every tenant, name-ordered.
    ///
    /// # Panics
    ///
    /// Panics only if the tenant-map lock is poisoned.
    #[must_use]
    pub fn manifest(&self) -> Vec<TenantInfo> {
        let map = self.tenants.read().expect("tenant map poisoned");
        map.values().map(|t| t.info()).collect()
    }

    /// Registered tenant names, ordered.
    ///
    /// # Panics
    ///
    /// Panics only if the tenant-map lock is poisoned.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.tenants.read().expect("tenant map poisoned").keys().cloned().collect()
    }

    /// How many tenants are registered.
    ///
    /// # Panics
    ///
    /// Panics only if the tenant-map lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant map poisoned").len()
    }

    /// Whether no tenants are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of every registered engine's RSS estimate. The reload test
    /// pins that this returns to baseline after a swap — the old engine
    /// was freed, not leaked.
    #[must_use]
    pub fn engine_bytes_total(&self) -> u64 {
        self.manifest().iter().map(|t| t.engine_bytes).sum()
    }

    /// Publishes the registry-level gauges (`registry.tenants`,
    /// `registry.engine_bytes`) after any mutation.
    fn publish_gauges(&self) {
        prospector_obs::gauge_set("registry.tenants", self.len() as u64);
        prospector_obs::gauge_set("registry.engine_bytes", self.engine_bytes_total());
    }
}

/// Loads an engine from a snapshot path: `.pspk` files (sniffed by
/// magic) through the binary store — mmap'd when `mmap` and the
/// platform/format allow — and anything else through the JSON debug
/// loader. Returns the engine plus the provenance actually achieved.
///
/// # Errors
///
/// Any read, validation, or decode failure as a displayable message.
pub fn load_engine(path: &str, mmap: bool) -> Result<(Prospector, Provenance), String> {
    let p = Path::new(path);
    let started = Instant::now();
    let mut head = [0u8; 4];
    let binary = std::fs::File::open(p)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut head))
        .map_err(|e| format!("{path}: {e}"))
        .map(|()| prospector_store::is_snapshot(&head))?;
    if binary {
        let (snap, manifest, mode) =
            prospector_store::load_auto(p, mmap).map_err(|e| e.to_string())?;
        let provenance = Provenance {
            snapshot_path: Some(path.to_owned()),
            format_version: Some(manifest.version),
            mode: mode.into(),
            load_us: elapsed_us(started),
        };
        return Ok((Prospector::from_parts(snap.api, snap.graph), provenance));
    }
    let loaded = prospector_core::persist::load_file(p).map_err(|e| e.to_string())?;
    let provenance = Provenance {
        snapshot_path: Some(path.to_owned()),
        format_version: None,
        mode: EngineMode::Owned,
        load_us: elapsed_us(started),
    };
    Ok((Prospector::from_parts(loaded.api, loaded.graph), provenance))
}

/// Scans `dir` for `*.pspk` files and registers one tenant per file,
/// named after the file stem (`eclipse-3.1.pspk` → tenant
/// `eclipse-3.1`). Returns the names added, sorted.
///
/// # Errors
///
/// Directory read failures, invalid stems, duplicates (including a
/// stem colliding with an already-registered tenant), and load
/// failures, all as displayable messages naming the file.
pub fn add_tenants_dir(
    registry: &Registry,
    dir: &str,
    mmap: bool,
) -> Result<Vec<String>, String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pspk"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{dir}: no .pspk snapshots"));
    }
    let mut names = Vec::new();
    for path in &paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("{}: unusable file stem", path.display()))?
            .to_owned();
        let path_str = path.display().to_string();
        registry
            .add_from_path(&name, &path_str, mmap)
            .map_err(|e| format!("{path_str}: {e}"))?;
        names.push(name);
    }
    Ok(names)
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is
/// before it).
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine() -> Prospector {
        let mut loader = jungloid_apidef::ApiLoader::with_prelude();
        loader
            .add_source(
                "io.api",
                r"
                package java.io;
                public class InputStream {}
                public class Reader {}
                public class InputStreamReader extends Reader {
                    InputStreamReader(InputStream in);
                }
                public class BufferedReader extends Reader {
                    BufferedReader(Reader in);
                }
                ",
            )
            .expect("stub parses");
        Prospector::new(loader.finish().expect("api finishes"))
    }

    fn save_snapshot(engine: &Prospector, name: &str) -> String {
        let path = std::env::temp_dir().join(name);
        prospector_store::save_file(&path, engine.api(), engine.graph(), &[])
            .expect("snapshot saves");
        path.display().to_string()
    }

    #[test]
    fn default_tenant_resolves_with_and_without_a_key() {
        let registry = Registry::with_default(tiny_engine(), Provenance::built());
        assert_eq!(registry.resolve(None).unwrap().name(), DEFAULT_TENANT);
        assert_eq!(registry.resolve(Some("default")).unwrap().name(), DEFAULT_TENANT);
        assert_eq!(
            registry.resolve(Some("nope")).err(),
            Some(RegistryError::UnknownTenant { name: "nope".to_owned() })
        );
    }

    #[test]
    fn name_validation_rejects_label_hostile_names() {
        for bad in ["", "a b", "a\"b", "a{b}", &"x".repeat(MAX_NAME_LEN + 1)] {
            assert!(validate_name(bad).is_err(), "{bad:?} must be rejected");
        }
        for good in ["default", "eclipse-3.1", "team_a", "V2"] {
            assert!(validate_name(good).is_ok(), "{good:?} must be accepted");
        }
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_typed_errors() {
        let registry = Registry::with_default(tiny_engine(), Provenance::built());
        assert_eq!(
            registry
                .insert(DEFAULT_TENANT, tiny_engine(), Provenance::built())
                .err(),
            Some(RegistryError::DuplicateTenant { name: DEFAULT_TENANT.to_owned() })
        );
        assert!(matches!(
            registry.reload("ghost"),
            Err(RegistryError::UnknownTenant { .. })
        ));
        assert_eq!(
            registry.reload(DEFAULT_TENANT).err(),
            Some(RegistryError::NoSnapshot { name: DEFAULT_TENANT.to_owned() })
        );
    }

    #[test]
    fn add_from_path_loads_and_reload_swaps_to_a_fresh_epoch() {
        let engine = tiny_engine();
        let path = save_snapshot(&engine, "prospector_registry_reload.pspk");
        let registry = Registry::with_default(tiny_engine(), Provenance::built());
        let tenant = registry.add_from_path("alt", &path, false).expect("tenant loads");
        let before = tenant.info();
        assert_eq!(before.state, TenantState::Ready);
        assert_eq!(before.mode, EngineMode::Owned);
        assert_eq!(before.snapshot_path.as_deref(), Some(path.as_str()));
        assert!(before.format_version.is_some());
        assert!(before.engine_bytes > 0);

        let old = tenant.engine();
        let old_weak = Arc::downgrade(&old);
        let old_epoch = old.graph().epoch();
        drop(old);

        let after = registry.reload("alt").expect("reload succeeds");
        assert_eq!(after.state, TenantState::Ready);
        assert_eq!(after.reloads, 1);
        assert!(after.graph_epoch > old_epoch, "a reloaded graph takes a fresh epoch");
        assert!(
            old_weak.upgrade().is_none(),
            "no reader in flight, so the swap freed the old engine"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_reload_keeps_the_old_engine_serving() {
        let engine = tiny_engine();
        let path = save_snapshot(&engine, "prospector_registry_failed_reload.pspk");
        let registry = Registry::new();
        let tenant = registry.add_from_path("t", &path, false).expect("tenant loads");
        let old = tenant.engine();

        // Corrupt the snapshot: flip a payload byte so the CRC check
        // fails during the off-lock load.
        let mut bytes = std::fs::read(&path).expect("snapshot readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corruption written");

        let err = registry.reload("t").expect_err("corrupt snapshot fails to load");
        assert!(matches!(err, RegistryError::LoadFailed { .. }), "{err:?}");
        let info = tenant.info();
        assert!(matches!(info.state, TenantState::Failed { .. }), "{:?}", info.state);
        assert_eq!(info.reload_failures, 1);
        assert!(
            Arc::ptr_eq(&old, &tenant.engine()),
            "the slot still holds the pre-reload engine"
        );

        // Restore the snapshot: the next reload recovers to Ready.
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).expect("snapshot restored");
        let info = registry.reload("t").expect("restored snapshot reloads");
        assert_eq!(info.state, TenantState::Ready);
        assert_eq!(info.reloads, 1);
        assert!(!Arc::ptr_eq(&old, &tenant.engine()), "the slot swapped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn remove_drains_and_default_is_protected() {
        let engine = tiny_engine();
        let path = save_snapshot(&engine, "prospector_registry_remove.pspk");
        let registry = Registry::with_default(tiny_engine(), Provenance::built());
        registry.add_from_path("gone", &path, false).expect("tenant loads");
        assert_eq!(registry.len(), 2);

        let held = registry.get("gone").expect("registered").engine();
        let weak = Arc::downgrade(&held);
        let info = registry.remove("gone").expect("removable");
        assert_eq!(info.state, TenantState::Draining);
        assert_eq!(registry.len(), 1);
        assert!(registry.get("gone").is_none(), "removed from routing");
        assert!(weak.upgrade().is_some(), "in-flight reader still holds the engine");
        drop(held);
        assert!(weak.upgrade().is_none(), "freed once the last reader drops");

        assert_eq!(registry.remove(DEFAULT_TENANT).err(), Some(RegistryError::DefaultNotRemovable));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn queries_keep_answering_during_concurrent_reloads() {
        let engine = tiny_engine();
        let path = save_snapshot(&engine, "prospector_registry_under_fire.pspk");
        let registry = Registry::new();
        registry.add_from_path("hot", &path, false).expect("tenant loads");
        let tin = engine.api().types().resolve("InputStream").expect("tin");
        let tout = engine.api().types().resolve("BufferedReader").expect("tout");
        let expected: Vec<String> = {
            let e = registry.get("hot").unwrap().engine();
            let r = e.query(tin, tout).expect("baseline query");
            r.suggestions.iter().map(|s| s.code.clone()).collect()
        };
        assert!(!expected.is_empty());

        std::thread::scope(|scope| {
            let registry = &registry;
            let expected = &expected;
            let mut clients = Vec::new();
            for _ in 0..4 {
                clients.push(scope.spawn(move || {
                    for _ in 0..50 {
                        let engine = registry.get("hot").expect("always routable").engine();
                        let r = engine.query(tin, tout).expect("query succeeds mid-reload");
                        let codes: Vec<String> =
                            r.suggestions.iter().map(|s| s.code.clone()).collect();
                        assert_eq!(&codes, expected, "answers are identical across swaps");
                    }
                }));
            }
            for _ in 0..5 {
                registry.reload("hot").expect("reload under fire succeeds");
            }
            for c in clients {
                c.join().expect("client thread");
            }
        });
        let info = registry.get("hot").unwrap().info();
        assert_eq!(info.reloads, 5);
        assert_eq!(info.state, TenantState::Ready);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tenants_dir_registers_one_tenant_per_snapshot() {
        let engine = tiny_engine();
        let dir = std::env::temp_dir().join("prospector_registry_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for name in ["alpha.pspk", "beta.pspk"] {
            prospector_store::save_file(&dir.join(name), engine.api(), engine.graph(), &[])
                .expect("snapshot saves");
        }
        std::fs::write(dir.join("notes.txt"), "ignored").expect("write");
        let registry = Registry::new();
        let names = add_tenants_dir(&registry, &dir.display().to_string(), false)
            .expect("directory registers");
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(registry.names(), ["alpha", "beta"]);
        assert!(registry.engine_bytes_total() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
