//! `prospector` — the command-line analog of the paper's Eclipse plugin.
//!
//! Subcommands:
//!
//! * `query <TIN> <TOUT>` — an explicit jungloid query (§2.1);
//! * `assist <TOUT> [--var name:Type]...` — a content-assist query from a
//!   set of visible variables (§5);
//! * `complete <file.mj> <method> <var>` — the full content-assist flow:
//!   parse a MiniJava file, find the uninitialized local `var` in
//!   `method`, infer the query from the surrounding context, and print
//!   insertable code;
//! * `table1` — regenerate Table 1;
//! * `study [--seed N]` — run the simulated user study (Figure 8);
//! * `compose <TIN> <TOUT>` — answer a query and automatically bind its
//!   free variables with follow-up queries (§2.2's composition);
//! * `explain <TIN> <TOUT> [RANK]` — annotate one suggestion step by
//!   step (kind, types, free variables);
//! * `graph <TYPE>...` — render the neighborhood of the given types as
//!   Graphviz DOT (the paper's figure style);
//! * `mine` — show the mined + generalized example jungloids;
//! * `index build [<stub.api>...] [--corpus <dir>] [-o <path>]` — build
//!   the engine and snapshot it as a versioned binary `.pspk` (§5's
//!   on-disk graph; `--json` writes the human-readable debug format
//!   instead); `index inspect <path>` prints the validated section
//!   breakdown; `index <path>` is shorthand for `index build -o <path>`;
//!   `--index <path>` on any command warm-starts from a snapshot (binary
//!   or JSON, sniffed by magic) instead of rebuilding;
//! * `stats` — graph statistics (§5's size numbers).
//!
//! Engine flags (before the subcommand arguments): `--no-mining`,
//! `--no-generalize`, `--include-protected`, `--jungle` (grow the
//! paper-scale distractor jungle), `--max N` (suggestions to print).
//!
//! Observability flags (any subcommand): `--metrics` prints the metric
//! registry — per-stage pipeline timings, counters, gauges — after the
//! command runs; `--metrics-json <path>` writes the same snapshot as a
//! machine-readable JSON document (see the README's metric schema);
//! `--slow-ms <N>` turns the flight recorder on and retains the full
//! timeline of any query slower than `N` ms (dumped to stderr at exit);
//! `--slow-log-cap <N>` bounds how many slow-query timelines are
//! retained (default 32); `--trace-json <path>` turns the flight
//! recorder on and writes the recorded ring as Chrome-trace JSON after
//! the command.
//!
//! `serve [--addr host:port] [--workers N] [--access-log <path>]
//! [--tenant name=path.pspk]... [--tenants-dir <dir>]` runs the std-only
//! observability HTTP server (`/metrics`, `/healthz`, `/readyz`,
//! `/status`, `/query`, `/assist`, `/slow`, `/trace.json`, `/logs`,
//! `/tenants`, `/reload`) on a fixed worker pool (default: available
//! parallelism) — see the `serve` module in the library half of this
//! crate. The structured access log goes to stderr unless `--access-log`
//! redirects it to a file. The server is multi-tenant: `--index` (or an
//! in-process build) becomes the `default` tenant, each `--tenant
//! name=path.pspk` adds a named tenant, `--tenants-dir` registers one
//! tenant per `.pspk` in a directory (named by file stem), and `POST
//! /reload?tenant=` hot-swaps a tenant's engine with zero downtime.

use std::process::ExitCode;

use jungloid_minijava::ast::{Stmt, TypeName};
use jungloid_typesys::TyId;
use prospector_core::synth::synthesize_statements;
use prospector_core::Prospector;
use prospector_corpora::{build, jungle::JungleSpec, report, BuildOptions};
use prospector_study::{simulate, StudyConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("prospector: {message}");
            ExitCode::FAILURE
        }
    }
}

struct Flags {
    options: BuildOptions,
    max: usize,
    seed: u64,
    index: Option<String>,
    metrics: bool,
    metrics_json: Option<String>,
    slow_ms: Option<u64>,
    slow_log_cap: Option<usize>,
    trace_json: Option<String>,
    rest: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut options = BuildOptions::default();
    let mut max = 5usize;
    let mut seed = StudyConfig::default().seed;
    let mut index = None;
    let mut metrics = false;
    let mut metrics_json = None;
    let mut slow_ms = None;
    let mut slow_log_cap = None;
    let mut trace_json = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-mining" => options.mining = false,
            "--no-generalize" => options.generalize = false,
            "--include-protected" => options.include_protected = true,
            "--mine-params" => options.param_mining = true,
            "--extended" => options.extended = true,
            "--jungle" => options.jungle = Some(JungleSpec::default()),
            "--max" => {
                max = it
                    .next()
                    .ok_or("--max needs a number")?
                    .parse()
                    .map_err(|_| "--max needs a number".to_owned())?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|_| "--seed needs a number".to_owned())?;
            }
            "--index" => {
                index = Some(it.next().ok_or("--index needs a path")?.clone());
            }
            "--metrics" => metrics = true,
            "--metrics-json" => {
                metrics_json = Some(it.next().ok_or("--metrics-json needs a path")?.clone());
            }
            "--slow-ms" => {
                slow_ms = Some(
                    it.next()
                        .ok_or("--slow-ms needs a number")?
                        .parse()
                        .map_err(|_| "--slow-ms needs a number".to_owned())?,
                );
            }
            "--slow-log-cap" => {
                slow_log_cap = Some(
                    it.next()
                        .ok_or("--slow-log-cap needs a number")?
                        .parse()
                        .map_err(|_| "--slow-log-cap needs a number".to_owned())?,
                );
            }
            "--trace-json" => {
                trace_json = Some(it.next().ok_or("--trace-json needs a path")?.clone());
            }
            other => rest.push(other.to_owned()),
        }
    }
    Ok(Flags {
        options,
        max,
        seed,
        index,
        metrics,
        metrics_json,
        slow_ms,
        slow_log_cap,
        trace_json,
        rest,
    })
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.metrics || flags.metrics_json.is_some() {
        prospector_obs::set_enabled(true);
    }
    // Trace ids are deterministic in the seed, so a re-run with the same
    // `--seed` and batch file reproduces the same id sequence (and thus
    // a byte-comparable Chrome trace). Flag precedence mirrors
    // `--metrics`: tracing is off unless a flag that needs it is present
    // (`--slow-ms`, `--trace-json`, or the `serve`/`explain` commands);
    // there is no environment-variable override.
    prospector_obs::trace::set_seed(flags.seed);
    if let Some(ms) = flags.slow_ms {
        // The recorder treats threshold 0 as "slow log off"; passing the
        // flag is already the opt-in, so `--slow-ms 0` clamps to 1 ns and
        // retains every query's timeline.
        prospector_obs::trace::global()
            .set_slow_threshold_ns(ms.saturating_mul(1_000_000).max(1));
        prospector_obs::trace::set_enabled(true);
    }
    if flags.trace_json.is_some() {
        prospector_obs::trace::set_enabled(true);
    }
    if let Some(cap) = flags.slow_log_cap {
        prospector_obs::trace::set_slow_log_cap(cap);
    }
    let result = run_command(&flags);
    // Emit metrics even when the command failed — the partial pipeline
    // record is exactly what a failure investigation wants.
    let emitted = emit_metrics(&flags);
    let traced = emit_traces(&flags);
    result.and(emitted).and(traced)
}

/// Writes the Chrome-trace export and prints the slow-query log after
/// the command finishes, when the corresponding flags asked for them.
fn emit_traces(flags: &Flags) -> Result<(), String> {
    if let Some(path) = &flags.trace_json {
        let doc = prospector_obs::trace::to_chrome_json(&prospector_obs::trace::events());
        std::fs::write(path, doc.to_text()).map_err(|e| format!("{path}: {e}"))?;
    }
    if flags.slow_ms.is_some() {
        let slow = prospector_obs::trace::slow_queries();
        if !slow.is_empty() {
            eprint!("{}", prospector_obs::trace::format_slow_log(&slow));
        }
    }
    Ok(())
}

fn emit_metrics(flags: &Flags) -> Result<(), String> {
    if !flags.metrics && flags.metrics_json.is_none() {
        return Ok(());
    }
    let snap = prospector_obs::snapshot();
    if let Some(path) = &flags.metrics_json {
        let doc = prospector_obs::report::to_json(&snap);
        std::fs::write(path, doc.to_text()).map_err(|e| format!("{path}: {e}"))?;
    }
    if flags.metrics {
        print!("{}", prospector_obs::report::to_text(&snap));
    }
    Ok(())
}

fn run_command(flags: &Flags) -> Result<(), String> {
    let Some(command) = flags.rest.first() else {
        print_usage();
        return Ok(());
    };
    match command.as_str() {
        "query" => {
            let mut batch: Option<String> = None;
            let mut threads: Option<usize> = None;
            let mut positional: Vec<String> = Vec::new();
            let mut it = flags.rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--batch" => {
                        batch = Some(it.next().ok_or("--batch needs a path")?.clone());
                    }
                    "--threads" => {
                        threads = Some(
                            it.next()
                                .ok_or("--threads needs a number")?
                                .parse()
                                .map_err(|_| "--threads needs a number".to_owned())?,
                        );
                    }
                    other => positional.push(other.to_owned()),
                }
            }
            if let Some(path) = batch {
                if !positional.is_empty() {
                    return Err("query --batch takes no positional types".to_owned());
                }
                return query_batch(flags, &path, threads);
            }
            let [tin, tout] = positional.as_slice() else {
                return Err(
                    "usage: prospector query <TIN> <TOUT> | query --batch <file> [--threads N]"
                        .to_owned(),
                );
            };
            let engine = engine(flags)?;
            let tin = resolve(&engine, tin)?;
            let tout = resolve(&engine, tout)?;
            let result = engine.query(tin, tout).map_err(|e| e.to_string())?;
            print_suggestions(&engine, &result.suggestions, flags.max);
            if result.truncation.truncated() {
                println!(
                    "note: enumeration truncated ({}); some jungloids were not explored",
                    result.truncation
                );
            }
            Ok(())
        }
        "assist" => {
            let mut visible: Vec<(String, String)> = Vec::new();
            let mut tout = None;
            let mut it = flags.rest[1..].iter();
            while let Some(a) = it.next() {
                if a == "--var" {
                    let spec = it.next().ok_or("--var needs name:Type")?;
                    let (name, ty) =
                        spec.split_once(':').ok_or("--var needs name:Type")?;
                    visible.push((name.to_owned(), ty.to_owned()));
                } else {
                    tout = Some(a.clone());
                }
            }
            let tout = tout.ok_or("usage: prospector assist <TOUT> [--var name:Type]...")?;
            let engine = engine(flags)?;
            let tout = resolve(&engine, &tout)?;
            let vars: Vec<(&str, TyId)> = visible
                .iter()
                .map(|(n, t)| Ok((n.as_str(), resolve(&engine, t)?)))
                .collect::<Result<_, String>>()?;
            let result = engine.assist(&vars, tout).map_err(|e| e.to_string())?;
            for name in &result.already_available {
                println!("note: variable `{name}` already has the requested type");
            }
            print_suggestions(&engine, &result.suggestions, flags.max);
            if result.truncation.truncated() {
                println!(
                    "note: enumeration truncated ({}); some jungloids were not explored",
                    result.truncation
                );
            }
            Ok(())
        }
        "complete" => {
            let [_, file, method, var] = flags.rest.as_slice() else {
                return Err("usage: prospector complete <file.mj> <method> <var>".to_owned());
            };
            complete(flags, file, method, var)
        }
        "table1" => {
            let engine = engine(flags)?;
            let rows = report::run_table1(&engine);
            println!("{}", report::format_table1(&rows));
            Ok(())
        }
        "study" => {
            let engine = engine(flags)?;
            let config = StudyConfig { seed: flags.seed, ..StudyConfig::default() };
            let studied = simulate(&engine, &config);
            println!("{}", studied.format_figure8());
            Ok(())
        }
        "mine" => {
            let built = build(&flags.options).map_err(|e| e.to_string())?;
            let engine = built.prospector;
            if let Some(mined) = &built.mine_report {
                println!(
                    "{} cast sites, {} raw examples ({} capped sites)",
                    mined.cast_sites,
                    mined.examples.len(),
                    mined.capped_casts
                );
            }
            println!("{} generalized paths spliced into the graph:", engine.graph().examples().len());
            for e in engine.graph().examples() {
                let labels: Vec<String> = e.iter().map(|s| s.label(engine.api())).collect();
                println!("  {}", labels.join(" . "));
            }
            Ok(())
        }
        "explain" => {
            if flags.rest.len() < 3 {
                return Err("usage: prospector explain <TIN> <TOUT> [RANK]".to_owned());
            }
            let engine = engine(flags)?;
            let tin = resolve(&engine, &flags.rest[1])?;
            let tout = resolve(&engine, &flags.rest[2])?;
            let rank: usize = flags
                .rest
                .get(3)
                .map_or(Ok(1), |r| r.parse().map_err(|_| "RANK must be a number".to_owned()))?;
            // `explain` replays the flight recorder's timeline for the
            // query it just ran instead of re-deriving a narrative, so
            // what it prints is exactly what the trace captured.
            prospector_obs::trace::set_enabled(true);
            let result = engine.query(tin, tout).map_err(|e| e.to_string())?;
            let Some(s) = result.suggestions.get(rank.saturating_sub(1)) else {
                return Err(format!("only {} suggestions", result.suggestions.len()));
            };
            println!("{}", s.code);
            print!("{}", prospector_core::explain::format_explanation(engine.api(), &s.jungloid));
            let id = prospector_obs::trace::TraceId(result.stats.trace_id);
            let timeline = prospector_obs::trace::events_for(id);
            if !timeline.is_empty() {
                println!("\nrecorded timeline (trace {id}):");
                print!("{}", prospector_obs::trace::format_timeline(&timeline));
            }
            Ok(())
        }
        "compose" => {
            let [_, tin, tout] = flags.rest.as_slice() else {
                return Err("usage: prospector compose <TIN> <TOUT>".to_owned());
            };
            let engine = engine(flags)?;
            let tin_ty = resolve(&engine, tin)?;
            let tout_ty = resolve(&engine, tout)?;
            let result = engine.query(tin_ty, tout_ty).map_err(|e| e.to_string())?;
            let Some(best) = result.suggestions.first() else {
                println!("no jungloids found");
                return Ok(());
            };
            let input_name = {
                // `IEditorPart` -> `editorPart`, `Shell` -> `shell`.
                let stripped = match tin.as_bytes() {
                    [b'I', second, ..] if second.is_ascii_uppercase() && tin.len() > 2 => &tin[1..],
                    _ => tin.as_str(),
                };
                let mut c = stripped.chars();
                let first = c.next().map(|f| f.to_lowercase().to_string()).unwrap_or_default();
                format!("{first}{}", c.as_str())
            };
            let composed = prospector_core::compose(
                &engine,
                &best.jungloid,
                Some(&input_name),
                &[(&input_name, tin_ty)],
                &prospector_core::ComposeConfig::default(),
            )
            .ok_or("empty jungloid")?;
            println!("{}", composed.render());
            if !composed.is_complete() {
                for (name, ty) in &composed.unresolved {
                    println!(
                        "// `{name}` ({}) could not be bound by any follow-up query",
                        engine.api().types().display(*ty)
                    );
                }
            }
            Ok(())
        }
        "graph" => {
            if flags.rest.len() < 2 {
                return Err("usage: prospector graph <TYPE>...".to_owned());
            }
            let engine = engine(flags)?;
            let roots = flags.rest[1..]
                .iter()
                .map(|n| Ok(prospector_core::NodeId::Ty(resolve(&engine, n)?)))
                .collect::<Result<Vec<_>, String>>()?;
            let dot = prospector_core::dot::neighborhood(
                engine.api(),
                engine.graph(),
                &roots,
                &prospector_core::dot::DotOptions::default(),
            );
            println!("{dot}");
            Ok(())
        }
        "index" => match flags.rest.get(1).map(String::as_str) {
            Some("build") => index_build(flags, &flags.rest[2..]),
            Some("inspect") => {
                let mut layout = false;
                let mut path: Option<&str> = None;
                for a in &flags.rest[2..] {
                    match a.as_str() {
                        "--layout" => layout = true,
                        p if path.is_none() => path = Some(p),
                        _ => return Err(
                            "usage: prospector index inspect <path> [--layout]".to_owned()
                        ),
                    }
                }
                let Some(path) = path else {
                    return Err("usage: prospector index inspect <path> [--layout]".to_owned());
                };
                index_inspect(path, layout)
            }
            Some("heat") => index_heat(flags, &flags.rest[2..]),
            Some(path) if flags.rest.len() == 2 => {
                index_build(flags, &["-o".to_owned(), path.to_owned()])
            }
            _ => Err(
                "usage: prospector index build [<stub.api>...] [--corpus <dir>] [-o <path>] \
                 | index inspect <path> [--layout] | index heat <batch-file> [-k N] \
                 | index <path>"
                    .to_owned(),
            ),
        },
        "serve" => {
            let mut addr = "127.0.0.1:7878".to_owned();
            let mut workers: Option<usize> = None;
            let mut access_log: Option<String> = None;
            let mut mmap = false;
            let mut tenants: Vec<(String, String)> = Vec::new();
            let mut tenants_dir: Option<String> = None;
            let mut opts = prospector_cli::serve::ServeOptions::default();
            let mut it = flags.rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => addr = it.next().ok_or("--addr needs host:port")?.clone(),
                    "--workers" => {
                        workers = Some(
                            it.next()
                                .ok_or("--workers needs a number")?
                                .parse()
                                .map_err(|_| "--workers needs a number".to_owned())?,
                        );
                    }
                    "--access-log" => {
                        access_log =
                            Some(it.next().ok_or("--access-log needs a path")?.clone());
                    }
                    "--mmap" => mmap = true,
                    "--keepalive-max" => {
                        opts.keepalive_max = it
                            .next()
                            .ok_or("--keepalive-max needs a number")?
                            .parse()
                            .map_err(|_| "--keepalive-max needs a number".to_owned())?;
                    }
                    "--idle-timeout" => {
                        let secs: u64 = it
                            .next()
                            .ok_or("--idle-timeout needs seconds")?
                            .parse()
                            .map_err(|_| "--idle-timeout needs seconds".to_owned())?;
                        opts.idle_timeout = std::time::Duration::from_secs(secs);
                    }
                    "--max-inflight" => {
                        opts.max_inflight = it
                            .next()
                            .ok_or("--max-inflight needs a number")?
                            .parse()
                            .map_err(|_| "--max-inflight needs a number".to_owned())?;
                    }
                    "--serve-core" => {
                        match it.next().ok_or("--serve-core needs `epoll` or `pool`")?.as_str() {
                            "epoll" => {
                                if !prospector_cli::poller::supported() {
                                    return Err(
                                        "--serve-core epoll: not available on this platform"
                                            .to_owned(),
                                    );
                                }
                                opts.force_pool = false;
                            }
                            "pool" => opts.force_pool = true,
                            other => {
                                return Err(format!(
                                    "--serve-core needs `epoll` or `pool`, got `{other}`"
                                ))
                            }
                        }
                    }
                    "--tenant" => {
                        let spec = it.next().ok_or("--tenant needs name=path.pspk")?;
                        let (name, path) = spec
                            .split_once('=')
                            .ok_or("--tenant needs name=path.pspk")?;
                        tenants.push((name.to_owned(), path.to_owned()));
                    }
                    "--tenants-dir" => {
                        tenants_dir =
                            Some(it.next().ok_or("--tenants-dir needs a directory")?.clone());
                    }
                    other => return Err(format!("serve: unknown argument `{other}`")),
                }
            }
            if mmap && flags.index.is_none() && tenants.is_empty() && tenants_dir.is_none() {
                return Err("serve: --mmap requires --index <snapshot.pspk>".to_owned());
            }
            // Bind before constructing the engines: binding enables the
            // metric registry, flight recorder, and access log, so the
            // very first scrape shows how this process started — a
            // `store` span for a warm start, the build/mine pipeline for
            // a cold one.
            let mut server = prospector_cli::serve::Server::bind(&addr)?;
            if let Some(n) = workers {
                server.set_workers(n);
            }
            if let Some(path) = &access_log {
                prospector_obs::log::set_file(path)?;
            }
            // The default tenant preserves every single-tenant URL: it is
            // warm-started from `--index` when given, built in-process
            // otherwise. Further tenants load from their own snapshots.
            let registry = if let Some(path) = &flags.index {
                let (engine, provenance) = prospector_registry::load_engine(path, mmap)?;
                prospector_registry::Registry::with_default(engine, provenance)
            } else {
                let engine = build(&flags.options).map_err(|e| e.to_string())?.prospector;
                prospector_registry::Registry::with_default(
                    engine,
                    prospector_registry::Provenance::built(),
                )
            };
            for (name, path) in &tenants {
                registry
                    .add_from_path(name, path, mmap)
                    .map_err(|e| e.to_string())?;
            }
            if let Some(dir) = &tenants_dir {
                prospector_registry::add_tenants_dir(&registry, dir, mmap)?;
            }
            let bound = server.local_addr()?;
            // Keep the address line bare: tooling (and the warm-start
            // test) parses everything after the scheme as the address.
            println!("serving on http://{bound}");
            println!("  {} tenant(s): {}", registry.len(), registry.names().join(", "));
            println!("  GET /healthz     liveness");
            println!("  GET /readyz      readiness + warm-start provenance (JSON)");
            println!("  GET /metrics     Prometheus text exposition (per-tenant labeled series)");
            println!("  GET /status      SLO introspection: windowed latency, rates, pool, RSS, tenants (JSON)");
            println!("  GET /query?tin=..&tout=..[&tenant=]  ranked jungloids + trace_id");
            println!("  GET /assist?var=n:T&tout=..[&tenant=]  content-assist fan-out (JSON)");
            println!("  GET /slow        retained slow-query timelines (JSON; ?clear=1 resets)");
            println!("  GET /trace.json  flight-recorder ring as Chrome trace");
            println!("  GET /logs?n=     newest structured access-log records (JSON)");
            println!("  GET /heat        graph heat map: hottest types/members/edges (JSON; ?k=N)");
            println!("  GET /analytics   workload sketches: popular/miss/truncation keys (JSON; ?k=N)");
            println!("  GET /profile.folded  sampled stage stacks, flamegraph.pl folded format");
            println!("  GET /tenants     tenant manifest: state, provenance, epoch, sizes (JSON)");
            println!("  POST /tenants?name=&path=  register a tenant from a snapshot");
            println!("  POST /reload?tenant=  hot-reload a tenant's engine (zero downtime)");
            // The CLI has no signal handling (std-only), so the flag is
            // never flipped here: the process serves until killed. Tests
            // drive `Server::run` in-process and flip it for a clean join.
            let shutdown = std::sync::atomic::AtomicBool::new(false);
            opts.max = flags.max;
            opts.mmap = mmap;
            server.run(&registry, &opts, &shutdown)
        }
        "stats" => {
            // `stats` always times the pipeline so the §5 size report
            // carries per-stage build timings alongside the graph counts.
            prospector_obs::set_enabled(true);
            let mut heat = false;
            let mut k = 10usize;
            let mut it = flags.rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--heat" => heat = true,
                    "-k" => {
                        k = it
                            .next()
                            .ok_or("-k needs a number")?
                            .parse()
                            .map_err(|_| "-k needs a number".to_owned())?;
                    }
                    other => return Err(format!("stats: unknown argument `{other}`")),
                }
            }
            if heat {
                prospector_core::heat::set_enabled(true);
            }
            let engine = engine(flags)?;
            let g = engine.graph();
            let stats = g.stats(engine.api());
            println!("types:        {}", engine.api().types().len());
            println!("methods:      {}", engine.api().method_count());
            println!("fields:       {}", engine.api().field_count());
            println!("graph nodes:  {} ({} mined)", stats.nodes, stats.mined_nodes);
            println!("graph edges:  {}", stats.total_edges());
            println!("  field:       {}", stats.field_edges);
            println!("  instance:    {}", stats.instance_edges);
            println!("  static:      {}", stats.static_edges);
            println!("  constructor: {}", stats.constructor_edges);
            println!("  widening:    {}", stats.widening_edges);
            println!("  downcast:    {} (mined examples: {})", stats.downcast_edges, stats.examples);
            println!("approx bytes: {}", g.approx_bytes());
            if let Some(path) = &flags.index {
                if let Ok(bytes) = std::fs::read(path) {
                    if let Ok(m) = prospector_store::manifest(&bytes) {
                        println!(
                            "snapshot sections (format v{}, {} bytes total):",
                            m.version, m.total_bytes
                        );
                        for s in &m.sections {
                            println!("  {:<9} {:>9} bytes", s.name, s.bytes);
                        }
                    }
                }
            }
            if heat {
                // Warm the heat table with the Table 1 workload so the
                // report shows which parts of the graph the paper's own
                // evaluation exercises. Pairs a custom `--index` cannot
                // resolve are skipped, not errors.
                let mut warmed = 0usize;
                for p in prospector_corpora::problems::table1() {
                    let (Ok(tin), Ok(tout)) =
                        (resolve(&engine, p.tin), resolve(&engine, p.tout))
                    else {
                        continue;
                    };
                    if engine.query(tin, tout).is_ok() {
                        warmed += 1;
                    }
                }
                println!("heat (after {warmed} Table 1 warm-up queries):");
                print_heat_report(&engine, k);
            }
            print!("{}", prospector_obs::report::to_text(&prospector_obs::snapshot()));
            Ok(())
        }
        "synth" => {
            let mut spec = prospector_corpora::synth::SynthSpec {
                seed: flags.seed,
                ..prospector_corpora::synth::SynthSpec::default()
            };
            let mut out: Option<String> = None;
            let mut queries: Option<String> = None;
            let mut it = flags.rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--types" => {
                        spec.types = it
                            .next()
                            .ok_or("--types needs a number")?
                            .parse()
                            .map_err(|_| "--types needs a number".to_owned())?;
                    }
                    "--alpha" => {
                        spec.alpha = it
                            .next()
                            .ok_or("--alpha needs a number")?
                            .parse()
                            .map_err(|_| "--alpha needs a number".to_owned())?;
                    }
                    "--planted" => {
                        spec.planted = it
                            .next()
                            .ok_or("--planted needs a number")?
                            .parse()
                            .map_err(|_| "--planted needs a number".to_owned())?;
                    }
                    "--plant-len" => {
                        spec.plant_len = it
                            .next()
                            .ok_or("--plant-len needs a number")?
                            .parse()
                            .map_err(|_| "--plant-len needs a number".to_owned())?;
                    }
                    "-o" | "--out" => {
                        out = Some(it.next().ok_or("-o needs a path")?.clone());
                    }
                    "--queries" => {
                        queries = Some(it.next().ok_or("--queries needs a path")?.clone());
                    }
                    other => return Err(format!("synth: unknown argument `{other}`")),
                }
            }
            let mut api = jungloid_apidef::ApiLoader::with_prelude()
                .finish()
                .map_err(|e| e.to_string())?;
            let report = prospector_corpora::synth::grow_synth(&mut api, &spec);
            let engine = Prospector::new(api);
            println!(
                "synth jungle: {} classes, {} methods, {} planted paths of {} hops (seed {})",
                report.classes,
                report.methods,
                report.planted.len(),
                spec.plant_len,
                spec.seed
            );
            println!(
                "graph: {} nodes, {} edges",
                engine.graph().node_count(),
                engine.graph().edge_count()
            );
            if let Some(path) = &queries {
                // Planted ground-truth pairs in `query --batch` format:
                // one `TIN TOUT` pair per line.
                let mut lines = String::new();
                for p in &report.planted {
                    lines.push_str(&p.tin);
                    lines.push(' ');
                    lines.push_str(&p.tout);
                    lines.push('\n');
                }
                std::fs::write(path, lines).map_err(|e| format!("{path}: {e}"))?;
                println!("wrote {path}: {} planted query pairs", report.planted.len());
            }
            if let Some(path) = &out {
                let manifest = prospector_store::save_file(
                    std::path::Path::new(path),
                    engine.api(),
                    engine.graph(),
                    &[],
                )
                .map_err(|e| e.to_string())?;
                println!(
                    "wrote {path}: {:.1} MB, snapshot format v{}",
                    manifest.total_bytes as f64 / (1024.0 * 1024.0),
                    manifest.version
                );
            }
            Ok(())
        }
        other => {
            print_usage();
            Err(format!("unknown command `{other}`"))
        }
    }
}

fn engine(flags: &Flags) -> Result<Prospector, String> {
    if let Some(path) = &flags.index {
        return load_index(path);
    }
    Ok(build(&flags.options).map_err(|e| e.to_string())?.prospector)
}

/// Loads `--index <path>`, routing by magic sniff: `PSPK` files take the
/// binary warm-start path (CSR restored verbatim, no graph rebuild),
/// anything else the JSON debug loader.
fn load_index(path: &str) -> Result<Prospector, String> {
    load_index_with(path, false).map(|(engine, _)| engine)
}

/// [`load_index`] plus the storage mode actually achieved: `"mmap"` when
/// the engine serves borrowed views out of a memory-mapped v2 snapshot,
/// `"owned"` everywhere else (owned read, v1 decode, JSON debug index,
/// or an mmap request the platform/format could not honor).
fn load_index_with(path: &str, use_mmap: bool) -> Result<(Prospector, &'static str), String> {
    use std::io::Read as _;
    let p = std::path::Path::new(path);
    let mut head = [0u8; 4];
    let binary = std::fs::File::open(p)
        .map_err(|e| format!("{path}: {e}"))?
        .read_exact(&mut head)
        .is_ok()
        && prospector_store::is_snapshot(&head);
    if binary {
        if use_mmap {
            let (snap, _, mapped) = prospector_store::map_file(p).map_err(|e| e.to_string())?;
            let mode = if mapped { "mmap" } else { "owned" };
            return Ok((Prospector::from_parts(snap.api, snap.graph), mode));
        }
        let (snap, _) = prospector_store::load_file(p).map_err(|e| e.to_string())?;
        return Ok((Prospector::from_parts(snap.api, snap.graph), "owned"));
    }
    let loaded =
        prospector_core::persist::load_file(p).map_err(|e| e.to_string())?;
    Ok((Prospector::from_parts(loaded.api, loaded.graph), "owned"))
}

/// `index build [<stub.api>...] [--corpus <dir>] [-o <path>] [--json]`.
///
/// With no stubs and no corpus this snapshots the bundled evaluation
/// engine (honoring the engine flags); with stubs, a custom API is
/// loaded and an optional `--corpus` directory of `.mj` files is mined.
fn index_build(flags: &Flags, args: &[String]) -> Result<(), String> {
    let mut stubs: Vec<String> = Vec::new();
    let mut corpus: Option<String> = None;
    let mut out = "idx.pspk".to_owned();
    let mut json = false;
    let mut v1 = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--corpus" => corpus = Some(it.next().ok_or("--corpus needs a directory")?.clone()),
            "-o" | "--out" => out = it.next().ok_or("-o needs a path")?.clone(),
            "--json" => json = true,
            "--format" => {
                v1 = match it.next().ok_or("--format needs v1 or v2")?.as_str() {
                    "v1" => true,
                    "v2" => false,
                    other => return Err(format!("--format: unknown version `{other}`")),
                };
            }
            other => stubs.push(other.to_owned()),
        }
    }
    let (engine, mined) = if stubs.is_empty() && corpus.is_none() {
        let built = build(&flags.options).map_err(|e| e.to_string())?;
        let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
        (built.prospector, mined)
    } else {
        build_custom(flags, &stubs, corpus.as_deref())?
    };
    let path = std::path::Path::new(&out);
    if json {
        prospector_core::persist::save_file(path, engine.api(), engine.graph())
            .map_err(|e| e.to_string())?;
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!(
            "wrote {out} (JSON debug format): {:.1} MB, {} nodes, {} edges",
            bytes as f64 / (1024.0 * 1024.0),
            engine.graph().node_count(),
            engine.graph().edge_count()
        );
        return Ok(());
    }
    let manifest = if v1 {
        let bytes = prospector_store::to_bytes_v1(engine.api(), engine.graph(), &mined);
        std::fs::write(path, &bytes).map_err(|e| format!("{out}: {e}"))?;
        prospector_store::manifest(&bytes).expect("freshly encoded snapshot is well-formed")
    } else {
        prospector_store::save_file(path, engine.api(), engine.graph(), &mined)
            .map_err(|e| e.to_string())?
    };
    println!(
        "wrote {out}: {:.1} MB, snapshot format v{}, {} nodes, {} edges",
        manifest.total_bytes as f64 / (1024.0 * 1024.0),
        manifest.version,
        engine.graph().node_count(),
        engine.graph().edge_count()
    );
    let mut pad_total: u64 = 0;
    for s in &manifest.sections {
        pad_total += u64::from(s.pad_bytes);
        println!(
            "  {:<9} {:>9} bytes  pad {}  crc32 {:#010x}",
            s.name, s.bytes, s.pad_bytes, s.crc32
        );
    }
    println!(
        "  padding overhead: {pad_total} bytes ({:.3}% of file)",
        pad_total as f64 * 100.0 / manifest.total_bytes as f64
    );
    Ok(())
}

fn build_custom(
    flags: &Flags,
    stubs: &[String],
    corpus: Option<&str>,
) -> Result<(Prospector, Vec<Vec<jungloid_apidef::ElemJungloid>>), String> {
    let mut loader = jungloid_apidef::ApiLoader::with_prelude();
    for path in stubs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        loader.add_source(path, &text).map_err(|e| e.to_string())?;
    }
    let mut api = loader.finish().map_err(|e| e.to_string())?;
    let mut report = None;
    if let Some(dir) = corpus {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "mj"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{dir}: no .mj corpus files"));
        }
        let mut units = Vec::new();
        for f in &files {
            let name = f.display().to_string();
            let text = std::fs::read_to_string(f).map_err(|e| format!("{name}: {e}"))?;
            units.push(
                jungloid_minijava::parse::parse_unit(&name, &text).map_err(|e| e.to_string())?,
            );
        }
        let lowered = jungloid_dataflow::LoweredCorpus::lower(&mut api, &units)
            .map_err(|e| e.to_string())?;
        let mut miner = jungloid_dataflow::Miner::new(&api, &lowered);
        miner.config = flags.options.miner;
        report = Some(miner.mine());
    }
    let mut engine = Prospector::with_config(
        api,
        prospector_core::GraphConfig {
            include_protected: flags.options.include_protected,
            restrict_weak_params: flags.options.param_mining,
        },
    );
    let mut mined = Vec::new();
    if let Some(r) = report {
        if flags.options.mining {
            engine
                .add_examples(&r.examples, flags.options.generalize)
                .map_err(|e| e.to_string())?;
            mined = r.examples;
        }
    }
    Ok((engine, mined))
}

/// `index inspect <path> [--layout]`: the validated manifest plus
/// decoded counts; `--layout` adds the per-section byte map (frame and
/// payload offsets, padding) that documents where the zero-copy loader
/// borrows its views from.
fn index_inspect(path: &str, layout: bool) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if !prospector_store::is_snapshot(&bytes) {
        let loaded = prospector_core::persist::load_file(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("{path}: JSON debug index, {} bytes", bytes.len());
        println!("  graph epoch:   {}", loaded.graph.epoch());
        println!("  snapshot mode: owned (JSON debug format)");
        println!("  types:   {}", loaded.api.types().len());
        println!("  methods: {}", loaded.api.method_count());
        println!("  fields:  {}", loaded.api.field_count());
        println!(
            "  nodes:   {} ({} mined)",
            loaded.graph.node_count(),
            loaded.graph.mined_node_count()
        );
        println!("  edges:   {}", loaded.graph.edge_count());
        return Ok(());
    }
    let m = prospector_store::manifest(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let snap = prospector_store::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: prospector snapshot, format v{}, {} bytes", m.version, m.total_bytes);
    // The mode a loader would achieve: borrowing (mmap or zero-copy
    // buffer views) needs the v2 layout with every section 8-aligned.
    let mappable = m.version >= 2 && m.sections.iter().all(|s| s.offset % 8 == 0);
    println!("  graph epoch:   {}", snap.graph.epoch());
    println!(
        "  snapshot mode: {}",
        if mappable { "mmap-capable (v2, 8-aligned sections)" } else { "owned-only" }
    );
    for s in &m.sections {
        // An unaligned payload is legal (v1 always is) but means the
        // loader must fall back to copying instead of borrowing views.
        let aligned = if s.offset % 8 == 0 { "" } else { "  UNALIGNED" };
        println!(
            "  section {:<9} {:>9} bytes  offset {:>9}  pad {}  crc32 {:#010x}{aligned}",
            s.name, s.bytes, s.offset, s.pad_bytes, s.crc32
        );
    }
    if layout {
        let header = if m.version >= 2 { 16u64 } else { 12u64 };
        let frame = if m.version >= 2 { 24u64 } else { 16u64 };
        println!("  layout:");
        println!("    {:>9}  {:>9}  region", "offset", "size");
        println!("    {:>9}  {:>9}  header", 0, header);
        for s in &m.sections {
            println!("    {:>9}  {:>9}  {} frame", s.offset - frame, frame, s.name);
            println!("    {:>9}  {:>9}  {} payload", s.offset, s.bytes, s.name);
            if s.pad_bytes > 0 {
                println!("    {:>9}  {:>9}  {} padding", s.offset + s.bytes, s.pad_bytes, s.name);
            }
        }
    }
    println!("  types:   {}", snap.api.types().len());
    println!("  methods: {}", snap.api.method_count());
    println!("  fields:  {}", snap.api.field_count());
    println!(
        "  nodes:   {} ({} mined)",
        snap.graph.node_count(),
        snap.graph.mined_node_count()
    );
    println!("  edges:   {}", snap.graph.edge_count());
    println!(
        "  mined examples: {}, generalized paths: {}",
        snap.mined_examples.len(),
        snap.graph.examples().len()
    );
    Ok(())
}

fn resolve(engine: &Prospector, name: &str) -> Result<TyId, String> {
    engine.api().types().resolve(name).map_err(|e| e.to_string())
}

fn print_suggestions(
    engine: &Prospector,
    suggestions: &[prospector_core::Suggestion],
    max: usize,
) {
    if suggestions.is_empty() {
        println!("no jungloids found");
        return;
    }
    for (i, s) in suggestions.iter().take(max).enumerate() {
        println!("{}. {}", i + 1, s.code);
        for line in s.snippet.free_var_decls(engine.api()) {
            println!("     {line}");
        }
    }
    if suggestions.len() > max {
        println!("... and {} more (use --max to see them)", suggestions.len() - max);
    }
}

/// The content-assist flow of §5: the declared type of the uninitialized
/// local is `tout`; the types of variables declared before it (plus the
/// method's parameters, plus `void`) are the `tin` set.
fn complete(flags: &Flags, file: &str, method_name: &str, var: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let unit = jungloid_minijava::parse::parse_unit(file, &text).map_err(|e| e.to_string())?;
    let method = unit
        .classes
        .iter()
        .flat_map(|c| &c.methods)
        .find(|m| m.name == method_name)
        .ok_or_else(|| format!("no method `{method_name}` in {file}"))?;

    let engine = engine(flags)?;
    let resolve_tn = |t: &TypeName| -> Result<TyId, String> {
        engine.api().types().resolve(&t.parts.join(".")).map_err(|e| e.to_string())
    };
    let mut visible: Vec<(String, TyId)> = Vec::new();
    for (ty, name) in &method.params {
        visible.push((name.clone(), resolve_tn(ty)?));
    }
    let mut target: Option<TyId> = None;
    for stmt in &method.body {
        if let Stmt::Local { ty, name, init } = stmt {
            if name == var && init.is_none() {
                target = Some(resolve_tn(ty)?);
                break;
            }
            visible.push((name.clone(), resolve_tn(ty)?));
        }
    }
    let tout =
        target.ok_or_else(|| format!("no uninitialized local `{var}` in `{method_name}`"))?;
    let vars: Vec<(&str, TyId)> = visible.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let result = engine.assist(&vars, tout).map_err(|e| e.to_string())?;
    println!(
        "completing `{}` in `{}` ({} candidates):",
        var,
        method_name,
        result.suggestions.len()
    );
    for (i, s) in result.suggestions.iter().take(flags.max).enumerate() {
        // Render the full §2.2-style statement sequence for the top pick.
        println!("{}. {}", i + 1, s.code);
        if i == 0 {
            let (stmts, _) =
                synthesize_statements(engine.api(), &s.jungloid, s.input_var.as_deref());
            for stmt in stmts {
                println!("     {}", jungloid_minijava::print::stmt_to_string(&stmt));
            }
        }
    }
    Ok(())
}

/// `query --batch <file>`: one `TIN TOUT` pair per line (blank lines and
/// `#` comments skipped), answered concurrently over the shared engine
/// and reported as JSON lines — one object per query in input order,
/// then one aggregate object.
fn query_batch(flags: &Flags, path: &str, threads: Option<usize>) -> Result<(), String> {
    use prospector_obs::Json;

    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let engine = engine(flags)?;
    let mut queries: Vec<(TyId, TyId)> = Vec::new();
    let mut names: Vec<(String, String)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(tin), Some(tout), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{path}:{}: expected `TIN TOUT`, got `{line}`", lineno + 1));
        };
        let tin_ty = resolve(&engine, tin).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let tout_ty = resolve(&engine, tout).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        queries.push((tin_ty, tout_ty));
        names.push((tin.to_owned(), tout.to_owned()));
    }
    if queries.is_empty() {
        return Err(format!("{path}: no queries (one `TIN TOUT` pair per line)"));
    }

    let started = std::time::Instant::now();
    let batch = match threads {
        Some(n) => engine.query_batch_threads(&queries, n),
        None => engine.query_batch(&queries),
    };
    let total = started.elapsed();

    let mut errors = 0usize;
    for (entry, (tin, tout)) in batch.iter().zip(&names) {
        // `trace_id` is preallocated in input order (before the worker
        // fan-out), so it is present — and deterministic under `--seed` —
        // even for queries that failed.
        let mut pairs = vec![
            ("tin", Json::Str(tin.clone())),
            ("tout", Json::Str(tout.clone())),
            ("trace_id", Json::num_u(entry.trace_id.0)),
        ];
        match &entry.result {
            Ok(result) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push((
                    "shortest",
                    result.shortest.map_or(Json::Null, |m| Json::num_u(u64::from(m))),
                ));
                pairs.push(("truncation", Json::Str(result.truncation.label().to_owned())));
                pairs.push(("cached", Json::Bool(result.stats.result_cache_hits > 0)));
                pairs.push(("found", Json::num_u(result.suggestions.len() as u64)));
                pairs.push(("dist_cache_hits", Json::num_u(result.stats.dist_cache_hits)));
                pairs.push((
                    "dist_cache_misses",
                    Json::num_u(result.stats.dist_cache_misses),
                ));
                pairs.push(("dfs_expansions", Json::num_u(result.stats.dfs_expansions)));
                pairs.push((
                    "suggestions",
                    Json::Arr(
                        result
                            .suggestions
                            .iter()
                            .take(flags.max)
                            .map(|s| Json::Str(s.code.clone()))
                            .collect(),
                    ),
                ));
            }
            Err(e) => {
                errors += 1;
                pairs.push(("ok", Json::Bool(false)));
                pairs.push(("error", Json::Str(e.to_string())));
            }
        }
        pairs.push(("time_us", Json::num_u(entry.time.as_micros() as u64)));
        println!("{}", Json::obj(pairs).to_text());
    }

    let total_us = total.as_micros().max(1) as u64;
    let qps = queries.len() as f64 / (total_us as f64 / 1_000_000.0);
    let aggregate = Json::obj(vec![(
        "batch",
        Json::obj(vec![
            ("queries", Json::num_u(queries.len() as u64)),
            ("errors", Json::num_u(errors as u64)),
            (
                "threads",
                Json::num_u(threads.map_or_else(
                    || {
                        std::thread::available_parallelism()
                            .map_or(1, std::num::NonZeroUsize::get)
                            .min(queries.len()) as u64
                    },
                    |n| n.clamp(1, queries.len()) as u64,
                )),
            ),
            ("total_us", Json::num_u(total_us)),
            ("qps", Json::Num((qps * 10.0).round() / 10.0)),
        ]),
    )]);
    println!("{}", aggregate.to_text());
    Ok(())
}

/// `index heat <batch-file> [-k N]`: offline workload analytics. Replays
/// a `query --batch`-format file (one `TIN TOUT` pair per line) with heat
/// accounting enabled and prints the top-K report — the same data `serve`
/// exposes at `GET /heat` and `GET /analytics`, but over a fixed batch so
/// the output is deterministic and diffable.
fn index_heat(flags: &Flags, rest: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut k = 10usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-k" => {
                k = it
                    .next()
                    .ok_or("-k needs a number")?
                    .parse()
                    .map_err(|_| "-k needs a number".to_owned())?;
            }
            p if path.is_none() => path = Some(p),
            _ => return Err("usage: prospector index heat <batch-file> [-k N]".to_owned()),
        }
    }
    let Some(path) = path else {
        return Err("usage: prospector index heat <batch-file> [-k N]".to_owned());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    prospector_core::heat::set_enabled(true);
    let engine = engine(flags)?;
    let mut queries: Vec<(TyId, TyId)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(tin), Some(tout), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{path}:{}: expected `TIN TOUT`, got `{line}`", lineno + 1));
        };
        let tin_ty = resolve(&engine, tin).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let tout_ty = resolve(&engine, tout).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        queries.push((tin_ty, tout_ty));
    }
    if queries.is_empty() {
        return Err(format!("{path}: no queries (one `TIN TOUT` pair per line)"));
    }
    let batch = engine.query_batch(&queries);
    let errors = batch.iter().filter(|e| e.result.is_err()).count();
    println!("heat (batch {path}: {} queries, {errors} errors):", queries.len());
    print_heat_report(&engine, k);
    Ok(())
}

/// Shared by `stats --heat` and `index heat`: the top-K graph heat and
/// workload-analytics report. All orderings are deterministic (count
/// descending, names ascending on ties) so repeated runs over the same
/// batch diff clean.
fn print_heat_report(engine: &Prospector, k: usize) {
    let heat = engine.heat_snapshot(k);
    println!("  epoch:         {}", heat.epoch);
    println!("  queries:       {}", heat.queries);
    println!("  field builds:  {}", heat.fields);
    println!(
        "  nodes touched: {} ({} total visits)",
        heat.nodes_touched, heat.node_total
    );
    println!(
        "  edges touched: {} ({} total examinations)",
        heat.edges_touched, heat.edge_total
    );
    println!("  top types:");
    for e in &heat.top_types {
        println!("    {:>8}  {}", e.count, e.label);
    }
    println!("  top members:");
    for e in &heat.top_members {
        println!("    {:>8}  {}", e.count, e.label);
    }
    println!("  top edges:");
    for e in &heat.top_edges {
        println!("    {:>8}  {} -[{}]-> {}", e.count, e.from, e.elem, e.to);
    }
    let wl = engine.workload_snapshot(k);
    println!("workload:");
    println!("  queries:       {}", wl.queries);
    println!("  cache misses:  {}", wl.cache_misses);
    println!("  truncations:   {}", wl.truncations);
    println!(
        "  sketch:        count-min {}x{}",
        wl.sketch_width, wl.sketch_depth
    );
    for (title, entries) in [
        ("popular", &wl.popularity),
        ("miss-heavy", &wl.misses),
        ("truncation-heavy", &wl.truncated),
    ] {
        if entries.is_empty() {
            continue;
        }
        println!("  {title}:");
        for e in entries {
            println!(
                "    {:>8}  {} -> {} (err {}, cm {})",
                e.count, e.tin, e.tout, e.err, e.estimate
            );
        }
    }
}

fn print_usage() {
    println!(
        "prospector — jungloid synthesis over the modeled Eclipse/J2SE APIs

usage:
  prospector [flags] query <TIN> <TOUT>
  prospector [flags] query --batch <file> [--threads N]
  prospector [flags] assist <TOUT> [--var name:Type]...
  prospector [flags] complete <file.mj> <method> <var>
  prospector [flags] table1
  prospector [flags] study [--seed N]
  prospector [flags] mine
  prospector [flags] stats [--heat] [-k N]
  prospector [flags] index build [<stub.api>...] [--corpus <dir>] [-o <path>] [--json] [--format v1|v2]
  prospector [flags] index inspect <path> [--layout]
  prospector [flags] index heat <batch-file> [-k N]
  prospector [flags] serve [--addr host:port] [--workers N] [--access-log <path>] [--mmap]
                           [--tenant name=path.pspk]... [--tenants-dir <dir>]
                           [--serve-core epoll|pool] [--keepalive-max N]
                           [--idle-timeout SECS] [--max-inflight N]
  prospector [flags] synth --types N [--alpha F] [--planted N] [--plant-len N]
                           [-o <path.pspk>] [--queries <batch-file>]

flags: --no-mining --no-generalize --include-protected --mine-params --extended --jungle
       --max N --seed N --index <path> --metrics --metrics-json <path>
       --slow-ms N --slow-log-cap N --trace-json <path>"
    );
}
