//! `prospector serve` — a zero-dependency HTTP/1.1 observability server.
//!
//! Everything here is `std`-only: a non-blocking accept loop over
//! [`std::net::TcpListener`] feeding a **fixed worker pool** through a
//! bounded job queue (`Mutex<VecDeque>` + [`Condvar`]). Workers and the
//! accept loop live inside one [`std::thread::scope`], so shutting down
//! is still "set the flag, wait for the scope": the accept loop stops
//! taking connections, workers drain whatever is already queued, and the
//! scope joins everything before [`Server::run`] returns — no thread
//! outlives it.
//!
//! Connections are HTTP/1.1 **keep-alive** by default: a worker serves
//! requests off one socket until the client sends `Connection: close`,
//! goes quiet past the IO timeout, or hits the per-connection request
//! cap. This pairs with the engine's result cache: a dashboard or
//! latency probe reissuing the same `/query` over one connection pays
//! one TCP handshake and (after the first request) zero pipeline runs.
//!
//! Endpoints:
//!
//! | path                      | returns                                     |
//! |---------------------------|---------------------------------------------|
//! | `GET /healthz`            | `ok` (liveness)                             |
//! | `GET /metrics`            | Prometheus text exposition of the registry  |
//! | `GET /query?tin=..&tout=..` | ranked-jungloid JSON + the query's `trace_id` |
//! | `GET /slow`               | the retained slow-query timelines as JSON   |
//! | `GET /trace.json`         | the flight-recorder ring as Chrome trace    |
//!
//! The server enables both the metric registry and the flight recorder
//! at bind time (it exists to expose them), and pre-registers the core
//! metric families at zero so a scrape taken before the first query
//! still shows every series a dashboard will ever chart.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use prospector_core::Prospector;
use prospector_obs::trace::{self, TraceId};
use prospector_obs::Json;

/// How long the accept loop sleeps when no connection is pending. The
/// shutdown flag is re-checked at this cadence, so it bounds shutdown
/// latency as well as idle wakeup rate.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket timeout: a client that connects and then goes
/// silent cannot pin a worker (and thus the scope) forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// How long an idle worker waits on the job-queue condvar before
/// re-checking the shutdown flag; bounds shutdown latency for workers
/// parked on an empty queue.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Pending-connection slots per worker. When the queue is this deep the
/// accept loop stops pulling from the kernel backlog, which is the
/// natural place for further connections to wait.
const QUEUE_SLOTS_PER_WORKER: usize = 16;

/// Cap on requests served over one keep-alive connection before the
/// server closes it — a backstop so one chatty client cannot hold a
/// worker forever.
const MAX_KEEPALIVE_REQUESTS: usize = 1000;

/// The bounded handoff between the accept loop and the worker pool.
struct JobQueue {
    jobs: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue { jobs: Mutex::new(VecDeque::new()), ready: Condvar::new() }
    }

    fn push(&self, stream: TcpStream) {
        self.jobs.lock().unwrap().push_back(stream);
        self.ready.notify_one();
    }

    fn len(&self) -> usize {
        self.jobs.lock().unwrap().len()
    }

    /// Pops the next connection, waiting while the queue is empty. The
    /// pop is attempted *before* the stop checks, so connections that
    /// were accepted before either flag flipped are always drained;
    /// `None` means "empty and stopping — exit". `stopping` is the
    /// server-internal flag covering fatal accept errors, where the
    /// caller's `shutdown` never flips.
    fn pop(&self, shutdown: &AtomicBool, stopping: &AtomicBool) -> Option<TcpStream> {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            if let Some(stream) = jobs.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::Relaxed) || stopping.load(Ordering::Relaxed) {
                return None;
            }
            jobs = self.ready.wait_timeout(jobs, WORKER_POLL).unwrap().0;
        }
    }
}

/// A bound listener, separated from [`Server::run`] so callers (the CLI,
/// the smoke test) can learn the real address before serving — binding
/// port 0 and reading it back is how the test avoids port collisions.
pub struct Server {
    listener: TcpListener,
    workers: usize,
}

impl Server {
    /// Binds `addr`, turns the metric registry and flight recorder on,
    /// and pre-registers the core metric families at zero. The worker
    /// pool defaults to the machine's available parallelism.
    ///
    /// # Errors
    ///
    /// Returns the bind failure as a displayable message.
    pub fn bind(addr: &str) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        prospector_obs::set_enabled(true);
        trace::set_enabled(true);
        warm_registry();
        let workers = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        Ok(Server { listener, workers })
    }

    /// Overrides the worker-pool size (`--workers N`); zero is clamped
    /// to one.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Returns the OS error as a displayable message.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves until `shutdown` is set. Accepted connections are queued to
    /// a fixed pool of worker threads; when the flag flips, the accept
    /// loop stops, workers drain the queue and finish their in-flight
    /// connections, and the scope joins them all before this returns.
    ///
    /// # Errors
    ///
    /// Returns accept-loop failures other than `WouldBlock`.
    pub fn run(
        self,
        engine: &Prospector,
        max: usize,
        shutdown: &AtomicBool,
    ) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let queue = JobQueue::new();
        let queue_cap = self.workers * QUEUE_SLOTS_PER_WORKER;
        let stopping = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let queue = &queue;
                let stopping = &stopping;
                scope.spawn(move || {
                    while let Some(stream) = queue.pop(shutdown, stopping) {
                        handle_connection(stream, engine, max);
                    }
                });
            }
            let result = loop {
                if shutdown.load(Ordering::Relaxed) {
                    break Ok(());
                }
                if queue.len() >= queue_cap {
                    // Backpressure: leave further connections in the
                    // kernel backlog until the pool catches up.
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => queue.push(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => break Err(format!("accept: {e}")),
                }
            };
            // Wake every parked worker so they observe the stop without
            // waiting out their poll interval (covers both clean
            // shutdown and fatal accept errors).
            stopping.store(true, Ordering::Relaxed);
            queue.ready.notify_all();
            result
        })
    }
}

/// Creates the metric families the core pipeline reports into, so the
/// very first `/metrics` scrape already exposes them at zero. (Prometheus
/// guidance: export a series before its first event, so `rate()` sees the
/// 0 → 1 transition.)
fn warm_registry() {
    const COUNTERS: &[&str] = &[
        "search.dfs_expansions",
        "search.bfs_relaxations",
        "search.paths_enumerated",
        "search.truncated.path_cap",
        "search.truncated.expansion_cap",
        "engine.dist_cache.hits",
        "engine.dist_cache.misses",
        "engine.dist_cache.evictions",
        "engine.result_cache.hits",
        "engine.result_cache.misses",
        "engine.result_cache.collapsed",
        "engine.result_cache.evictions",
        "engine.result_cache.invalidations",
        "engine.batch.calls",
        "engine.batch.queries",
        "engine.batch.errors",
        "engine.dedup_drops",
        "rank.comparisons",
        "synth.snippets",
    ];
    for name in COUNTERS {
        prospector_obs::add(name, 0);
    }
    prospector_obs::gauge_set("engine.result_cache.entries", 0);
    for name in [
        "query.latency_ns",
        "query.stage_ns.search",
        "query.stage_ns.synth",
        "query.stage_ns.rank",
    ] {
        let _ = prospector_obs::metrics::histogram(name);
    }
}

/// Serves one connection: requests are answered in a keep-alive loop
/// until the client asks to close (`Connection: close`), goes quiet past
/// [`IO_TIMEOUT`], or exhausts [`MAX_KEEPALIVE_REQUESTS`].
fn handle_connection(mut stream: TcpStream, engine: &Prospector, max: usize) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    for served in 0..MAX_KEEPALIVE_REQUESTS {
        let Some(request) = read_request(&mut stream) else {
            return;
        };
        // The final slot always closes, so the header never promises a
        // request we will not serve.
        let close = request.close || served + 1 == MAX_KEEPALIVE_REQUESTS;
        serve_request(&mut stream, engine, max, &request, close);
        if close {
            return;
        }
    }
}

fn serve_request(
    stream: &mut TcpStream,
    engine: &Prospector,
    max: usize,
    request: &Request,
    close: bool,
) {
    if request.method != "GET" {
        respond(stream, 405, "Method Not Allowed", "text/plain", "only GET is served\n", close);
        return;
    }
    let (route, query) = match request.path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (request.path.as_str(), ""),
    };
    match route {
        "/healthz" => respond(stream, 200, "OK", "text/plain", "ok\n", close),
        "/metrics" => {
            let body = prospector_obs::prom::render(&prospector_obs::snapshot());
            respond(stream, 200, "OK", "text/plain; version=0.0.4", &body, close);
        }
        "/query" => match run_query(engine, max, query) {
            Ok(body) => respond(stream, 200, "OK", "application/json", &body, close),
            Err(message) => {
                let body = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(message)),
                ])
                .to_text();
                respond(stream, 400, "Bad Request", "application/json", &body, close);
            }
        },
        "/slow" => {
            let body = trace::slow_to_json(&trace::slow_queries()).to_text();
            respond(stream, 200, "OK", "application/json", &body, close);
        }
        "/trace.json" => {
            let body = trace::to_chrome_json(&trace::events()).to_text();
            respond(stream, 200, "OK", "application/json", &body, close);
        }
        _ => respond(stream, 404, "Not Found", "text/plain", "no such endpoint\n", close),
    }
}

/// One parsed request head. Every endpoint is a bodyless GET, so the
/// request line plus the `Connection` header is all the server needs.
struct Request {
    method: String,
    path: String,
    /// The client sent `Connection: close`.
    close: bool,
}

/// Reads one request head (`GET /path HTTP/1.1` + headers). Returns
/// `None` on a clean disconnect, timeout, or malformed head — all of
/// which end the connection.
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut buf = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read to end-of-headers (or a sane cap) one byte at a time; request
    // heads are tiny and this avoids over-reading into the next
    // pipelined request on a keep-alive connection.
    while !buf.ends_with(b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut lines = text.lines();
    let line = lines.next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    let close = lines
        .take_while(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .any(|(name, value)| {
            name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
        });
    Some(Request { method, path, close })
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    close: bool,
) {
    let connection = if close { "close" } else { "keep-alive" };
    let header = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Answers `GET /query?tin=..&tout=..` with ranked-jungloid JSON.
///
/// Routed through the one-element batch path on purpose: the server's
/// queries then share the exact accounting (`engine.batch.*`, preallocated
/// trace ids) that `query --batch` lines get, so a dashboard scraping
/// `/metrics` sees one coherent story regardless of how queries arrived.
fn run_query(engine: &Prospector, max: usize, query: &str) -> Result<String, String> {
    let mut tin: Option<String> = None;
    let mut tout: Option<String> = None;
    for pair in query.split('&') {
        let Some((key, value)) = pair.split_once('=') else { continue };
        match key {
            "tin" => tin = Some(percent_decode(value)),
            "tout" => tout = Some(percent_decode(value)),
            _ => {}
        }
    }
    let tin = tin.ok_or("missing query parameter `tin`")?;
    let tout = tout.ok_or("missing query parameter `tout`")?;
    let tin_ty = engine.api().types().resolve(&tin).map_err(|e| e.to_string())?;
    let tout_ty = engine.api().types().resolve(&tout).map_err(|e| e.to_string())?;

    let batch = engine.query_batch(&[(tin_ty, tout_ty)]);
    let entry = batch.into_iter().next().ok_or("empty batch result")?;
    let result = entry.result.map_err(|e| e.to_string())?;

    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("tin", Json::Str(tin)),
        ("tout", Json::Str(tout)),
        ("trace_id", Json::num_u(entry.trace_id.0)),
        ("trace_id_hex", Json::Str(TraceId(entry.trace_id.0).to_string())),
        (
            "shortest",
            result.shortest.map_or(Json::Null, |m| Json::num_u(u64::from(m))),
        ),
        ("truncation", Json::Str(result.truncation.label().to_owned())),
        ("cached", Json::Bool(result.stats.result_cache_hits > 0)),
        ("found", Json::num_u(result.suggestions.len() as u64)),
        (
            "suggestions",
            Json::Arr(
                result
                    .suggestions
                    .iter()
                    .take(max)
                    .map(|s| Json::Str(s.code.clone()))
                    .collect(),
            ),
        ),
        (
            "stats",
            Json::obj(vec![
                ("result_cache_hits", Json::num_u(result.stats.result_cache_hits)),
                ("result_cache_misses", Json::num_u(result.stats.result_cache_misses)),
                ("dist_cache_hits", Json::num_u(result.stats.dist_cache_hits)),
                ("dist_cache_misses", Json::num_u(result.stats.dist_cache_misses)),
                ("bfs_relaxations", Json::num_u(result.stats.bfs_relaxations)),
                ("dfs_expansions", Json::num_u(result.stats.dfs_expansions)),
            ]),
        ),
    ];
    pairs.push(("time_us", Json::num_u(entry.time.as_micros() as u64)));
    Ok(Json::obj(pairs).to_text())
}

/// Minimal percent-decoding for query values (`%2E`, `+` → space). Type
/// names are dot-separated identifiers, so this is already generous.
fn percent_decode(value: &str) -> String {
    let bytes = value.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::percent_decode;

    #[test]
    fn percent_decode_handles_escapes_and_passthrough() {
        assert_eq!(percent_decode("IFile"), "IFile");
        assert_eq!(percent_decode("a%2Eb"), "a.b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }
}
