//! `prospector serve` — a zero-dependency HTTP/1.1 observability server.
//!
//! Everything here is `std`-only, and the server has **two cores**
//! behind one [`Server::run`]:
//!
//! - On Linux/x86_64 the default is the **epoll readiness core**
//!   ([`crate::poller`]): one poller thread owns the listener and every
//!   parked socket, frames requests nonblockingly, and hands *parsed*
//!   requests to the worker pool. Keep-alive connections wait in the
//!   poller between requests instead of occupying workers, so 10k idle
//!   connections cost file descriptors, not threads. The poller also
//!   runs admission control: past the in-flight ceiling it sheds with
//!   `429` + `Retry-After` straight off the poller thread.
//! - Everywhere else (or with `--serve-core pool`) the portable
//!   **pool core** runs: a non-blocking accept loop feeding a fixed
//!   worker pool through a bounded job queue (`Mutex<VecDeque>` +
//!   [`Condvar`]), one worker per connection lifetime.
//!
//! Either way the threads live inside one [`std::thread::scope`], so
//! shutting down is "set the flag, wait for the scope": accepting
//! stops, workers drain whatever is queued, and the scope joins
//! everything before [`Server::run`] returns — no thread outlives it.
//!
//! Connections are HTTP/1.1 **keep-alive** by default: the server
//! answers requests off one socket until the client sends
//! `Connection: close`, goes idle past the timeout, or hits the
//! per-connection request cap (`--keepalive-max`). This pairs with the
//! engine's result cache: a dashboard or latency probe reissuing the
//! same `/query` over one connection pays one TCP handshake and (after
//! the first request) zero pipeline runs.
//!
//! Endpoints:
//!
//! | path                      | returns                                     |
//! |---------------------------|---------------------------------------------|
//! | `GET /healthz`            | `ok` (liveness)                             |
//! | `GET /readyz`             | readiness JSON (warm-start provenance)      |
//! | `GET /metrics`            | Prometheus text exposition of the registry  |
//! | `GET /status`             | SLO introspection JSON (windowed latency, rates, pool, RSS, tenants) |
//! | `GET /query?tin=..&tout=..` | ranked-jungloid JSON + the query's `trace_id` |
//! | `GET /assist?var=n:T&tout=..` | assist fan-out JSON: suggestions from every visible variable |
//! | `GET /slow`               | the retained slow-query timelines as JSON (`?clear=1` resets) |
//! | `GET /trace.json`         | the flight-recorder ring as Chrome trace (+ profiler counters) |
//! | `GET /logs?n=`            | the newest access-log records as JSON       |
//! | `GET /heat?k=`            | top-K hot types/members/edges from the graph heat table |
//! | `GET /analytics?k=`       | workload sketches: popular / miss-heavy / truncation-heavy query keys |
//! | `GET /profile.folded`     | sampled stage stacks, flamegraph.pl folded format |
//! | `GET /tenants`            | the tenant manifest (state, provenance, epoch, sizes) |
//! | `POST /tenants?name=&path=` | registers a new tenant from a snapshot path |
//! | `POST /reload?tenant=`    | rebuilds a tenant's engine off-lock and atomically swaps it in |
//!
//! The server is **multi-tenant**: every engine endpoint (`/query`,
//! `/assist`, `/heat`, `/analytics`) accepts a `?tenant=` key routed
//! through the [`prospector_registry::Registry`]. Without the key a
//! request goes to the [`DEFAULT_TENANT`], so every single-tenant URL
//! keeps working unchanged; an unknown key is a strict-JSON 400, never
//! a silent fallback. `POST /reload` swaps a tenant's engine with zero
//! downtime — in-flight queries finish on the `Arc` they cloned.
//!
//! Every finished request is accounted three ways, whatever the
//! endpoint: a `serve.http.requests{endpoint,code}` counter, a
//! per-endpoint latency observation (cumulative histogram *and* the
//! rolling 1m/5m window rings of [`prospector_obs::window`]), and one
//! strict-JSON access-log line ([`prospector_obs::log`]) carrying the
//! same `trace_id` the flight recorder assigned — so `/metrics`,
//! `/status`, `/logs`, and `/trace.json` tell one joinable story.
//!
//! The server enables the metric registry, the flight recorder, and the
//! access log at bind time (it exists to expose them), and pre-registers
//! the core metric families at zero so a scrape taken before the first
//! query still shows every series a dashboard will ever chart.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use prospector_core::{heat, Prospector};
use prospector_obs::hist::Histogram;
use prospector_registry::{Registry, Tenant, TenantInfo, TenantState, DEFAULT_TENANT};
use prospector_obs::log::{self as alog, AccessRecord};
use prospector_obs::profile;
use prospector_obs::trace::{self, TraceId};
use prospector_obs::window::{self, CounterRing, WindowRing, STANDARD_WINDOWS};
use prospector_obs::Json;

use crate::http::{FrameError, Framed, Request, RequestFramer};

/// How long the accept loop sleeps when no connection is pending. The
/// shutdown flag is re-checked at this cadence, so it bounds shutdown
/// latency as well as idle wakeup rate.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket timeout: a client that connects and then goes
/// silent cannot pin a worker (and thus the scope) forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// How long an idle worker waits on the job-queue condvar before
/// re-checking the shutdown flag; bounds shutdown latency for workers
/// parked on an empty queue. The self-stats sampler polls the flag at
/// the same cadence.
const WORKER_POLL: Duration = Duration::from_millis(50);

/// Pending-connection slots per worker. When the queue is this deep the
/// accept loop stops pulling from the kernel backlog, which is the
/// natural place for further connections to wait.
const QUEUE_SLOTS_PER_WORKER: usize = 16;

/// Default cap on requests served over one keep-alive connection before
/// the server closes it (`--keepalive-max`) — a backstop so one chatty
/// client cannot hold a worker or a parked slot forever.
pub(crate) const DEFAULT_KEEPALIVE_MAX: usize = 1000;

/// Default parked-connection idle timeout for the epoll core
/// (`--idle-timeout`).
pub(crate) const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// In-flight request slots granted per worker when `--max-inflight` is
/// left at auto (`0`) — deep enough that bursts queue, shallow enough
/// that a stalled pool sheds instead of buffering unboundedly.
const INFLIGHT_SLOTS_PER_WORKER: usize = 64;

/// The sampler thread's tick: each tick takes one cooperative profiler
/// sample of every worker's stage stack, so 10ms ≈ 100 Hz profiling.
const PROFILE_TICK: Duration = Duration::from_millis(10);

/// Profiler ticks between process self-stat refreshes: 100 ×
/// [`PROFILE_TICK`] ≈ one second between `/proc/self/status` reads.
const SAMPLE_EVERY_TICKS: u32 = 100;

/// Access-log records returned by `GET /logs` when `n` is not given.
const DEFAULT_LOG_TAIL: usize = 100;

/// Cap on `GET /logs?n=` — larger requests clamp here rather than asking
/// the log ring for more than it could ever hold.
const MAX_LOG_TAIL: usize = 10_000;

/// Endpoint labels, in routing order. `other` absorbs every unknown
/// path so scans and typos still show up in the request counters
/// without minting unbounded label values.
const ENDPOINTS: [&str; 15] = [
    "healthz",
    "readyz",
    "metrics",
    "status",
    "query",
    "assist",
    "slow",
    "trace",
    "logs",
    "heat",
    "analytics",
    "profile",
    "tenants",
    "reload",
    "other",
];

/// Status codes the server can emit, one counter column each.
const CODES: [u16; 8] = [200, 400, 404, 405, 413, 429, 431, 500];

/// Truncation-reason labels, one per-endpoint counter column each
/// (mirrors `TruncationReason::label`).
const TRUNCATIONS: [&str; 3] = ["none", "path_cap", "expansion_cap"];

/// Everything [`Server::run`] needs beyond the registry itself.
/// Provenance (snapshot source/mode, graph epoch) now lives on each
/// tenant in the registry; `/readyz` and `/status` report the default
/// tenant's.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Suggestions returned per `/query` (the CLI's `--max`).
    pub max: usize,
    /// Serve snapshots mmap'd when tenants are added at runtime
    /// (`POST /tenants` without an explicit `mmap` parameter inherits
    /// this, mirroring the CLI's `--mmap`).
    pub mmap: bool,
    /// Requests served over one keep-alive connection before the server
    /// closes it (`--keepalive-max`).
    pub keepalive_max: usize,
    /// How long a parked connection may sit idle before the epoll core's
    /// timer wheel reaps it (`--idle-timeout`). The portable pool core
    /// keeps its fixed per-read socket timeout instead.
    pub idle_timeout: Duration,
    /// Admission-control ceiling on requests dispatched and not yet
    /// answered; `0` resolves to `workers ×` [`INFLIGHT_SLOTS_PER_WORKER`].
    /// Past the ceiling the epoll core sheds with `429` + `Retry-After`.
    pub max_inflight: usize,
    /// Forces the portable pool core even where epoll is available
    /// (`--serve-core pool`) — mostly for A/B benchmarks.
    pub force_pool: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max: 5,
            mmap: false,
            keepalive_max: DEFAULT_KEEPALIVE_MAX,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_inflight: 0,
            force_pool: false,
        }
    }
}

/// Per-endpoint × status-code request counters — the label support the
/// metric registry does not have, kept serve-local and rendered into
/// `/metrics` as `prospector_serve_http_requests_total{endpoint,code}`.
struct HttpStats {
    counts: Vec<[AtomicU64; CODES.len()]>,
    /// Per-endpoint truncation-reason counts (queries only in practice;
    /// the data rides on every response's `truncation` label).
    truncations: Vec<[AtomicU64; TRUNCATIONS.len()]>,
}

impl HttpStats {
    fn new() -> HttpStats {
        HttpStats {
            counts: (0..ENDPOINTS.len())
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            truncations: (0..ENDPOINTS.len())
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }

    fn record(&self, endpoint: usize, code: u16) {
        let ci = CODES.iter().position(|&c| c == code).unwrap_or(CODES.len() - 1);
        self.counts[endpoint][ci].fetch_add(1, Ordering::Relaxed);
    }

    fn record_truncation(&self, endpoint: usize, label: &str) {
        if let Some(ti) = TRUNCATIONS.iter().position(|&t| t == label) {
            self.truncations[endpoint][ti].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(requests, errors)` totals for one endpoint row.
    fn totals(&self, endpoint: usize) -> (u64, u64) {
        let mut requests = 0;
        let mut errors = 0;
        for (ci, &code) in CODES.iter().enumerate() {
            let v = self.counts[endpoint][ci].load(Ordering::Relaxed);
            requests += v;
            if code >= 400 {
                errors += v;
            }
        }
        (requests, errors)
    }
}

fn http_stats() -> &'static HttpStats {
    static GLOBAL: OnceLock<HttpStats> = OnceLock::new();
    GLOBAL.get_or_init(HttpStats::new)
}

/// The serve layer's pre-resolved metric handles: per-endpoint latency
/// (window ring + cumulative histogram), per-endpoint windowed error
/// counters, and the queue-wait pair. Resolved once so the per-request
/// path never touches the registry locks.
struct ServeRings {
    latency: Vec<Arc<WindowRing>>,
    latency_hist: Vec<Arc<Histogram>>,
    errors: Vec<Arc<CounterRing>>,
    queue_wait: Arc<WindowRing>,
    queue_wait_hist: Arc<Histogram>,
}

fn serve_rings() -> &'static ServeRings {
    static GLOBAL: OnceLock<ServeRings> = OnceLock::new();
    GLOBAL.get_or_init(|| ServeRings {
        latency: ENDPOINTS
            .iter()
            .map(|e| window::ring(&format!("serve.http.latency_ns.{e}")))
            .collect(),
        latency_hist: ENDPOINTS
            .iter()
            .map(|e| prospector_obs::metrics::histogram(&format!("serve.http.latency_ns.{e}")))
            .collect(),
        errors: ENDPOINTS
            .iter()
            .map(|e| window::counter_ring(&format!("serve.http.errors.{e}")))
            .collect(),
        queue_wait: window::ring("serve.queue.wait_ns"),
        queue_wait_hist: prospector_obs::metrics::histogram("serve.queue.wait_ns"),
    })
}

/// The bounded handoff between the accept loop and the worker pool.
/// Jobs are stamped with their enqueue [`Instant`] so the pop side can
/// measure queue wait — the time a connection sat behind the pool.
struct JobQueue {
    jobs: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue { jobs: Mutex::new(VecDeque::new()), ready: Condvar::new() }
    }

    fn push(&self, stream: TcpStream) {
        self.jobs.lock().unwrap().push_back((stream, Instant::now()));
        self.ready.notify_one();
    }

    fn len(&self) -> usize {
        self.jobs.lock().unwrap().len()
    }

    /// Pops the next connection, waiting while the queue is empty. The
    /// pop is attempted *before* the stop checks, so connections that
    /// were accepted before either flag flipped are always drained;
    /// `None` means "empty and stopping — exit". `stopping` is the
    /// server-internal flag covering fatal accept errors, where the
    /// caller's `shutdown` never flips. The returned [`Instant`] is the
    /// job's enqueue time.
    fn pop(
        &self,
        shutdown: &AtomicBool,
        stopping: &AtomicBool,
    ) -> Option<(TcpStream, Instant)> {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Relaxed) || stopping.load(Ordering::Relaxed) {
                return None;
            }
            jobs = self.ready.wait_timeout(jobs, WORKER_POLL).unwrap().0;
        }
    }
}

/// Shared per-run state: the tenant registry, the resolved options, and
/// the live gauges both cores update and `/status` reads.
pub(crate) struct Ctx<'a> {
    pub(crate) registry: &'a Registry,
    pub(crate) max: usize,
    pub(crate) mmap: bool,
    pub(crate) workers: usize,
    pub(crate) started: Instant,
    /// Which core is running — `/status` reports it as `serve_core`.
    pub(crate) epoll: bool,
    /// Per-connection keep-alive request cap (`--keepalive-max`).
    pub(crate) keepalive_max: usize,
    /// Parked-connection idle timeout (`--idle-timeout`, epoll core).
    pub(crate) idle_timeout: Duration,
    /// Resolved admission ceiling (never zero; see [`ServeOptions`]).
    pub(crate) max_inflight: usize,
    /// Workers currently handling a request/connection.
    pub(crate) busy: AtomicU64,
    /// Connections accepted and not yet finished (parked + in-flight).
    pub(crate) conns: AtomicU64,
    /// Jobs currently waiting in the handoff queue.
    pub(crate) depth: AtomicU64,
    /// Requests dispatched to a worker and not yet answered (epoll core).
    pub(crate) inflight: AtomicU64,
    /// Requests shed with `429` at the admission ceiling.
    pub(crate) shed: AtomicU64,
    /// Connections currently parked in the poller between requests.
    pub(crate) parked: AtomicU64,
    /// Idle connections reaped by the poller's timer wheel.
    pub(crate) reaped: AtomicU64,
}

impl<'a> Ctx<'a> {
    fn new(registry: &'a Registry, opts: &ServeOptions, workers: usize, epoll: bool) -> Ctx<'a> {
        let max_inflight = if opts.max_inflight == 0 {
            workers * INFLIGHT_SLOTS_PER_WORKER
        } else {
            opts.max_inflight
        };
        Ctx {
            registry,
            max: opts.max,
            mmap: opts.mmap,
            workers,
            started: Instant::now(),
            epoll,
            keepalive_max: opts.keepalive_max.max(1),
            idle_timeout: opts.idle_timeout.max(Duration::from_millis(100)),
            max_inflight: max_inflight.max(1),
            busy: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
        }
    }
}

/// A bound listener, separated from [`Server::run`] so callers (the CLI,
/// the smoke test) can learn the real address before serving — binding
/// port 0 and reading it back is how the test avoids port collisions.
pub struct Server {
    listener: TcpListener,
    workers: usize,
}

impl Server {
    /// Binds `addr`, turns the metric registry, flight recorder, and
    /// access log on, and pre-registers the core metric families at
    /// zero. The worker pool defaults to the machine's available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns the bind failure as a displayable message.
    pub fn bind(addr: &str) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        prospector_obs::set_enabled(true);
        trace::set_enabled(true);
        alog::set_enabled(true);
        // Workload analytics: graph heat + query sketches feed `/heat`
        // and `/analytics`; the cooperative profiler feeds
        // `/profile.folded` off the sampler thread.
        heat::set_enabled(true);
        profile::set_enabled(true);
        warm_registry();
        let workers = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        Ok(Server { listener, workers })
    }

    /// Overrides the worker-pool size (`--workers N`); zero is clamped
    /// to one.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Returns the OS error as a displayable message.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves until `shutdown` is set, on the epoll readiness core where
    /// the platform has one ([`crate::poller::supported`]) and the
    /// portable pool core elsewhere (or when `opts.force_pool` asks for
    /// it). Either way a sampler thread refreshes the `process.*` and
    /// `serve.*` gauges about once a second, and when the flag flips
    /// everything drains and joins before this returns.
    ///
    /// # Errors
    ///
    /// Returns accept-loop / poller failures as displayable messages.
    pub fn run(
        self,
        registry: &Registry,
        opts: &ServeOptions,
        shutdown: &AtomicBool,
    ) -> Result<(), String> {
        let epoll = crate::poller::supported() && !opts.force_pool;
        let ctx = Ctx::new(registry, opts, self.workers, epoll);
        if epoll {
            crate::poller::serve_epoll(self.listener, &ctx, shutdown)
        } else {
            run_pool(self.listener, &ctx, shutdown)
        }
    }
}

/// The portable pool core: a non-blocking accept loop feeding a fixed
/// worker pool through a bounded job queue, one worker per connection
/// lifetime. Kept as the fallback where the epoll core cannot run, and
/// as the `--serve-core pool` baseline for A/B benchmarks.
fn run_pool(
    listener: TcpListener,
    ctx: &Ctx<'_>,
    shutdown: &AtomicBool,
) -> Result<(), String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let queue = JobQueue::new();
    let queue_cap = ctx.workers * QUEUE_SLOTS_PER_WORKER;
    let stopping = AtomicBool::new(false);
    {
        std::thread::scope(|scope| {
            for _ in 0..ctx.workers {
                let queue = &queue;
                let stopping = &stopping;
                scope.spawn(move || {
                    while let Some((stream, enqueued)) = queue.pop(shutdown, stopping) {
                        ctx.depth.store(queue.len() as u64, Ordering::Relaxed);
                        let wait_ns = u64::try_from(enqueued.elapsed().as_nanos())
                            .unwrap_or(u64::MAX);
                        ctx.busy.fetch_add(1, Ordering::Relaxed);
                        handle_connection(stream, ctx, wait_ns);
                        ctx.busy.fetch_sub(1, Ordering::Relaxed);
                        ctx.conns.fetch_sub(1, Ordering::Relaxed);
                    }
                });
            }
            {
                let stopping = &stopping;
                scope.spawn(move || sampler_loop(ctx, shutdown, stopping));
            }
            let result = loop {
                if shutdown.load(Ordering::Relaxed) {
                    break Ok(());
                }
                if queue.len() >= queue_cap {
                    // Backpressure: leave further connections in the
                    // kernel backlog until the pool catches up.
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        ctx.conns.fetch_add(1, Ordering::Relaxed);
                        queue.push(stream);
                        ctx.depth.store(queue.len() as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => break Err(format!("accept: {e}")),
                }
            };
            // Wake every parked worker so they observe the stop without
            // waiting out their poll interval (covers both clean
            // shutdown and fatal accept errors).
            stopping.store(true, Ordering::Relaxed);
            queue.ready.notify_all();
            result
        })
    }
}

/// The background sampler: ticks at [`PROFILE_TICK`] (~100 Hz), taking
/// one cooperative profiler sample of every worker's published stage
/// stack per tick, and about once a second publishes pool gauges plus
/// `/proc/self/status` derived `process.*` gauges into the metric
/// registry. The stop flags are re-checked every tick, so shutdown
/// latency is bounded by one tick.
pub(crate) fn sampler_loop(ctx: &Ctx<'_>, shutdown: &AtomicBool, stopping: &AtomicBool) {
    let mut ticks = 0u32;
    loop {
        if shutdown.load(Ordering::Relaxed) || stopping.load(Ordering::Relaxed) {
            return;
        }
        profile::sample_all();
        if ticks.is_multiple_of(SAMPLE_EVERY_TICKS) {
            sample_self_stats(ctx);
        }
        ticks = ticks.wrapping_add(1);
        std::thread::sleep(PROFILE_TICK);
    }
}

/// One sampler tick: pool gauges from [`Ctx`], process gauges from
/// `/proc/self/status` (silently skipped off-Linux, where the file does
/// not exist — the `serve.*` gauges still publish).
fn sample_self_stats(ctx: &Ctx<'_>) {
    prospector_obs::gauge_set("serve.queue.depth", ctx.depth.load(Ordering::Relaxed));
    prospector_obs::gauge_set("serve.workers.busy", ctx.busy.load(Ordering::Relaxed));
    prospector_obs::gauge_set("serve.conns.active", ctx.conns.load(Ordering::Relaxed));
    prospector_obs::gauge_set("serve.poller.parked", ctx.parked.load(Ordering::Relaxed));
    prospector_obs::gauge_set("serve.poller.inflight", ctx.inflight.load(Ordering::Relaxed));
    prospector_obs::gauge_set("profile.samples", profile::samples());
    prospector_obs::gauge_set("profile.dropped", profile::dropped());
    if let Some((rss, threads)) = read_proc_self_status() {
        prospector_obs::gauge_set("process.rss_bytes", rss);
        prospector_obs::gauge_set("process.threads", threads);
    }
}

/// Parses `VmRSS:` (kB → bytes) and `Threads:` out of
/// `/proc/self/status`. `None` when the file is unreadable (non-Linux).
fn read_proc_self_status() -> Option<(u64, u64)> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut rss = None;
    let mut threads = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            rss = Some(kb.saturating_mul(1024));
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = Some(rest.trim().parse().ok()?);
        }
    }
    Some((rss?, threads?))
}

/// Creates the metric families the core pipeline and the serve layer
/// report into, so the very first `/metrics` scrape already exposes them
/// at zero. (Prometheus guidance: export a series before its first
/// event, so `rate()` sees the 0 → 1 transition.)
fn warm_registry() {
    const COUNTERS: &[&str] = &[
        "search.dfs_expansions",
        "search.bfs_relaxations",
        "search.paths_enumerated",
        "search.truncated.path_cap",
        "search.truncated.expansion_cap",
        "engine.dist_cache.hits",
        "engine.dist_cache.misses",
        "engine.dist_cache.evictions",
        "engine.result_cache.hits",
        "engine.result_cache.misses",
        "engine.result_cache.collapsed",
        "engine.result_cache.evictions",
        "engine.result_cache.invalidations",
        "engine.batch.calls",
        "engine.batch.queries",
        "engine.batch.errors",
        "engine.assist.calls",
        "engine.assist.sources",
        "engine.assist.reachable",
        "engine.assist.unreachable",
        "engine.assist.already_available",
        "engine.dedup_drops",
        "rank.comparisons",
        "synth.snippets",
        "registry.reloads",
        "registry.reload_failures",
        "serve.shed.total",
        "serve.poller.accepts",
        "serve.poller.reaped",
        "serve.poller.frame_errors",
    ];
    for name in COUNTERS {
        prospector_obs::add(name, 0);
    }
    prospector_obs::gauge_set("engine.result_cache.entries", 0);
    for name in [
        "query.latency_ns",
        "query.stage_ns.search",
        "query.stage_ns.synth",
        "query.stage_ns.rank",
    ] {
        let _ = prospector_obs::metrics::histogram(name);
    }
    prospector_obs::gauge_set("serve.queue.depth", 0);
    prospector_obs::gauge_set("serve.workers.busy", 0);
    prospector_obs::gauge_set("serve.conns.active", 0);
    prospector_obs::gauge_set("serve.poller.parked", 0);
    prospector_obs::gauge_set("serve.poller.inflight", 0);
    prospector_obs::gauge_set("registry.tenants", 0);
    prospector_obs::gauge_set("registry.engine_bytes", 0);
    prospector_obs::gauge_set("profile.samples", 0);
    prospector_obs::gauge_set("profile.dropped", 0);
    // Resolving the serve ring handles registers every per-endpoint
    // window series and histogram, so they render from the first scrape.
    let _ = serve_rings();
}

/// Serves one connection (pool core): requests are framed and answered
/// in a keep-alive loop until the client asks to close
/// (`Connection: close`), goes quiet past [`IO_TIMEOUT`], or exhausts
/// `ctx.keepalive_max`. `queue_wait_ns` is attributed to the first
/// request only — follow-ups on a keep-alive connection never waited in
/// the accept queue, so they record a wait of zero.
fn handle_connection(mut stream: TcpStream, ctx: &Ctx<'_>, queue_wait_ns: u64) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut framer = RequestFramer::new();
    let mut chunk = [0u8; 4096];
    let mut served = 0usize;
    loop {
        // Pull the next framed request, reading more bytes as needed.
        let request = loop {
            match framer.next() {
                Framed::Request(r) => break r,
                Framed::Error(e) => {
                    // Answer the framing error before closing — a silent
                    // drop is indistinguishable from a crash to clients.
                    serve_frame_error(&mut stream, &e);
                    return;
                }
                Framed::Incomplete => match stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => framer.push(&chunk[..n]),
                    Err(_) => return,
                },
            }
        };
        // The final slot always closes, so the header never promises a
        // request we will not serve.
        let close = request.close || served + 1 >= ctx.keepalive_max;
        let wait_ns = if served == 0 { queue_wait_ns } else { 0 };
        serve_request(&mut stream, ctx, &request, close, wait_ns);
        served += 1;
        if close {
            return;
        }
    }
}

/// Writes the strict-JSON response for an unframable stream and records
/// it (endpoint `other` — there is no route to attribute it to).
fn serve_frame_error(stream: &mut TcpStream, error: &FrameError) {
    let started = Instant::now();
    let response = frame_error_response(error);
    let _ = stream.write_all(&serialize_response(&response, true));
    let _ = stream.flush();
    let handle_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    record_request(endpoint_index("unframable"), &response, 0, handle_ns);
}

/// One response, carrying everything the per-request accounting needs
/// alongside the wire fields.
pub(crate) struct Response {
    code: u16,
    reason: &'static str,
    content_type: &'static str,
    body: String,
    /// `Allow:` header value for 405 responses; empty sends no header.
    allow: &'static str,
    /// `Retry-After:` seconds for 429 shed responses; 0 sends no header.
    retry_after: u64,
    /// The flight-recorder id for `/query`; 0 elsewhere.
    trace_id: u64,
    /// Whether a `/query` answer came from the result cache.
    cached: bool,
    /// The query's truncation label; empty for non-query endpoints.
    truncation: String,
    /// The tenant the request resolved to; empty for endpoints that
    /// touch no engine. Feeds the access log and per-tenant latency
    /// rings.
    tenant: String,
}

impl Response {
    fn new(code: u16, reason: &'static str, content_type: &'static str, body: String) -> Response {
        Response {
            code,
            reason,
            content_type,
            body,
            allow: "",
            retry_after: 0,
            trace_id: 0,
            cached: false,
            truncation: String::new(),
            tenant: String::new(),
        }
    }

    fn ok_json(body: String) -> Response {
        Response::new(200, "OK", "application/json", body)
    }

    /// A strict-JSON 400 — the shape every engine endpoint returns for
    /// bad parameters, including an unknown `?tenant=` key.
    fn bad_request(message: String) -> Response {
        let body = Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(message)),
        ])
        .to_text();
        Response::new(400, "Bad Request", "application/json", body)
    }
}

/// Answers one parsed request and records it: the endpoint/code counter,
/// the endpoint's latency (window ring + cumulative histogram), the
/// windowed error counter for non-2xx codes, and exactly one access-log
/// record. Handle time runs from parsed request to flushed response, so
/// keep-alive idle gaps are never counted as latency.
fn serve_request(
    stream: &mut TcpStream,
    ctx: &Ctx<'_>,
    request: &Request,
    close: bool,
    queue_wait_ns: u64,
) {
    let started = Instant::now();
    // The profiler's root frame for worker threads: sampled stacks read
    // `serve.request;batch;search` etc., so `/profile.folded` attributes
    // wall-clock to request handling versus idle.
    let _span = prospector_obs::stage("serve.request");
    let (endpoint, response) = answer(ctx, request);
    let _ = stream.write_all(&serialize_response(&response, close));
    let _ = stream.flush();
    let handle_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    record_request(endpoint, &response, queue_wait_ns, handle_ns);
}

/// Routes one parsed request to its handler — the shared core of both
/// serve cores. Returns the endpoint row (for accounting) alongside the
/// response.
pub(crate) fn answer(ctx: &Ctx<'_>, request: &Request) -> (usize, Response) {
    let (route, query) = match request.path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (request.path.as_str(), ""),
    };
    let endpoint = endpoint_index(route);
    let response = match request.method.as_str() {
        "GET" => route_get(ctx, endpoint, query),
        "POST" => route_post(ctx, endpoint, query),
        _ => method_not_allowed(endpoint),
    };
    (endpoint, response)
}

/// The strict-JSON response for a stream the framer rejected, carrying
/// the frame error's own status code (`400`/`431`/`413`).
pub(crate) fn frame_error_response(error: &FrameError) -> Response {
    let body = Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(error.message())),
    ])
    .to_text();
    let (code, reason) = match error {
        FrameError::BadRequestLine(_) => (400, "Bad Request"),
        FrameError::HeadersTooLarge(_) => (431, "Request Header Fields Too Large"),
        FrameError::BodyTooLarge(_) => (413, "Payload Too Large"),
    };
    Response::new(code, reason, "application/json", body)
}

/// The `429` the poller sheds with at the admission ceiling: strict
/// JSON, `Retry-After: 1`, built without touching a worker.
pub(crate) fn shed_response() -> Response {
    let body = Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::Str("overloaded: in-flight request ceiling reached".to_owned()),
        ),
        ("shed", Json::Bool(true)),
    ])
    .to_text();
    let mut r = Response::new(429, "Too Many Requests", "application/json", body);
    r.retry_after = 1;
    r
}

/// Maps a request target (route + optional query string) to its
/// [`ENDPOINTS`] row — the shape the poller has in hand when it sheds.
pub(crate) fn endpoint_of(path: &str) -> usize {
    endpoint_index(path.split('?').next().unwrap_or(path))
}

/// Maps a route to its [`ENDPOINTS`] row; unknown paths land on `other`.
fn endpoint_index(route: &str) -> usize {
    let label = match route {
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/metrics" => "metrics",
        "/status" => "status",
        "/query" => "query",
        "/assist" => "assist",
        "/slow" => "slow",
        "/trace.json" => "trace",
        "/logs" => "logs",
        "/heat" => "heat",
        "/analytics" => "analytics",
        "/profile.folded" => "profile",
        "/tenants" => "tenants",
        "/reload" => "reload",
        _ => "other",
    };
    ENDPOINTS.iter().position(|&e| e == label).expect("label is in ENDPOINTS")
}

/// The methods an endpoint accepts, the 405 `Allow:` header value.
fn allowed_methods(endpoint: usize) -> &'static str {
    match ENDPOINTS[endpoint] {
        "tenants" => "GET, POST",
        "reload" => "POST",
        _ => "GET",
    }
}

/// A 405 naming what the endpoint does accept.
fn method_not_allowed(endpoint: usize) -> Response {
    let allow = allowed_methods(endpoint);
    let mut r = Response::new(
        405,
        "Method Not Allowed",
        "text/plain",
        format!("method not allowed; allowed: {allow}\n"),
    );
    r.allow = allow;
    r
}

/// Resolves a request's optional `?tenant=` key against the registry.
/// An unknown (or malformed) key is a strict-JSON 400 — never a silent
/// fallback to the default tenant.
fn resolve_tenant(ctx: &Ctx<'_>, query: &str) -> Result<Arc<Tenant>, Box<Response>> {
    let name = query_param(query, "tenant");
    ctx.registry
        .resolve(name.as_deref())
        .map_err(|e| Box::new(Response::bad_request(e.to_string())))
}

/// Routes one GET to its handler.
fn route_get(ctx: &Ctx<'_>, endpoint: usize, query: &str) -> Response {
    match ENDPOINTS[endpoint] {
        "healthz" => Response::new(200, "OK", "text/plain", "ok\n".to_owned()),
        "readyz" => Response::ok_json(readyz_json(ctx).to_text()),
        "metrics" => {
            let mut body = prospector_obs::prom::render(&prospector_obs::snapshot());
            body.push_str(&prospector_obs::prom::render_windows(&window::views(
                &STANDARD_WINDOWS,
            )));
            body.push_str(&render_http_requests());
            body.push_str(&render_tenant_metrics(ctx.registry));
            Response::new(200, "OK", "text/plain; version=0.0.4", body)
        }
        "status" => Response::ok_json(status_json(ctx).to_text()),
        "query" => {
            let tenant = match resolve_tenant(ctx, query) {
                Ok(t) => t,
                Err(r) => return *r,
            };
            tenant.record_query();
            let engine = tenant.engine();
            let mut r = match run_query(&engine, ctx.max, query) {
                Ok(outcome) => {
                    let mut r = Response::ok_json(outcome.body);
                    r.trace_id = outcome.trace_id;
                    r.cached = outcome.cached;
                    r.truncation = outcome.truncation;
                    r
                }
                Err(message) => Response::bad_request(message),
            };
            r.tenant = tenant.name().to_owned();
            r
        }
        "assist" => {
            let tenant = match resolve_tenant(ctx, query) {
                Ok(t) => t,
                Err(r) => return *r,
            };
            tenant.record_query();
            let engine = tenant.engine();
            let mut r = match run_assist(&engine, ctx.max, query) {
                Ok(body) => Response::ok_json(body),
                Err(message) => Response::bad_request(message),
            };
            r.tenant = tenant.name().to_owned();
            r
        }
        "slow" => {
            if query_param(query, "clear").is_some_and(|v| v == "1") {
                let cleared = trace::clear_slow();
                let body =
                    Json::obj(vec![("cleared", Json::num_u(cleared as u64))]).to_text();
                Response::ok_json(body)
            } else {
                Response::ok_json(trace::slow_to_json(&trace::slow_queries()).to_text())
            }
        }
        "trace" => {
            let mut events = trace::to_chrome_json(&trace::events());
            // Fold the profiler's counter events into the same document,
            // so one Chrome-trace load shows spans and sampled stacks.
            if let Json::Arr(arr) = &mut events {
                arr.extend(profile::chrome_events());
            }
            Response::ok_json(events.to_text())
        }
        "logs" => match query_param(query, "n") {
            None => Response::ok_json(alog::to_json_array(&alog::tail(DEFAULT_LOG_TAIL)).to_text()),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => {
                    let n = n.min(MAX_LOG_TAIL);
                    Response::ok_json(alog::to_json_array(&alog::tail(n)).to_text())
                }
                Err(_) => {
                    let body = Json::obj(vec![
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str(format!("invalid `n` parameter: {raw:?}"))),
                    ])
                    .to_text();
                    Response::new(400, "Bad Request", "application/json", body)
                }
            },
        },
        "heat" => {
            let tenant = match resolve_tenant(ctx, query) {
                Ok(t) => t,
                Err(r) => return *r,
            };
            let engine = tenant.engine();
            let mut r = Response::ok_json(heat_json(&engine, top_k_param(query)).to_text());
            r.tenant = tenant.name().to_owned();
            r
        }
        "analytics" => {
            let tenant = match resolve_tenant(ctx, query) {
                Ok(t) => t,
                Err(r) => return *r,
            };
            let engine = tenant.engine();
            let mut r =
                Response::ok_json(analytics_json(&engine, top_k_param(query)).to_text());
            r.tenant = tenant.name().to_owned();
            r
        }
        "profile" => Response::new(200, "OK", "text/plain", profile::render_folded()),
        "tenants" => Response::ok_json(tenants_json(ctx.registry).to_text()),
        "reload" => method_not_allowed(endpoint),
        _ => Response::new(404, "Not Found", "text/plain", "no such endpoint\n".to_owned()),
    }
}

/// Routes one POST: the two admin endpoints. Everything else is a 405
/// naming its `Allow:` set.
fn route_post(ctx: &Ctx<'_>, endpoint: usize, query: &str) -> Response {
    match ENDPOINTS[endpoint] {
        "reload" => {
            let name = query_param(query, "tenant");
            let name = name.as_deref().unwrap_or(DEFAULT_TENANT);
            match ctx.registry.reload(name) {
                Ok(info) => {
                    let mut r = Response::ok_json(
                        Json::obj(vec![
                            ("ok", Json::Bool(true)),
                            ("tenant", tenant_info_json(&info)),
                        ])
                        .to_text(),
                    );
                    r.tenant = name.to_owned();
                    r
                }
                Err(e) => {
                    let mut r = Response::bad_request(e.to_string());
                    r.tenant = name.to_owned();
                    r
                }
            }
        }
        "tenants" => {
            let Some(name) = query_param(query, "name") else {
                return Response::bad_request("missing query parameter `name`".to_owned());
            };
            let Some(path) = query_param(query, "path") else {
                return Response::bad_request("missing query parameter `path`".to_owned());
            };
            let mmap = query_param(query, "mmap")
                .map_or(ctx.mmap, |v| v == "1" || v == "true");
            match ctx.registry.add_from_path(&name, &path, mmap) {
                Ok(tenant) => {
                    let mut r = Response::ok_json(
                        Json::obj(vec![
                            ("ok", Json::Bool(true)),
                            ("tenant", tenant_info_json(&tenant.info())),
                        ])
                        .to_text(),
                    );
                    r.tenant = name;
                    r
                }
                Err(e) => Response::bad_request(e.to_string()),
            }
        }
        _ => method_not_allowed(endpoint),
    }
}

/// One tenant's manifest row as strict JSON (shared by `GET /tenants`
/// and the admin responses).
fn tenant_info_json(info: &TenantInfo) -> Json {
    let state_error = match &info.state {
        TenantState::Failed { error } => Json::Str(error.clone()),
        _ => Json::Null,
    };
    Json::obj(vec![
        ("name", Json::Str(info.name.clone())),
        ("state", Json::Str(info.state.label().to_owned())),
        ("state_error", state_error),
        (
            "snapshot_path",
            info.snapshot_path.clone().map_or(Json::Null, Json::Str),
        ),
        (
            "format_version",
            info.format_version.map_or(Json::Null, |v| Json::num_u(u64::from(v))),
        ),
        ("mode", Json::Str(info.mode.label().to_owned())),
        ("graph_epoch", Json::num_u(info.graph_epoch)),
        ("engine_bytes", Json::num_u(info.engine_bytes)),
        ("loaded_at_ms", Json::num_u(info.loaded_at_ms)),
        ("load_us", Json::num_u(info.load_us)),
        ("reloads", Json::num_u(info.reloads)),
        ("reload_failures", Json::num_u(info.reload_failures)),
        ("queries", Json::num_u(info.queries)),
    ])
}

/// `GET /tenants`: the full manifest plus registry-level totals.
fn tenants_json(registry: &Registry) -> Json {
    let manifest = registry.manifest();
    Json::obj(vec![
        ("count", Json::num_u(manifest.len() as u64)),
        ("engine_bytes_total", Json::num_u(registry.engine_bytes_total())),
        (
            "tenants",
            Json::Arr(manifest.iter().map(tenant_info_json).collect()),
        ),
    ])
}

/// `?k=` with a sane default and cap for the top-K report endpoints.
fn top_k_param(query: &str) -> usize {
    query_param(query, "k").and_then(|v| v.parse().ok()).unwrap_or(10).clamp(1, 100)
}

/// The value of one query-string parameter, percent-decoded.
fn query_param(query: &str, name: &str) -> Option<String> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| percent_decode(v))
}

/// Every value of a repeatable query-string parameter (`/assist`'s
/// `var=`), percent-decoded, in request order.
fn query_params_all(query: &str, name: &str) -> Vec<String> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .filter(|(k, _)| *k == name)
        .map(|(_, v)| percent_decode(v))
        .collect()
}

/// The per-request accounting fan-out (see [`serve_request`]). Every
/// request records its queue wait — zero for a pool keep-alive
/// follow-up (it never waited), the measured hand-off wait for every
/// request the poller dispatched.
pub(crate) fn record_request(
    endpoint: usize,
    response: &Response,
    queue_wait_ns: u64,
    handle_ns: u64,
) {
    http_stats().record(endpoint, response.code);
    if !response.truncation.is_empty() {
        http_stats().record_truncation(endpoint, &response.truncation);
    }
    let rings = serve_rings();
    rings.queue_wait.record(queue_wait_ns);
    rings.queue_wait_hist.record(queue_wait_ns);
    rings.latency[endpoint].record(handle_ns);
    rings.latency_hist[endpoint].record(handle_ns);
    if response.code >= 400 {
        rings.errors[endpoint].add(1);
    }
    // Per-tenant latency: one window ring per tenant the process has
    // served, named into the global ring registry so `/metrics` and
    // `/status` render them without a label-aware backend.
    if !response.tenant.is_empty() {
        window::ring(&format!("serve.tenant.latency_ns.{}", response.tenant)).record(handle_ns);
    }
    alog::record(AccessRecord {
        ts_ms: alog::now_ms(),
        trace_id: response.trace_id,
        endpoint: ENDPOINTS[endpoint],
        tenant: response.tenant.clone(),
        code: response.code,
        bytes: response.body.len() as u64,
        queue_wait_us: queue_wait_ns / 1_000,
        handle_us: handle_ns / 1_000,
        cached: response.cached,
        truncation: response.truncation.clone(),
    });
}

/// The labeled request counters as a Prometheus exposition block. Every
/// endpoint × code cell is emitted (zeros included) so dashboards see
/// each series before its first event.
fn render_http_requests() -> String {
    use std::fmt::Write as _;
    let stats = http_stats();
    let mut out = String::new();
    out.push_str(
        "# HELP prospector_serve_http_requests_total HTTP requests served, by endpoint and status code.\n",
    );
    out.push_str("# TYPE prospector_serve_http_requests_total counter\n");
    for (ei, endpoint) in ENDPOINTS.iter().enumerate() {
        for (ci, code) in CODES.iter().enumerate() {
            let v = stats.counts[ei][ci].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "prospector_serve_http_requests_total{{endpoint=\"{endpoint}\",code=\"{code}\"}} {v}"
            );
        }
    }
    out
}

/// The per-tenant labeled series as a Prometheus exposition block —
/// epoch, resident size, query and reload counters, and the lifecycle
/// state as a one-hot gauge, one series per tenant.
fn render_tenant_metrics(registry: &Registry) -> String {
    use std::fmt::Write as _;
    let manifest = registry.manifest();
    let mut out = String::new();
    let mut block = |name: &str, help: &str, kind: &str, value: &dyn Fn(&TenantInfo) -> u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for t in &manifest {
            let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.name, value(t));
        }
    };
    block(
        "prospector_engine_graph_epoch",
        "Graph epoch of the tenant's installed engine.",
        "gauge",
        &|t| t.graph_epoch,
    );
    block(
        "prospector_engine_bytes",
        "Approximate resident bytes of the tenant's engine.",
        "gauge",
        &|t| t.engine_bytes,
    );
    block(
        "prospector_engine_queries_total",
        "Queries routed to the tenant.",
        "counter",
        &|t| t.queries,
    );
    block(
        "prospector_registry_reloads_total",
        "Successful hot reloads of the tenant's engine.",
        "counter",
        &|t| t.reloads,
    );
    block(
        "prospector_registry_reload_failures_total",
        "Failed reload attempts (old engine retained each time).",
        "counter",
        &|t| t.reload_failures,
    );
    let _ = writeln!(
        out,
        "# HELP prospector_tenant_state Tenant lifecycle state (1 for the current state's series)."
    );
    let _ = writeln!(out, "# TYPE prospector_tenant_state gauge");
    for t in &manifest {
        for state in ["loading", "ready", "draining", "failed"] {
            let v = u64::from(t.state.label() == state);
            let _ = writeln!(
                out,
                "prospector_tenant_state{{tenant=\"{}\",state=\"{state}\"}} {v}",
                t.name
            );
        }
    }
    out
}

/// `GET /readyz`: strict JSON distinguishing *ready to answer queries*
/// from bare liveness (`/healthz`). The worker pool only runs once the
/// engine is constructed, so a served `/readyz` is always `ready`; the
/// value of the endpoint is the provenance — whether this process
/// warm-started from a snapshot and which graph epoch it serves.
fn readyz_json(ctx: &Ctx<'_>) -> Json {
    let (source, mode, epoch) = default_provenance(ctx.registry);
    Json::obj(vec![
        ("ready", Json::Bool(true)),
        ("warm_start", Json::Bool(!matches!(source, Json::Null))),
        ("snapshot_source", source),
        ("snapshot_mode", mode),
        ("graph_epoch", Json::num_u(epoch)),
        ("tenants", Json::num_u(ctx.registry.len() as u64)),
    ])
}

/// The default tenant's provenance in the shape the single-tenant
/// `/readyz` and `/status` always reported: `snapshot_source` /
/// `snapshot_mode` are `null` for an in-process build, and the mode
/// label is `"owned"` or `"mmap"` for warm starts.
fn default_provenance(registry: &Registry) -> (Json, Json, u64) {
    let Some(tenant) = registry.get(DEFAULT_TENANT) else {
        return (Json::Null, Json::Null, 0);
    };
    let info = tenant.info();
    let source = info.snapshot_path.clone().map_or(Json::Null, Json::Str);
    let mode = if info.snapshot_path.is_some() {
        Json::Str(info.mode.label().to_owned())
    } else {
        Json::Null
    };
    (source, mode, info.graph_epoch)
}

/// `hits / (hits + misses)`, 0 when nothing has been counted.
fn hit_ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// One window's stats as the `/status` JSON shape.
fn window_stats_json(v: window::WindowStats, errors_in_window: u64) -> Json {
    let error_rate =
        if v.count == 0 { 0.0 } else { errors_in_window as f64 / v.count as f64 };
    Json::obj(vec![
        ("count", Json::num_u(v.count)),
        ("rate", Json::Num(if v.rate.is_finite() { v.rate } else { 0.0 })),
        ("error_rate", Json::Num(error_rate)),
        ("p50_ns", Json::num_u(v.p50)),
        ("p90_ns", Json::num_u(v.p90)),
        ("p99_ns", Json::num_u(v.p99)),
    ])
}

/// `GET /status`: the SLO dashboard in one strict-JSON document —
/// uptime, provenance, per-endpoint windowed latency/rate/error-rate,
/// pool and process gauges, and engine cache hit ratios.
fn status_json(ctx: &Ctx<'_>) -> Json {
    let snap = prospector_obs::snapshot();
    let default_engine = ctx.registry.get(DEFAULT_TENANT).map(|t| t.engine());
    let engine_status = default_engine.as_ref().map(|e| e.status()).unwrap_or_default();
    let (source, mode, epoch) = default_provenance(ctx.registry);
    let rings = serve_rings();

    let mut endpoints: Vec<(String, Json)> = Vec::new();
    for (ei, name) in ENDPOINTS.iter().enumerate() {
        let (requests, errors) = http_stats().totals(ei);
        let mut fields = vec![
            ("requests_total".to_owned(), Json::num_u(requests)),
            ("errors_total".to_owned(), Json::num_u(errors)),
            (
                "truncation".to_owned(),
                Json::Obj(
                    TRUNCATIONS
                        .iter()
                        .enumerate()
                        .map(|(ti, &label)| {
                            let v = http_stats().truncations[ei][ti].load(Ordering::Relaxed);
                            (label.to_owned(), Json::num_u(v))
                        })
                        .collect(),
                ),
            ),
        ];
        for &(label, secs) in &STANDARD_WINDOWS {
            let view = rings.latency[ei].view(secs);
            let errs = rings.errors[ei].sum(secs);
            fields.push((label.to_owned(), window_stats_json(view, errs)));
        }
        endpoints.push(((*name).to_owned(), Json::Obj(fields)));
    }

    let queue_wait: Vec<(String, Json)> = STANDARD_WINDOWS
        .iter()
        .map(|&(label, secs)| {
            (label.to_owned(), window_stats_json(rings.queue_wait.view(secs), 0))
        })
        .collect();

    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let result_hits = counter("engine.result_cache.hits");
    let result_misses = counter("engine.result_cache.misses");
    let dist_hits = counter("engine.dist_cache.hits");
    let dist_misses = counter("engine.dist_cache.misses");

    Json::obj(vec![
        ("uptime_s", Json::Num(ctx.started.elapsed().as_secs_f64())),
        ("ready", Json::Bool(true)),
        ("warm_start", Json::Bool(!matches!(source, Json::Null))),
        ("snapshot_source", source),
        ("snapshot_mode", mode),
        ("graph_epoch", Json::num_u(epoch)),
        (
            "tenants",
            Json::Arr(
                ctx.registry.manifest().iter().map(tenant_info_json).collect(),
            ),
        ),
        (
            "config",
            Json::obj(vec![
                (
                    "serve_core",
                    Json::Str(if ctx.epoll { "epoll" } else { "pool" }.to_owned()),
                ),
                ("keepalive_max", Json::num_u(ctx.keepalive_max as u64)),
                ("idle_timeout_s", Json::num_u(ctx.idle_timeout.as_secs())),
                ("max_inflight", Json::num_u(ctx.max_inflight as u64)),
            ]),
        ),
        (
            "pool",
            Json::obj(vec![
                ("workers", Json::num_u(ctx.workers as u64)),
                ("busy", Json::num_u(ctx.busy.load(Ordering::Relaxed))),
                ("queue_depth", Json::num_u(ctx.depth.load(Ordering::Relaxed))),
                ("conns_active", Json::num_u(ctx.conns.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "poller",
            Json::obj(vec![
                ("parked", Json::num_u(ctx.parked.load(Ordering::Relaxed))),
                ("inflight", Json::num_u(ctx.inflight.load(Ordering::Relaxed))),
                ("shed_total", Json::num_u(ctx.shed.load(Ordering::Relaxed))),
                ("reaped_total", Json::num_u(ctx.reaped.load(Ordering::Relaxed))),
            ]),
        ),
        (
            "process",
            Json::obj(vec![
                ("rss_bytes", Json::num_u(snap.gauge("process.rss_bytes").unwrap_or(0))),
                ("threads", Json::num_u(snap.gauge("process.threads").unwrap_or(0))),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                (
                    "result",
                    Json::obj(vec![
                        ("hits", Json::num_u(result_hits)),
                        ("misses", Json::num_u(result_misses)),
                        ("hit_ratio", Json::Num(hit_ratio(result_hits, result_misses))),
                        ("entries", Json::num_u(engine_status.result_cache_entries)),
                    ]),
                ),
                (
                    "dist",
                    Json::obj(vec![
                        ("hits", Json::num_u(dist_hits)),
                        ("misses", Json::num_u(dist_misses)),
                        ("hit_ratio", Json::Num(hit_ratio(dist_hits, dist_misses))),
                        ("entries", Json::num_u(engine_status.dist_cache_entries)),
                    ]),
                ),
            ]),
        ),
        ("queue_wait", Json::Obj(queue_wait)),
        ("endpoints", Json::Obj(endpoints)),
    ])
}

/// `GET /heat`: the graph heat table's top-K hot types, members, and
/// edges with resolved names, plus the table's provenance (epoch, merged
/// queries and field builds, coverage totals). Resolution runs against
/// the routed tenant's engine.
fn heat_json(engine: &Prospector, k: usize) -> Json {
    let snap = engine.heat_snapshot(k);
    let entries = |items: &[prospector_core::HeatEntry]| {
        Json::Arr(
            items
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.label.clone())),
                        ("count", Json::num_u(e.count)),
                    ])
                })
                .collect(),
        )
    };
    Json::obj(vec![
        ("epoch", Json::num_u(snap.epoch)),
        ("queries", Json::num_u(snap.queries)),
        ("fields", Json::num_u(snap.fields)),
        ("nodes_touched", Json::num_u(snap.nodes_touched as u64)),
        ("edges_touched", Json::num_u(snap.edges_touched as u64)),
        ("node_total", Json::num_u(snap.node_total)),
        ("edge_total", Json::num_u(snap.edge_total)),
        ("top_types", entries(&snap.top_types)),
        ("top_members", entries(&snap.top_members)),
        (
            "top_edges",
            Json::Arr(
                snap.top_edges
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("from", Json::Str(e.from.clone())),
                            ("elem", Json::Str(e.elem.clone())),
                            ("to", Json::Str(e.to.clone())),
                            ("count", Json::num_u(e.count)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `GET /analytics`: the workload sketches — top-K popular, miss-heavy,
/// and truncation-heavy `(tin, tout)` keys with resolved names — plus
/// profiler sample totals. Resolution runs against the routed tenant's
/// engine.
fn analytics_json(engine: &Prospector, k: usize) -> Json {
    let snap = engine.workload_snapshot(k);
    let entries = |items: &[prospector_core::WorkloadEntry]| {
        Json::Arr(
            items
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("tin", Json::Str(e.tin.clone())),
                        ("tout", Json::Str(e.tout.clone())),
                        ("count", Json::num_u(e.count)),
                        ("err", Json::num_u(e.err)),
                        ("estimate", Json::num_u(e.estimate)),
                    ])
                })
                .collect(),
        )
    };
    Json::obj(vec![
        ("queries", Json::num_u(snap.queries)),
        ("cache_misses", Json::num_u(snap.cache_misses)),
        ("truncations", Json::num_u(snap.truncations)),
        (
            "sketch",
            Json::obj(vec![
                ("width", Json::num_u(snap.sketch_width as u64)),
                ("depth", Json::num_u(snap.sketch_depth as u64)),
            ]),
        ),
        ("popularity", entries(&snap.popularity)),
        ("misses", entries(&snap.misses)),
        ("truncated", entries(&snap.truncated)),
        (
            "profiler",
            Json::obj(vec![
                ("samples", Json::num_u(profile::samples())),
                ("dropped", Json::num_u(profile::dropped())),
            ]),
        ),
    ])
}

/// Serializes one response to its wire bytes — header block plus body —
/// so both cores (and the poller's outbound buffers) share one
/// formatter. `Allow:` rides on 405s, `Retry-After:` on shed 429s.
pub(crate) fn serialize_response(response: &Response, close: bool) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    let allow = if response.allow.is_empty() {
        String::new()
    } else {
        format!("Allow: {}\r\n", response.allow)
    };
    let retry = if response.retry_after == 0 {
        String::new()
    } else {
        format!("Retry-After: {}\r\n", response.retry_after)
    };
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{allow}{retry}Connection: {connection}\r\n\r\n",
        response.code,
        response.reason,
        response.content_type,
        response.body.len()
    );
    let mut out = Vec::with_capacity(header.len() + response.body.len());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
    out
}

/// A successful `/query` answer plus the accounting fields the access
/// log wants alongside the body.
struct QueryOutcome {
    body: String,
    trace_id: u64,
    cached: bool,
    truncation: String,
}

/// Answers `GET /query?tin=..&tout=..` with ranked-jungloid JSON.
///
/// Routed through the one-element batch path on purpose: the server's
/// queries then share the exact accounting (`engine.batch.*`, preallocated
/// trace ids) that `query --batch` lines get, so a dashboard scraping
/// `/metrics` sees one coherent story regardless of how queries arrived.
fn run_query(engine: &Prospector, max: usize, query: &str) -> Result<QueryOutcome, String> {
    let tin = query_param(query, "tin").ok_or("missing query parameter `tin`")?;
    let tout = query_param(query, "tout").ok_or("missing query parameter `tout`")?;
    let tin_ty = engine.api().types().resolve(&tin).map_err(|e| e.to_string())?;
    let tout_ty = engine.api().types().resolve(&tout).map_err(|e| e.to_string())?;

    let batch = engine.query_batch(&[(tin_ty, tout_ty)]);
    let entry = batch.into_iter().next().ok_or("empty batch result")?;
    let trace_id = entry.trace_id.0;
    let result = entry.result.map_err(|e| e.to_string())?;
    let cached = result.stats.result_cache_hits > 0;
    let truncation = result.truncation.label().to_owned();

    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("tin", Json::Str(tin)),
        ("tout", Json::Str(tout)),
        ("trace_id", Json::num_u(trace_id)),
        ("trace_id_hex", Json::Str(TraceId(trace_id).to_string())),
        (
            "shortest",
            result.shortest.map_or(Json::Null, |m| Json::num_u(u64::from(m))),
        ),
        ("truncation", Json::Str(truncation.clone())),
        ("cached", Json::Bool(cached)),
        ("found", Json::num_u(result.suggestions.len() as u64)),
        (
            "suggestions",
            Json::Arr(
                result
                    .suggestions
                    .iter()
                    .take(max)
                    .map(|s| Json::Str(s.code.clone()))
                    .collect(),
            ),
        ),
        (
            "stats",
            Json::obj(vec![
                ("result_cache_hits", Json::num_u(result.stats.result_cache_hits)),
                ("result_cache_misses", Json::num_u(result.stats.result_cache_misses)),
                ("dist_cache_hits", Json::num_u(result.stats.dist_cache_hits)),
                ("dist_cache_misses", Json::num_u(result.stats.dist_cache_misses)),
                ("bfs_relaxations", Json::num_u(result.stats.bfs_relaxations)),
                ("dfs_expansions", Json::num_u(result.stats.dfs_expansions)),
            ]),
        ),
    ];
    pairs.push(("time_us", Json::num_u(entry.time.as_micros() as u64)));
    Ok(QueryOutcome { body: Json::obj(pairs).to_text(), trace_id, cached, truncation })
}

/// Answers `GET /assist?var=name:Type&var=..&tout=Type` — the editor
/// content-assist fan-out: every visible variable is a source and one
/// fused search ranks jungloids from all of them, plus the variables
/// whose type already widens to `tout`.
fn run_assist(engine: &Prospector, max: usize, query: &str) -> Result<String, String> {
    let tout = query_param(query, "tout").ok_or("missing query parameter `tout`")?;
    let tout_ty = engine.api().types().resolve(&tout).map_err(|e| e.to_string())?;
    let vars = query_params_all(query, "var");
    if vars.is_empty() {
        return Err("missing query parameter `var` (repeatable, `name:Type`)".to_owned());
    }
    let mut parsed: Vec<(String, String)> = Vec::with_capacity(vars.len());
    for raw in &vars {
        let (name, ty) = raw
            .split_once(':')
            .ok_or_else(|| format!("malformed `var` value {raw:?} (expected `name:Type`)"))?;
        if name.is_empty() || ty.is_empty() {
            return Err(format!("malformed `var` value {raw:?} (expected `name:Type`)"));
        }
        parsed.push((name.to_owned(), ty.to_owned()));
    }
    let mut visible = Vec::with_capacity(parsed.len());
    for (name, ty) in &parsed {
        let ty_id = engine.api().types().resolve(ty).map_err(|e| e.to_string())?;
        visible.push((name.as_str(), ty_id));
    }
    let result = engine.assist(&visible, tout_ty).map_err(|e| e.to_string())?;
    Ok(Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("tout", Json::Str(tout)),
        (
            "vars",
            Json::Arr(
                parsed
                    .iter()
                    .map(|(name, ty)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("type", Json::Str(ty.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "already_available",
            Json::Arr(result.already_available.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "shortest",
            result.shortest.map_or(Json::Null, |m| Json::num_u(u64::from(m))),
        ),
        ("truncation", Json::Str(result.truncation.label().to_owned())),
        ("found", Json::num_u(result.suggestions.len() as u64)),
        (
            "suggestions",
            Json::Arr(
                result
                    .suggestions
                    .iter()
                    .take(max)
                    .map(|s| Json::Str(s.code.clone()))
                    .collect(),
            ),
        ),
    ])
    .to_text())
}

/// Minimal percent-decoding for query values (`%2E`, `+` → space). Type
/// names are dot-separated identifiers, so this is already generous.
fn percent_decode(value: &str) -> String {
    let bytes = value.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::{endpoint_index, percent_decode, query_param, ENDPOINTS};

    #[test]
    fn percent_decode_handles_escapes_and_passthrough() {
        assert_eq!(percent_decode("IFile"), "IFile");
        assert_eq!(percent_decode("a%2Eb"), "a.b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }

    #[test]
    fn query_param_finds_decodes_and_misses() {
        assert_eq!(query_param("tin=IFile&tout=a%2Eb", "tout").as_deref(), Some("a.b"));
        assert_eq!(query_param("tin=IFile", "tout"), None);
        assert_eq!(query_param("", "n"), None);
        assert_eq!(query_param("clear=1", "clear").as_deref(), Some("1"));
    }

    #[test]
    fn every_route_maps_into_the_endpoint_table() {
        for route in [
            "/healthz",
            "/readyz",
            "/metrics",
            "/status",
            "/query",
            "/assist",
            "/slow",
            "/trace.json",
            "/logs",
            "/heat",
            "/analytics",
            "/profile.folded",
            "/tenants",
            "/reload",
        ] {
            let ei = endpoint_index(route);
            assert_ne!(ENDPOINTS[ei], "other", "{route} should have its own label");
        }
        assert_eq!(ENDPOINTS[endpoint_index("/nope")], "other");
        assert_eq!(ENDPOINTS[endpoint_index("/")], "other");
    }

    #[test]
    fn admin_endpoints_advertise_their_methods() {
        use super::allowed_methods;
        assert_eq!(allowed_methods(endpoint_index("/tenants")), "GET, POST");
        assert_eq!(allowed_methods(endpoint_index("/reload")), "POST");
        assert_eq!(allowed_methods(endpoint_index("/query")), "GET");
    }

    #[test]
    fn repeatable_params_come_back_in_order() {
        use super::query_params_all;
        assert_eq!(
            query_params_all("var=r%3AReader&tout=T&var=s:String", "var"),
            vec!["r:Reader".to_owned(), "s:String".to_owned()]
        );
        assert!(query_params_all("tout=T", "var").is_empty());
    }

    #[test]
    fn top_k_param_defaults_clamps_and_parses() {
        use super::top_k_param;
        assert_eq!(top_k_param(""), 10);
        assert_eq!(top_k_param("k=5"), 5);
        assert_eq!(top_k_param("k=0"), 1);
        assert_eq!(top_k_param("k=9999"), 100);
        assert_eq!(top_k_param("k=abc"), 10);
    }
}
