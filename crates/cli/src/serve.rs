//! `prospector serve` — a zero-dependency HTTP/1.1 observability server.
//!
//! Everything here is `std`-only: a blocking-free accept loop over
//! [`std::net::TcpListener`] with one scoped thread per connection
//! ([`std::thread::scope`]), so shutting down is "set the flag, wait for
//! the scope" — the scope joins every in-flight handler and no thread
//! outlives [`Server::run`].
//!
//! Endpoints:
//!
//! | path                      | returns                                     |
//! |---------------------------|---------------------------------------------|
//! | `GET /healthz`            | `ok` (liveness)                             |
//! | `GET /metrics`            | Prometheus text exposition of the registry  |
//! | `GET /query?tin=..&tout=..` | ranked-jungloid JSON + the query's `trace_id` |
//! | `GET /slow`               | the retained slow-query timelines as JSON   |
//! | `GET /trace.json`         | the flight-recorder ring as Chrome trace    |
//!
//! The server enables both the metric registry and the flight recorder
//! at bind time (it exists to expose them), and pre-registers the core
//! metric families at zero so a scrape taken before the first query
//! still shows every series a dashboard will ever chart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use prospector_core::Prospector;
use prospector_obs::trace::{self, TraceId};
use prospector_obs::Json;

/// How long the accept loop sleeps when no connection is pending. The
/// shutdown flag is re-checked at this cadence, so it bounds shutdown
/// latency as well as idle wakeup rate.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection socket timeout: a client that connects and then goes
/// silent cannot pin a handler thread (and thus the scope) forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound listener, separated from [`Server::run`] so callers (the CLI,
/// the smoke test) can learn the real address before serving — binding
/// port 0 and reading it back is how the test avoids port collisions.
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds `addr`, turns the metric registry and flight recorder on,
    /// and pre-registers the core metric families at zero.
    ///
    /// # Errors
    ///
    /// Returns the bind failure as a displayable message.
    pub fn bind(addr: &str) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        prospector_obs::set_enabled(true);
        trace::set_enabled(true);
        warm_registry();
        Ok(Server { listener })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Returns the OS error as a displayable message.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves until `shutdown` is set. Connections are handled on scoped
    /// threads; when the flag flips, the accept loop stops and the scope
    /// joins every in-flight handler before this returns.
    ///
    /// # Errors
    ///
    /// Returns accept-loop failures other than `WouldBlock`.
    pub fn run(
        self,
        engine: &Prospector,
        max: usize,
        shutdown: &AtomicBool,
    ) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        std::thread::scope(|scope| {
            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || handle_connection(stream, engine, max));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => return Err(format!("accept: {e}")),
                }
            }
            Ok(())
        })
    }
}

/// Creates the metric families the core pipeline reports into, so the
/// very first `/metrics` scrape already exposes them at zero. (Prometheus
/// guidance: export a series before its first event, so `rate()` sees the
/// 0 → 1 transition.)
fn warm_registry() {
    const COUNTERS: &[&str] = &[
        "search.dfs_expansions",
        "search.bfs_relaxations",
        "search.paths_enumerated",
        "search.truncated.path_cap",
        "search.truncated.expansion_cap",
        "engine.dist_cache.hits",
        "engine.dist_cache.misses",
        "engine.dist_cache.evictions",
        "engine.batch.calls",
        "engine.batch.queries",
        "engine.batch.errors",
        "engine.dedup_drops",
        "rank.comparisons",
        "synth.snippets",
    ];
    for name in COUNTERS {
        prospector_obs::add(name, 0);
    }
    for name in [
        "query.latency_ns",
        "query.stage_ns.search",
        "query.stage_ns.synth",
        "query.stage_ns.rank",
    ] {
        let _ = prospector_obs::metrics::histogram(name);
    }
}

fn handle_connection(mut stream: TcpStream, engine: &Prospector, max: usize) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some((method, path)) = read_request_line(&mut stream) else {
        return;
    };
    if method != "GET" {
        respond(&mut stream, 405, "Method Not Allowed", "text/plain", "only GET is served\n");
        return;
    }
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path.as_str(), ""),
    };
    match route {
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain", "ok\n"),
        "/metrics" => {
            let body = prospector_obs::prom::render(&prospector_obs::snapshot());
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body);
        }
        "/query" => match run_query(engine, max, query) {
            Ok(body) => respond(&mut stream, 200, "OK", "application/json", &body),
            Err(message) => {
                let body = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(message)),
                ])
                .to_text();
                respond(&mut stream, 400, "Bad Request", "application/json", &body);
            }
        },
        "/slow" => {
            let body = trace::slow_to_json(&trace::slow_queries()).to_text();
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/trace.json" => {
            let body = trace::to_chrome_json(&trace::events()).to_text();
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "no such endpoint\n"),
    }
}

/// Reads just the request line (`GET /path HTTP/1.1`). Headers are
/// drained but ignored — every endpoint is a parameterless GET.
fn read_request_line(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read to end-of-headers (or a sane cap) one byte at a time; request
    // lines are tiny and this avoids over-reading into a keep-alive body.
    while !buf.ends_with(b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    Some((method, path))
}

fn respond(stream: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &str) {
    let header = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Answers `GET /query?tin=..&tout=..` with ranked-jungloid JSON.
///
/// Routed through the one-element batch path on purpose: the server's
/// queries then share the exact accounting (`engine.batch.*`, preallocated
/// trace ids) that `query --batch` lines get, so a dashboard scraping
/// `/metrics` sees one coherent story regardless of how queries arrived.
fn run_query(engine: &Prospector, max: usize, query: &str) -> Result<String, String> {
    let mut tin: Option<String> = None;
    let mut tout: Option<String> = None;
    for pair in query.split('&') {
        let Some((key, value)) = pair.split_once('=') else { continue };
        match key {
            "tin" => tin = Some(percent_decode(value)),
            "tout" => tout = Some(percent_decode(value)),
            _ => {}
        }
    }
    let tin = tin.ok_or("missing query parameter `tin`")?;
    let tout = tout.ok_or("missing query parameter `tout`")?;
    let tin_ty = engine.api().types().resolve(&tin).map_err(|e| e.to_string())?;
    let tout_ty = engine.api().types().resolve(&tout).map_err(|e| e.to_string())?;

    let batch = engine.query_batch(&[(tin_ty, tout_ty)]);
    let entry = batch.into_iter().next().ok_or("empty batch result")?;
    let result = entry.result.map_err(|e| e.to_string())?;

    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("tin", Json::Str(tin)),
        ("tout", Json::Str(tout)),
        ("trace_id", Json::num_u(entry.trace_id.0)),
        ("trace_id_hex", Json::Str(TraceId(entry.trace_id.0).to_string())),
        (
            "shortest",
            result.shortest.map_or(Json::Null, |m| Json::num_u(u64::from(m))),
        ),
        ("truncation", Json::Str(result.truncation.label().to_owned())),
        ("found", Json::num_u(result.suggestions.len() as u64)),
        (
            "suggestions",
            Json::Arr(
                result
                    .suggestions
                    .iter()
                    .take(max)
                    .map(|s| Json::Str(s.code.clone()))
                    .collect(),
            ),
        ),
        (
            "stats",
            Json::obj(vec![
                ("dist_cache_hits", Json::num_u(result.stats.dist_cache_hits)),
                ("dist_cache_misses", Json::num_u(result.stats.dist_cache_misses)),
                ("bfs_relaxations", Json::num_u(result.stats.bfs_relaxations)),
                ("dfs_expansions", Json::num_u(result.stats.dfs_expansions)),
            ]),
        ),
    ];
    pairs.push(("time_us", Json::num_u(entry.time.as_micros() as u64)));
    Ok(Json::obj(pairs).to_text())
}

/// Minimal percent-decoding for query values (`%2E`, `+` → space). Type
/// names are dot-separated identifiers, so this is already generous.
fn percent_decode(value: &str) -> String {
    let bytes = value.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::percent_decode;

    #[test]
    fn percent_decode_handles_escapes_and_passthrough() {
        assert_eq!(percent_decode("IFile"), "IFile");
        assert_eq!(percent_decode("a%2Eb"), "a.b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }
}
