//! Library surface of the `prospector` CLI.
//!
//! The binary (`src/main.rs`) is the real product; this library exists
//! so the HTTP serve loop can be driven in-process by integration tests
//! (bind port 0, issue real `TcpStream` requests, flip the shutdown
//! flag, and assert the loop returns with every worker joined).

pub mod http;
pub mod poller;
pub mod serve;
