//! Incremental HTTP/1.1 request framing, shared by both serve cores.
//!
//! The framer is a push-parser over a growing byte buffer: callers feed
//! whatever the socket produced (a torn fragment, one exact request, a
//! pipelined burst) and pull complete requests out one at a time. It is
//! deliberately independent of any stream type so the epoll poller can
//! drive it from nonblocking reads while the portable pool core drives
//! it from blocking ones — and so a unit test can drive it from plain
//! byte slices.
//!
//! Malformed input is a *typed* error, not a silent drop: a garbage
//! request line maps to `400`, a head that never terminates within
//! [`MAX_HEAD_BYTES`] to `431`, and a declared body over
//! [`MAX_BODY_BYTES`] to `413`. The serve layer turns each into a
//! strict-JSON response before closing the connection, so misbehaving
//! clients get told what happened instead of watching the socket vanish.

use std::collections::VecDeque;

/// Cap on one request head (request line + headers + blank line). A head
/// still unterminated past this is a `431 Request Header Fields Too
/// Large`.
pub const MAX_HEAD_BYTES: usize = 8192;

/// Cap on a declared `Content-Length` body. Handlers take parameters
/// from the query string, so bodies are drained and discarded — but an
/// unbounded declared length would let one client buffer arbitrary
/// memory. Over the cap is a `413 Payload Too Large`.
pub const MAX_BODY_BYTES: u64 = 65_536;

/// One parsed request head. The admin endpoints take their parameters
/// in the query string, so no handler reads a body — the framer consumes
/// and discards any declared `Content-Length` bytes to keep the
/// keep-alive stream framed.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query string).
    pub path: String,
    /// The connection should close after this request (`Connection:
    /// close`, or an HTTP/1.0 client that did not opt into keep-alive).
    pub close: bool,
}

/// Why a byte stream stopped being framable. Each maps to one status
/// code; after any of these the connection is unframable and must close
/// (the bytes that follow cannot be trusted to start a request).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The request line is not `METHOD /target HTTP/x.y` → `400`.
    BadRequestLine(String),
    /// No end-of-head within [`MAX_HEAD_BYTES`] → `431`.
    HeadersTooLarge(usize),
    /// Declared `Content-Length` over [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge(u64),
}

impl FrameError {
    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            FrameError::BadRequestLine(_) => 400,
            FrameError::HeadersTooLarge(_) => 431,
            FrameError::BodyTooLarge(_) => 413,
        }
    }

    /// The human half of the strict-JSON error body.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            FrameError::BadRequestLine(line) => {
                format!("malformed request line: {line:?}")
            }
            FrameError::HeadersTooLarge(bytes) => format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes ({bytes} buffered without end-of-headers)"
            ),
            FrameError::BodyTooLarge(len) => {
                format!("declared body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte cap")
            }
        }
    }
}

/// One [`RequestFramer::next`] outcome.
#[derive(Debug)]
pub enum Framed {
    /// A complete request was consumed from the buffer.
    Request(Request),
    /// More bytes are needed (or the framer is poisoned — see
    /// [`RequestFramer::poisoned`]).
    Incomplete,
    /// The stream is unframable; respond with [`FrameError::code`] and
    /// close. Returned exactly once, then the framer reports
    /// `Incomplete` forever.
    Error(FrameError),
}

/// The incremental request parser. Feed bytes with [`push`], pull
/// requests with [`next`] until it reports [`Framed::Incomplete`].
///
/// [`push`]: RequestFramer::push
/// [`next`]: RequestFramer::next
#[derive(Debug, Default)]
pub struct RequestFramer {
    buf: Vec<u8>,
    /// Prefix of `buf` already scanned for the end-of-head marker, so
    /// repeated `next` calls over a slow-trickling head stay linear.
    scanned: usize,
    poisoned: bool,
}

impl RequestFramer {
    /// A fresh framer for one connection.
    #[must_use]
    pub fn new() -> RequestFramer {
        RequestFramer::default()
    }

    /// Appends socket bytes to the frame buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed as a request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a frame error was returned; the connection must close.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Pops the next complete request, reports an error once, or asks
    /// for more bytes. Deliberately not an `Iterator`: the tri-state
    /// result (request / incomplete / error) has no clean `Option`
    /// mapping.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Framed {
        if self.poisoned {
            return Framed::Incomplete;
        }
        let Some(head_end) = self.find_head_end() else {
            if self.buf.len() > MAX_HEAD_BYTES {
                self.poisoned = true;
                return Framed::Error(FrameError::HeadersTooLarge(self.buf.len()));
            }
            return Framed::Incomplete;
        };
        if head_end > MAX_HEAD_BYTES {
            // The cap holds even when the whole head arrives in one
            // read: an oversized head is oversized whether or not its
            // terminator is already buffered.
            self.poisoned = true;
            return Framed::Error(FrameError::HeadersTooLarge(head_end));
        }
        let head = &self.buf[..head_end];
        let parsed = match parse_head(head) {
            Ok(p) => p,
            Err(e) => {
                self.poisoned = true;
                return Framed::Error(e);
            }
        };
        if parsed.content_length > MAX_BODY_BYTES {
            self.poisoned = true;
            return Framed::Error(FrameError::BodyTooLarge(parsed.content_length));
        }
        let total = head_end
            + 4
            + usize::try_from(parsed.content_length).expect("bounded by MAX_BODY_BYTES");
        if self.buf.len() < total {
            // Head parsed but the declared body has not fully arrived;
            // keep everything buffered and re-parse when it has (heads
            // are tiny, so the re-parse is cheaper than caching state).
            return Framed::Incomplete;
        }
        // Consume head + body; the body is discarded by construction.
        self.buf.drain(..total);
        self.scanned = 0;
        Framed::Request(parsed.request)
    }

    /// Index of the `\r\n\r\n` terminator, resuming where the last scan
    /// stopped.
    fn find_head_end(&mut self) -> Option<usize> {
        let start = self.scanned;
        if self.buf.len() < 4 {
            return None;
        }
        for i in start..=self.buf.len() - 4 {
            if &self.buf[i..i + 4] == b"\r\n\r\n" {
                return Some(i);
            }
        }
        self.scanned = self.buf.len() - 3;
        None
    }
}

struct ParsedHead {
    request: Request,
    content_length: u64,
}

/// Parses one complete head (`head` excludes the `\r\n\r\n` marker).
fn parse_head(head: &[u8]) -> Result<ParsedHead, FrameError> {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.lines();
    let line = lines.next().unwrap_or_default();
    let bad = || FrameError::BadRequestLine(truncate_for_error(line));
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(bad());
    };
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || !target.starts_with('/')
        || !version.starts_with("HTTP/")
    {
        return Err(bad());
    }
    let http10 = version == "HTTP/1.0";
    let mut close = http10;
    let mut content_length: u64 = 0;
    for (name, value) in lines.filter_map(|l| l.split_once(':')) {
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if http10 && value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| FrameError::BadRequestLine(format!("content-length: {value:?}")))?;
        }
    }
    Ok(ParsedHead {
        request: Request { method: method.to_owned(), path: target.to_owned(), close },
        content_length,
    })
}

/// First 80 chars of a bad request line, so the strict-JSON error body
/// stays bounded no matter what arrived.
fn truncate_for_error(line: &str) -> String {
    let mut s: String = line.chars().take(80).collect();
    if s.len() < line.len() {
        s.push('…');
    }
    s
}

/// Frames every request out of one contiguous byte stream — the pool
/// core's convenience over a blocking read loop, and the shape the unit
/// tests drive.
pub fn frame_all(bytes: &[u8]) -> (Vec<Request>, Option<FrameError>) {
    let mut framer = RequestFramer::new();
    framer.push(bytes);
    let mut out = Vec::new();
    loop {
        match framer.next() {
            Framed::Request(r) => out.push(r),
            Framed::Incomplete => return (out, None),
            Framed::Error(e) => return (out, Some(e)),
        }
    }
}

/// Pipelined-request bookkeeping for one connection: requests framed but
/// not yet dispatched. Thin wrapper so both cores share the close-cap
/// arithmetic.
#[derive(Debug, Default)]
pub struct PendingRequests {
    queue: VecDeque<Request>,
}

impl PendingRequests {
    /// Queues a framed request for dispatch.
    pub fn push(&mut self, request: Request) {
        self.queue.push_back(request);
    }

    /// The next request to dispatch, if any.
    pub fn pop(&mut self) -> Option<Request> {
        self.queue.pop_front()
    }

    /// Requests framed and waiting.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no framed request is waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_exact_request_frames() {
        let (reqs, err) = frame_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/healthz");
        assert!(!reqs[0].close);
    }

    #[test]
    fn torn_stream_frames_once_complete() {
        // The same request delivered one byte at a time: every prefix is
        // Incomplete, the final byte completes it.
        let wire = b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut framer = RequestFramer::new();
        for (i, b) in wire.iter().enumerate() {
            framer.push(std::slice::from_ref(b));
            match framer.next() {
                Framed::Incomplete => assert!(i + 1 < wire.len(), "must frame at the end"),
                Framed::Request(r) => {
                    assert_eq!(i + 1, wire.len(), "framed early at byte {i}");
                    assert_eq!(r.path, "/status");
                    assert!(r.close);
                }
                Framed::Error(e) => panic!("unexpected frame error: {e:?}"),
            }
        }
        assert_eq!(framer.buffered(), 0);
    }

    #[test]
    fn pipelined_burst_frames_in_order() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nPOST /c?x=1 HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /d HTTP/1.1\r\n\r\n";
        let (reqs, err) = frame_all(wire);
        assert!(err.is_none());
        let paths: Vec<&str> = reqs.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["/a", "/b", "/c?x=1", "/d"]);
        assert_eq!(reqs[2].method, "POST");
    }

    #[test]
    fn body_split_across_pushes_keeps_framing() {
        let mut framer = RequestFramer::new();
        framer.push(b"POST /reload HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
        assert!(matches!(framer.next(), Framed::Incomplete));
        framer.push(b"cde");
        assert!(matches!(framer.next(), Framed::Request(r) if r.path == "/reload"));
        framer.push(b"GET /next HTTP/1.1\r\n\r\n");
        assert!(matches!(framer.next(), Framed::Request(r) if r.path == "/next"));
    }

    #[test]
    fn garbage_request_line_is_a_400() {
        let (reqs, err) = frame_all(b"NOT A REQUEST AT ALL\r\n\r\n");
        assert!(reqs.is_empty());
        let err = err.expect("garbage must error");
        assert_eq!(err.code(), 400);
        assert!(err.message().contains("malformed request line"));
    }

    #[test]
    fn binary_junk_is_a_400_not_a_hang() {
        let (reqs, err) = frame_all(b"\x16\x03\x01\x02\x00\x01\r\n\r\n");
        assert!(reqs.is_empty());
        assert_eq!(err.expect("TLS hello is not HTTP").code(), 400);
    }

    #[test]
    fn oversized_head_is_a_431() {
        let mut wire = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        wire.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        let (reqs, err) = frame_all(&wire);
        assert!(reqs.is_empty());
        assert_eq!(err.expect("unterminated head must error").code(), 431);
    }

    #[test]
    fn oversized_head_with_terminator_is_still_a_431() {
        // The whole head — terminator included — lands in one push, so
        // the "waiting for the marker" cap never fires; the post-scan
        // cap must.
        let mut wire = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        wire.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        wire.extend_from_slice(b"\r\n\r\n");
        let (reqs, err) = frame_all(&wire);
        assert!(reqs.is_empty());
        assert_eq!(err.expect("terminated oversized head must error").code(), 431);
    }

    #[test]
    fn oversized_declared_body_is_a_413() {
        let wire = format!(
            "POST /tenants HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let (reqs, err) = frame_all(wire.as_bytes());
        assert!(reqs.is_empty());
        assert_eq!(err.expect("huge body must error").code(), 413);
    }

    #[test]
    fn poisoned_framer_stays_incomplete() {
        let mut framer = RequestFramer::new();
        framer.push(b"garbage\r\n\r\nGET /after HTTP/1.1\r\n\r\n");
        assert!(matches!(framer.next(), Framed::Error(_)));
        assert!(framer.poisoned());
        // Later bytes can never resurrect a poisoned stream.
        framer.push(b"GET /more HTTP/1.1\r\n\r\n");
        assert!(matches!(framer.next(), Framed::Incomplete));
    }

    #[test]
    fn http10_defaults_to_close_unless_keepalive() {
        let (reqs, _) = frame_all(b"GET /a HTTP/1.0\r\n\r\n");
        assert!(reqs[0].close);
        let (reqs, _) = frame_all(b"GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!reqs[0].close);
        let (reqs, _) = frame_all(b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reqs[0].close);
    }

    #[test]
    fn bad_content_length_is_a_400() {
        let (_, err) = frame_all(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
        assert_eq!(err.expect("non-numeric length must error").code(), 400);
    }
}
