//! The epoll readiness serve core: 10k keep-alive connections on one
//! poller thread.
//!
//! The portable pool core parks a whole worker thread on every
//! keep-alive connection, so idle connections — the common case for IDE
//! content-assist clients — cap concurrency at `--workers`. This module
//! inverts that: **one poller thread owns the listener and every parked
//! socket**, and workers only ever see *parsed requests*.
//!
//! Ownership rules (the whole design in four lines):
//!
//! 1. The poller thread exclusively owns every [`TcpStream`], the epoll
//!    set, and all per-connection state. No lock guards any of it.
//! 2. Workers receive `(connection id, parsed request)` jobs and return
//!    `(connection id, response bytes)` completions. They never touch a
//!    socket.
//! 3. The completion queue's eventfd is the only cross-thread signal
//!    into the poller; everything else arrives as socket readiness.
//! 4. A connection id is never reused, so a completion for a connection
//!    that died mid-request falls harmlessly on the floor.
//!
//! Parsing happens **in the poller** (cheap, bounded by the framer's
//! head cap) while query execution happens **in a worker** (expensive,
//! unbounded): splitting at the parsed-request boundary means a slow
//! query never blocks framing on other connections, and the poller can
//! make shed decisions — `429` + `Retry-After`, written without waking
//! a worker — on requests it has already routed.
//!
//! Writes that would block re-arm the connection with `EPOLLOUT` and
//! continue from a per-connection outbound buffer when the socket
//! drains. Idle connections are reaped by a coarse **timer wheel**:
//! accept inserts the connection one `idle_timeout` ahead, and each
//! firing either reaps (still parked and idle past the deadline) or
//! lazily reinserts at the remaining time — activity just stamps
//! `idle_since`, never touches the wheel.
//!
//! The raw `epoll`/`eventfd` syscall wrappers mirror the mmap shim in
//! `prospector-core`'s `slab::sys`: Linux/x86_64 inline-assembly
//! syscalls, no libc. Everywhere else [`supported`] is false and
//! [`crate::serve::Server::run`] keeps the portable pool core.

/// Whether this build carries the epoll core (Linux/x86_64).
#[must_use]
pub fn supported() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) use imp::serve_epoll;

/// Portable stub: [`supported`] is false here, so `Server::run` never
/// calls this; it exists to keep the call site platform-free.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub(crate) fn serve_epoll(
    _listener: std::net::TcpListener,
    _ctx: &crate::serve::Ctx<'_>,
    _shutdown: &std::sync::atomic::AtomicBool,
) -> Result<(), String> {
    Err("the epoll serve core is only available on Linux/x86_64".to_owned())
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use std::collections::{HashMap, VecDeque};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex};
    use std::time::{Duration, Instant};

    use crate::http::{Framed, Request, RequestFramer};
    use crate::serve::{
        answer, endpoint_of, frame_error_response, record_request, sampler_loop,
        serialize_response, shed_response, Ctx,
    };

    /// epoll data token for the listening socket.
    const TOKEN_LISTENER: u64 = 0;
    /// epoll data token for the completion queue's eventfd.
    const TOKEN_WAKE: u64 = 1;
    /// First connection id; ids only grow and are never reused.
    const FIRST_CONN: u64 = 2;

    /// Readiness events drained per `epoll_wait` call.
    const EVENT_BATCH: usize = 256;

    /// Upper bound on one `epoll_wait` sleep: the shutdown flag and the
    /// timer wheel are re-checked at least this often.
    const WAIT_SLICE: Duration = Duration::from_millis(50);

    /// How long a draining shutdown waits for in-flight requests to
    /// finish and flush before giving up and closing anyway.
    const DRAIN_GRACE: Duration = Duration::from_secs(3);

    /// Nonblocking read chunk; large enough that a pipelined burst
    /// drains in one or two reads.
    const READ_CHUNK: usize = 16 * 1024;

    /// Timer-wheel slots; one full turn spans the idle timeout, so the
    /// reap granularity is `idle_timeout / WHEEL_SLOTS` (floored at
    /// [`MIN_TICK`]).
    const WHEEL_SLOTS: usize = 64;

    /// Floor on the wheel tick so tiny `--idle-timeout` values (tests
    /// use fractions of a second) cannot spin the wheel every few µs.
    const MIN_TICK: Duration = Duration::from_millis(25);

    /// One parsed request on its way to a worker.
    struct ParsedJob {
        conn: u64,
        request: Request,
        /// Close the connection after this response (client asked, or
        /// the keep-alive cap is reached).
        close: bool,
        enqueued: Instant,
    }

    /// The poller → worker handoff, mirroring the pool core's job queue:
    /// pops are attempted *before* the stop checks so everything queued
    /// before shutdown is always drained.
    struct ParsedQueue {
        jobs: Mutex<VecDeque<ParsedJob>>,
        ready: Condvar,
    }

    impl ParsedQueue {
        fn new() -> ParsedQueue {
            ParsedQueue { jobs: Mutex::new(VecDeque::new()), ready: Condvar::new() }
        }

        fn push(&self, job: ParsedJob) {
            self.jobs.lock().unwrap().push_back(job);
            self.ready.notify_one();
        }

        fn len(&self) -> usize {
            self.jobs.lock().unwrap().len()
        }

        fn pop(&self, shutdown: &AtomicBool, stopping: &AtomicBool) -> Option<ParsedJob> {
            let mut jobs = self.jobs.lock().unwrap();
            loop {
                if let Some(job) = jobs.pop_front() {
                    return Some(job);
                }
                if shutdown.load(Ordering::Relaxed) || stopping.load(Ordering::Relaxed) {
                    return None;
                }
                jobs = self.ready.wait_timeout(jobs, WAIT_SLICE).unwrap().0;
            }
        }
    }

    /// One finished request on its way back to the poller.
    struct Completion {
        conn: u64,
        bytes: Vec<u8>,
        close: bool,
    }

    /// The worker → poller handoff. Pushing rings the eventfd so the
    /// poller wakes out of `epoll_wait` immediately instead of on the
    /// next slice.
    struct CompletionQueue {
        done: Mutex<Vec<Completion>>,
        wake_fd: i32,
    }

    impl CompletionQueue {
        fn push(&self, completion: Completion) {
            self.done.lock().unwrap().push(completion);
            sys::eventfd_ring(self.wake_fd);
        }

        fn drain(&self) -> Vec<Completion> {
            std::mem::take(&mut *self.done.lock().unwrap())
        }
    }

    /// Everything the poller knows about one connection.
    struct Conn {
        stream: TcpStream,
        framer: RequestFramer,
        /// Requests framed but not yet dispatched, with their close flag
        /// already resolved against the keep-alive cap.
        pending: VecDeque<(Request, bool)>,
        /// Outbound bytes not yet written (`out_pos..` is the remainder).
        out: Vec<u8>,
        out_pos: usize,
        /// A request from this connection is with a worker. At most one:
        /// pipelined requests serialize per connection.
        in_flight: bool,
        /// Close once `out` is fully flushed; no further dispatches.
        close_after_flush: bool,
        /// The peer closed its write side (EOF) — serve what is pending,
        /// then drop.
        peer_gone: bool,
        /// Requests served (dispatch + shed) toward the keep-alive cap.
        served: usize,
        /// Last activity, read lazily by the timer wheel.
        idle_since: Instant,
        /// The epoll registration currently includes `EPOLLOUT`.
        want_write: bool,
    }

    impl Conn {
        fn new(stream: TcpStream) -> Conn {
            Conn {
                stream,
                framer: RequestFramer::new(),
                pending: VecDeque::new(),
                out: Vec::new(),
                out_pos: 0,
                in_flight: false,
                close_after_flush: false,
                peer_gone: false,
                served: 0,
                idle_since: Instant::now(),
                want_write: false,
            }
        }

        /// Unwritten outbound bytes remain.
        fn has_backlog(&self) -> bool {
            self.out_pos < self.out.len()
        }

        /// Nothing pending, nothing in flight, nothing to write — the
        /// state the timer wheel may reap and EOF may drop.
        fn is_parked_empty(&self) -> bool {
            !self.in_flight && self.pending.is_empty() && !self.has_backlog()
        }
    }

    /// The coarse hashed timer wheel reaping idle connections. Insertion
    /// is O(1); each tick drains one slot. Entries are *hints*: the
    /// firing re-checks the connection's real `idle_since` and reinserts
    /// at the remaining time when activity moved the deadline.
    struct TimerWheel {
        slots: Vec<Vec<u64>>,
        cursor: usize,
        tick: Duration,
        last: Instant,
    }

    impl TimerWheel {
        fn new(idle_timeout: Duration) -> TimerWheel {
            let tick = (idle_timeout / WHEEL_SLOTS as u32).max(MIN_TICK);
            TimerWheel {
                slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
                cursor: 0,
                tick,
                last: Instant::now(),
            }
        }

        fn insert(&mut self, id: u64, delay: Duration) {
            let ticks = (delay.as_nanos() / self.tick.as_nanos()).max(1) as usize;
            let slot = (self.cursor + ticks.min(WHEEL_SLOTS - 1)) % WHEEL_SLOTS;
            self.slots[slot].push(id);
        }

        /// Advances the cursor past due ticks, returning every id whose
        /// slot fired.
        fn expired(&mut self, now: Instant) -> Vec<u64> {
            let mut fired = Vec::new();
            while now.duration_since(self.last) >= self.tick {
                self.last += self.tick;
                self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
                fired.append(&mut self.slots[self.cursor]);
            }
            fired
        }
    }

    /// The poller thread's whole state. All methods run on that one
    /// thread; only the two queues are shared.
    struct Poller<'p> {
        epfd: i32,
        ctx: &'p Ctx<'p>,
        queue: &'p ParsedQueue,
        shutdown: &'p AtomicBool,
        conns: HashMap<u64, Conn>,
        wheel: TimerWheel,
        next_id: u64,
    }

    /// Runs the epoll core until `shutdown` flips: spawns the worker
    /// pool and the sampler inside one scope, then drives the readiness
    /// loop on the calling thread. On shutdown the poller stops
    /// accepting and dispatching, drains in-flight requests and
    /// outbound buffers (bounded by [`DRAIN_GRACE`]), and the scope
    /// joins every thread before this returns.
    pub(crate) fn serve_epoll(
        listener: TcpListener,
        ctx: &Ctx<'_>,
        shutdown: &AtomicBool,
    ) -> Result<(), String> {
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let epfd = sys::epoll_create1().map_err(|e| format!("epoll_create1: errno {e}"))?;
        let wake_fd = match sys::eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close(epfd);
                return Err(format!("eventfd: errno {e}"));
            }
        };
        let setup = sys::epoll_ctl(
            epfd,
            sys::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            sys::EPOLLIN,
            TOKEN_LISTENER,
        )
        .and_then(|()| sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, wake_fd, sys::EPOLLIN, TOKEN_WAKE));
        if let Err(e) = setup {
            sys::close(wake_fd);
            sys::close(epfd);
            return Err(format!("epoll_ctl(setup): errno {e}"));
        }

        let queue = ParsedQueue::new();
        let completions = CompletionQueue { done: Mutex::new(Vec::new()), wake_fd };
        let stopping = AtomicBool::new(false);
        let result = std::thread::scope(|scope| {
            for _ in 0..ctx.workers {
                let queue = &queue;
                let completions = &completions;
                let stopping = &stopping;
                scope.spawn(move || worker_loop(queue, completions, ctx, shutdown, stopping));
            }
            {
                let stopping = &stopping;
                scope.spawn(move || sampler_loop(ctx, shutdown, stopping));
            }
            let mut poller = Poller {
                epfd,
                ctx,
                queue: &queue,
                shutdown,
                conns: HashMap::new(),
                wheel: TimerWheel::new(ctx.idle_timeout),
                next_id: FIRST_CONN,
            };
            let result = poller.run(&listener, wake_fd, &completions);
            // Wake every parked worker so they observe the stop without
            // waiting out their poll interval.
            stopping.store(true, Ordering::Relaxed);
            queue.ready.notify_all();
            result
        });
        sys::close(wake_fd);
        sys::close(epfd);
        result
    }

    /// One worker: pops parsed requests, answers them through the exact
    /// same routing/accounting path as the pool core, and hands the
    /// serialized bytes back as a completion. Queue wait is measured per
    /// request — the poller stamps every job at dispatch, so keep-alive
    /// follow-ups get real wait numbers too.
    fn worker_loop(
        queue: &ParsedQueue,
        completions: &CompletionQueue,
        ctx: &Ctx<'_>,
        shutdown: &AtomicBool,
        stopping: &AtomicBool,
    ) {
        while let Some(job) = queue.pop(shutdown, stopping) {
            ctx.depth.store(queue.len() as u64, Ordering::Relaxed);
            let wait_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ctx.busy.fetch_add(1, Ordering::Relaxed);
            let started = Instant::now();
            // The profiler's root frame, same label as the pool core so
            // `/profile.folded` reads identically under either core.
            let _span = prospector_obs::stage("serve.request");
            let (endpoint, response) = answer(ctx, &job.request);
            let bytes = serialize_response(&response, job.close);
            let handle_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_request(endpoint, &response, wait_ns, handle_ns);
            ctx.busy.fetch_sub(1, Ordering::Relaxed);
            completions.push(Completion { conn: job.conn, bytes, close: job.close });
        }
    }

    impl Poller<'_> {
        /// The readiness loop: wait, dispatch events, absorb
        /// completions, turn the timer wheel, repeat.
        fn run(
            &mut self,
            listener: &TcpListener,
            wake_fd: i32,
            completions: &CompletionQueue,
        ) -> Result<(), String> {
            let mut events = [sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
            let mut draining_since: Option<Instant> = None;
            loop {
                let stop = self.shutdown.load(Ordering::Relaxed);
                if stop {
                    let since = *draining_since.get_or_insert_with(Instant::now);
                    let drained = self.ctx.inflight.load(Ordering::Relaxed) == 0
                        && self.queue.len() == 0
                        && !self.conns.values().any(Conn::has_backlog);
                    if drained || since.elapsed() >= DRAIN_GRACE {
                        return Ok(());
                    }
                }
                let timeout =
                    i32::try_from(WAIT_SLICE.as_millis().min(self.wheel.tick.as_millis()))
                        .unwrap_or(50);
                let n = match sys::epoll_wait(self.epfd, &mut events, timeout) {
                    Ok(n) => n,
                    Err(sys::EINTR) => 0,
                    Err(e) => return Err(format!("epoll_wait: errno {e}")),
                };
                for ev in &events[..n] {
                    // Copy out of the packed struct before use.
                    let (bits, token) = (ev.events, ev.data);
                    match token {
                        TOKEN_LISTENER => {
                            if !stop {
                                self.accept_all(listener)?;
                            }
                        }
                        TOKEN_WAKE => sys::eventfd_drain(wake_fd),
                        id => self.on_conn_event(id, bits),
                    }
                }
                self.process_completions(completions);
                for id in self.wheel.expired(Instant::now()) {
                    self.check_reap(id);
                }
            }
        }

        /// Accepts until the backlog is empty, registering each socket
        /// for readiness and arming its idle timer. There is no accept
        /// backpressure here — admission control happens per *request*
        /// at dispatch, where shedding can actually answer the client.
        fn accept_all(&mut self, listener: &TcpListener) -> Result<(), String> {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let id = self.next_id;
                        self.next_id += 1;
                        if sys::epoll_ctl(
                            self.epfd,
                            sys::EPOLL_CTL_ADD,
                            stream.as_raw_fd(),
                            sys::EPOLLIN | sys::EPOLLRDHUP,
                            id,
                        )
                        .is_err()
                        {
                            continue;
                        }
                        self.conns.insert(id, Conn::new(stream));
                        self.wheel.insert(id, self.ctx.idle_timeout);
                        self.ctx.conns.fetch_add(1, Ordering::Relaxed);
                        self.ctx.parked.fetch_add(1, Ordering::Relaxed);
                        prospector_obs::add("serve.poller.accepts", 1);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(format!("accept: {e}")),
                }
            }
        }

        /// Routes one readiness event for a connection.
        fn on_conn_event(&mut self, id: u64, bits: u32) {
            if !self.conns.contains_key(&id) {
                return;
            }
            if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                self.drop_conn(id);
                return;
            }
            if bits & sys::EPOLLOUT != 0 {
                self.try_flush(id);
            }
            if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
                self.read_ready(id);
            }
        }

        /// Drains the socket into the framer, frames every complete
        /// request, dispatches / sheds, and flushes whatever the shed
        /// path wrote.
        fn read_ready(&mut self, id: u64) {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            let mut chunk = [0u8; READ_CHUNK];
            let mut fatal = false;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_gone = true;
                        break;
                    }
                    Ok(n) => conn.framer.push(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        fatal = true;
                        break;
                    }
                }
            }
            if fatal {
                self.drop_conn(id);
                return;
            }
            let Some(conn) = self.conns.get_mut(&id) else { return };
            conn.idle_since = Instant::now();
            // Frame everything available; stop at the request that will
            // close the connection (any pipelined bytes after it are
            // dead on arrival anyway).
            loop {
                match conn.framer.next() {
                    Framed::Request(request) => {
                        let queued = conn.pending.len() + usize::from(conn.in_flight);
                        let close = request.close
                            || conn.served + queued + 1 >= self.ctx.keepalive_max;
                        conn.pending.push_back((request, close));
                        if close {
                            break;
                        }
                    }
                    Framed::Error(error) => {
                        // Answered straight from the poller: a framing
                        // error needs no engine, and the connection is
                        // closing regardless.
                        let started = Instant::now();
                        let response = frame_error_response(&error);
                        let bytes = serialize_response(&response, true);
                        let handle_ns =
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        record_request(endpoint_of(""), &response, 0, handle_ns);
                        prospector_obs::add("serve.poller.frame_errors", 1);
                        conn.out.extend_from_slice(&bytes);
                        conn.close_after_flush = true;
                        break;
                    }
                    Framed::Incomplete => break,
                }
            }
            self.maybe_dispatch(id);
            self.try_flush(id);
            if let Some(conn) = self.conns.get(&id) {
                if conn.peer_gone && conn.is_parked_empty() {
                    self.drop_conn(id);
                }
            }
        }

        /// Dispatches the connection's next pending request to the
        /// worker pool — or sheds it with a poller-written `429` when
        /// the in-flight ceiling is reached. Loops so a burst of
        /// pipelined requests sheds in one pass instead of one per
        /// readiness event.
        fn maybe_dispatch(&mut self, id: u64) {
            loop {
                let Some(conn) = self.conns.get_mut(&id) else { return };
                if conn.in_flight
                    || conn.close_after_flush
                    || self.shutdown.load(Ordering::Relaxed)
                {
                    return;
                }
                let Some((request, close)) = conn.pending.pop_front() else { return };
                if self.ctx.inflight.load(Ordering::Relaxed) >= self.ctx.max_inflight as u64 {
                    // Admission control: answer 429 + Retry-After from
                    // this thread; no worker, no queue slot.
                    let started = Instant::now();
                    let response = shed_response();
                    let bytes = serialize_response(&response, close);
                    let handle_ns =
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    record_request(endpoint_of(&request.path), &response, 0, handle_ns);
                    self.ctx.shed.fetch_add(1, Ordering::Relaxed);
                    prospector_obs::add("serve.shed.total", 1);
                    conn.out.extend_from_slice(&bytes);
                    conn.served += 1;
                    if close {
                        conn.close_after_flush = true;
                        return;
                    }
                    continue;
                }
                conn.in_flight = true;
                conn.served += 1;
                self.ctx.inflight.fetch_add(1, Ordering::Relaxed);
                self.ctx.parked.fetch_sub(1, Ordering::Relaxed);
                self.queue.push(ParsedJob {
                    conn: id,
                    request,
                    close,
                    enqueued: Instant::now(),
                });
                self.ctx.depth.store(self.queue.len() as u64, Ordering::Relaxed);
                return;
            }
        }

        /// Absorbs finished requests: append the response bytes to the
        /// connection's outbound buffer, flush, and dispatch whatever
        /// pipelined request was waiting its turn.
        fn process_completions(&mut self, completions: &CompletionQueue) {
            for done in completions.drain() {
                self.ctx.inflight.fetch_sub(1, Ordering::Relaxed);
                let Some(conn) = self.conns.get_mut(&done.conn) else {
                    // The connection died while its request was with a
                    // worker; ids are never reused, so just drop it.
                    continue;
                };
                conn.in_flight = false;
                conn.idle_since = Instant::now();
                self.ctx.parked.fetch_add(1, Ordering::Relaxed);
                conn.out.extend_from_slice(&done.bytes);
                if done.close {
                    conn.close_after_flush = true;
                }
                self.try_flush(done.conn);
                self.maybe_dispatch(done.conn);
                self.try_flush(done.conn);
            }
        }

        /// Writes the outbound buffer as far as the socket allows.
        /// `WouldBlock` re-arms the registration with `EPOLLOUT`; a
        /// complete flush disarms it again and completes any deferred
        /// close.
        fn try_flush(&mut self, id: u64) {
            let epfd = self.epfd;
            let mut drop_now = false;
            {
                let Some(conn) = self.conns.get_mut(&id) else { return };
                loop {
                    if conn.out_pos >= conn.out.len() {
                        break;
                    }
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(0) => {
                            drop_now = true;
                            break;
                        }
                        Ok(n) => conn.out_pos += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if !conn.want_write {
                                conn.want_write = true;
                                let _ = sys::epoll_ctl(
                                    epfd,
                                    sys::EPOLL_CTL_MOD,
                                    conn.stream.as_raw_fd(),
                                    sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLOUT,
                                    id,
                                );
                            }
                            return;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            drop_now = true;
                            break;
                        }
                    }
                }
                if !drop_now {
                    conn.out.clear();
                    conn.out_pos = 0;
                    if conn.want_write {
                        conn.want_write = false;
                        let _ = sys::epoll_ctl(
                            epfd,
                            sys::EPOLL_CTL_MOD,
                            conn.stream.as_raw_fd(),
                            sys::EPOLLIN | sys::EPOLLRDHUP,
                            id,
                        );
                    }
                    if conn.close_after_flush || (conn.peer_gone && conn.is_parked_empty()) {
                        drop_now = true;
                    }
                }
            }
            if drop_now {
                self.drop_conn(id);
            }
        }

        /// A timer-wheel firing for `id`: reap if still parked and idle
        /// past the timeout, otherwise reinsert at the remaining time.
        fn check_reap(&mut self, id: u64) {
            let (reap, remaining) = {
                let Some(conn) = self.conns.get(&id) else { return };
                let idle = conn.idle_since.elapsed();
                let reap = conn.is_parked_empty() && idle >= self.ctx.idle_timeout;
                (reap, self.ctx.idle_timeout.saturating_sub(idle))
            };
            if reap {
                self.drop_conn(id);
                self.ctx.reaped.fetch_add(1, Ordering::Relaxed);
                prospector_obs::add("serve.poller.reaped", 1);
            } else {
                self.wheel.insert(id, remaining);
            }
        }

        /// Deregisters and closes one connection. Safe to call with a
        /// request still in flight: the completion finds no connection
        /// and is discarded.
        fn drop_conn(&mut self, id: u64) {
            let Some(conn) = self.conns.remove(&id) else { return };
            let _ = sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_DEL,
                conn.stream.as_raw_fd(),
                0,
                0,
            );
            if !conn.in_flight {
                self.ctx.parked.fetch_sub(1, Ordering::Relaxed);
            }
            self.ctx.conns.fetch_sub(1, Ordering::Relaxed);
            // `conn.stream` drops here, closing the fd.
        }
    }

    /// Raw `epoll(7)` / `eventfd(2)` syscall wrappers — std-only, no
    /// libc, in the style of `prospector-core`'s `slab::sys` mmap shim.
    /// Errors are `-errno` returns surfaced as positive errno values.
    mod sys {
        const SYS_READ: usize = 0;
        const SYS_WRITE: usize = 1;
        const SYS_CLOSE: usize = 3;
        const SYS_EPOLL_WAIT: usize = 232;
        const SYS_EPOLL_CTL: usize = 233;
        const SYS_EVENTFD2: usize = 290;
        const SYS_EPOLL_CREATE1: usize = 291;

        const EPOLL_CLOEXEC: usize = 0x80000;
        const EFD_CLOEXEC: usize = 0x80000;
        const EFD_NONBLOCK: usize = 0x800;

        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// `EINTR`, the one errno the poll loop treats as "no events".
        pub const EINTR: isize = 4;

        /// The kernel's `struct epoll_event` on x86_64 (packed: the
        /// 64-bit data member is not 8-aligned).
        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        /// One raw syscall with up to four arguments. Unused argument
        /// registers carry zeros, which every syscall here ignores.
        ///
        /// # Safety
        ///
        /// The caller must uphold the invoked syscall's contract —
        /// here that is only ever "fd is owned by us" and "pointers
        /// reference live memory of the stated length".
        unsafe fn syscall4(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
            let ret: isize;
            // SAFETY: plain syscall; the kernel validates every argument
            // and reports failure through the return value.
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") nr as isize => ret,
                    in("rdi") a1,
                    in("rsi") a2,
                    in("rdx") a3,
                    in("r10") a4,
                    out("rcx") _,
                    out("r11") _,
                    options(nostack),
                );
            }
            ret
        }

        /// Converts a `-errno` return into `Err(errno)`.
        fn check(ret: isize) -> Result<isize, isize> {
            if (-4095..0).contains(&ret) {
                Err(-ret)
            } else {
                Ok(ret)
            }
        }

        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub fn epoll_create1() -> Result<i32, isize> {
            // SAFETY: no pointers; the kernel allocates and returns a fd.
            let ret = unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) };
            check(ret).map(|fd| fd as i32)
        }

        /// `epoll_ctl(epfd, op, fd, &event)`; `events`/`data` are the
        /// event payload (ignored by the kernel for `EPOLL_CTL_DEL`).
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> Result<(), isize> {
            let ev = EpollEvent { events, data };
            // SAFETY: `ev` lives across the call; fds are ours.
            let ret = unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    epfd as usize,
                    op as usize,
                    fd as usize,
                    std::ptr::addr_of!(ev) as usize,
                )
            };
            check(ret).map(|_| ())
        }

        /// `epoll_wait(epfd, events, events.len(), timeout_ms)` → number
        /// of ready events.
        pub fn epoll_wait(
            epfd: i32,
            events: &mut [EpollEvent],
            timeout_ms: i32,
        ) -> Result<usize, isize> {
            // SAFETY: the buffer outlives the call and its length is
            // passed alongside.
            let ret = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                )
            };
            check(ret).map(|n| n as usize)
        }

        /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)` — the poller's
        /// wake-up channel.
        pub fn eventfd() -> Result<i32, isize> {
            // SAFETY: no pointers.
            let ret = unsafe { syscall4(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) };
            check(ret).map(|fd| fd as i32)
        }

        /// Adds 1 to the eventfd counter, waking the poller. Failure
        /// (counter saturated) is ignored — the poller is then already
        /// guaranteed to wake.
        pub fn eventfd_ring(fd: i32) {
            let one: u64 = 1;
            // SAFETY: 8 bytes of a live stack value.
            let _ = unsafe {
                syscall4(SYS_WRITE, fd as usize, std::ptr::addr_of!(one) as usize, 8, 0)
            };
        }

        /// Zeroes the eventfd counter so it can signal again.
        pub fn eventfd_drain(fd: i32) {
            let mut buf = [0u8; 8];
            // SAFETY: 8 bytes of a live stack buffer.
            let _ = unsafe {
                syscall4(SYS_READ, fd as usize, buf.as_mut_ptr() as usize, 8, 0)
            };
        }

        /// `close(fd)` for the fds this module created raw.
        pub fn close(fd: i32) {
            // SAFETY: only called on fds this module owns.
            let _ = unsafe { syscall4(SYS_CLOSE, fd as usize, 0, 0, 0) };
        }
    }
}
