//! End-to-end tests of the `prospector` binary.

use std::process::Command;

fn prospector(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_prospector"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (stdout, _, ok) = prospector(&[]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}

#[test]
fn query_intro_example() {
    let (stdout, _, ok) = prospector(&["query", "IFile", "ASTNode"]);
    assert!(ok);
    assert!(stdout.contains("1. AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom("));
}

#[test]
fn query_unknown_type_fails_cleanly() {
    let (_, stderr, ok) = prospector(&["query", "NoSuchType", "ASTNode"]);
    assert!(!ok);
    assert!(stderr.contains("unknown type"));
}

#[test]
fn assist_reports_void_route() {
    let (stdout, _, ok) =
        prospector(&["assist", "DocumentProviderRegistry", "--var", "ep:IEditorPart"]);
    assert!(ok);
    assert!(stdout.contains("DocumentProviderRegistry.getDefault()"));
}

#[test]
fn protected_failure_and_fix() {
    let (stdout, _, ok) = prospector(&["query", "AbstractGraphicalEditPart", "ConnectionLayer"]);
    assert!(ok);
    assert!(stdout.contains("no jungloids found"));

    let (stdout, _, ok) = prospector(&[
        "--include-protected",
        "query",
        "AbstractGraphicalEditPart",
        "ConnectionLayer",
    ]);
    assert!(ok);
    assert!(stdout.contains("(ConnectionLayer)"));
    assert!(stdout.contains(".getLayer("));
}

#[test]
fn mine_lists_generalized_examples() {
    let (stdout, _, ok) = prospector(&["mine"]);
    assert!(ok);
    assert!(stdout.contains("generalized paths spliced into the graph"));
    assert!(stdout.contains("(IStructuredSelection)"));
}

#[test]
fn stats_reports_scale() {
    let (stdout, _, ok) = prospector(&["stats"]);
    assert!(ok);
    assert!(stdout.contains("graph edges:"));
    assert!(stdout.contains("methods:"));
    // stats always carries the pipeline timing block.
    assert!(stdout.contains("--- metrics ---"));
    assert!(stdout.contains("build"));
}

#[test]
fn metrics_flag_prints_registry() {
    let (stdout, _, ok) = prospector(&["--metrics", "query", "IFile", "ASTNode"]);
    assert!(ok);
    assert!(stdout.contains("--- metrics ---"));
    assert!(stdout.contains("search.dfs_expansions"));
    assert!(stdout.contains("graph.nodes"));
}

#[test]
fn metrics_json_reports_pipeline() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) =
        prospector(&["--metrics-json", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok, "stderr: {stderr}");

    let text = std::fs::read_to_string(&path).unwrap();
    let doc = prospector_obs::Json::parse(&text).expect("valid JSON");

    // All six canonical stages are present (zeroed or not), and the ones
    // a mining query actually exercises carry nonzero wall time.
    let stages = doc.get("stages").unwrap();
    for name in prospector_obs::report::PIPELINE_STAGES {
        let stage = stages.get(name).unwrap_or_else(|| panic!("stage `{name}` missing"));
        assert!(stage.get("total_ns").unwrap().as_u64().is_some());
    }
    for name in ["build", "mine", "generalize", "search"] {
        let total = stages.get(name).unwrap().get("total_ns").unwrap().as_u64().unwrap();
        assert!(total > 0, "stage `{name}` should have recorded time");
    }

    let counters = doc.get("counters").unwrap();
    for name in [
        "search.dfs_expansions",
        "search.paths_enumerated",
        "graph.examples_spliced",
        "mine.cast_sites",
        "engine.dist_cache.misses",
        "rank.comparisons",
        "synth.snippets",
    ] {
        let v = counters.get(name).unwrap_or_else(|| panic!("counter `{name}` missing"));
        assert!(v.as_u64().unwrap() > 0, "counter `{name}` should be nonzero");
    }

    let gauges = doc.get("gauges").unwrap();
    assert!(gauges.get("graph.nodes").unwrap().as_u64().unwrap() > 0);
    assert!(gauges.get("graph.edges").unwrap().as_u64().unwrap() > 0);
    assert!(gauges.get("engine.dist_cache.entries").unwrap().as_u64().unwrap() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn query_reports_truncation_reason() {
    // --jungle inflates the graph enough that the default caps trip.
    let (stdout, _, ok) =
        prospector(&["--jungle", "--max", "1", "query", "IWorkbench", "IEditorPart"]);
    assert!(ok);
    if stdout.contains("note: enumeration truncated") {
        assert!(stdout.contains("path_cap") || stdout.contains("expansion_cap"), "{stdout}");
    }
}

#[test]
fn complete_infers_context_from_file() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("user.mj");
    std::fs::write(
        &path,
        r"
        package myplugin;
        class Action {
            void run(IWorkbench workbench, IFile selectedFile) {
                ASTNode ast;
            }
        }
        ",
    )
    .unwrap();
    let (stdout, stderr, ok) =
        prospector(&["complete", path.to_str().unwrap(), "run", "ast"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("createCompilationUnitFrom(selectedFile)"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_round_trip() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.idx");
    let path_str = path.to_str().unwrap();
    let (stdout, _, ok) = prospector(&["index", path_str]);
    assert!(ok);
    assert!(stdout.contains("wrote"));
    // Loading the index answers identically to a fresh build.
    let (loaded, _, ok) = prospector(&["--index", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok);
    let (fresh, _, _) = prospector(&["query", "IFile", "ASTNode"]);
    assert_eq!(loaded, fresh);
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_index_fails_cleanly() {
    let (_, stderr, ok) = prospector(&["--index", "/nonexistent/engine.idx", "query", "IFile", "ASTNode"]);
    assert!(!ok);
    assert!(stderr.contains("/nonexistent/engine.idx"));
}

#[test]
fn unknown_command_fails() {
    let (_, stderr, ok) = prospector(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}
