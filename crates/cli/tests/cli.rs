//! End-to-end tests of the `prospector` binary.

use std::process::Command;

fn prospector(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_prospector"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (stdout, _, ok) = prospector(&[]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}

#[test]
fn query_intro_example() {
    let (stdout, _, ok) = prospector(&["query", "IFile", "ASTNode"]);
    assert!(ok);
    assert!(stdout.contains("1. AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom("));
}

#[test]
fn query_unknown_type_fails_cleanly() {
    let (_, stderr, ok) = prospector(&["query", "NoSuchType", "ASTNode"]);
    assert!(!ok);
    assert!(stderr.contains("unknown type"));
}

#[test]
fn assist_reports_void_route() {
    let (stdout, _, ok) =
        prospector(&["assist", "DocumentProviderRegistry", "--var", "ep:IEditorPart"]);
    assert!(ok);
    assert!(stdout.contains("DocumentProviderRegistry.getDefault()"));
}

#[test]
fn protected_failure_and_fix() {
    let (stdout, _, ok) = prospector(&["query", "AbstractGraphicalEditPart", "ConnectionLayer"]);
    assert!(ok);
    assert!(stdout.contains("no jungloids found"));

    let (stdout, _, ok) = prospector(&[
        "--include-protected",
        "query",
        "AbstractGraphicalEditPart",
        "ConnectionLayer",
    ]);
    assert!(ok);
    assert!(stdout.contains("(ConnectionLayer)"));
    assert!(stdout.contains(".getLayer("));
}

#[test]
fn mine_lists_generalized_examples() {
    let (stdout, _, ok) = prospector(&["mine"]);
    assert!(ok);
    assert!(stdout.contains("generalized paths spliced into the graph"));
    assert!(stdout.contains("(IStructuredSelection)"));
}

#[test]
fn stats_reports_scale() {
    let (stdout, _, ok) = prospector(&["stats"]);
    assert!(ok);
    assert!(stdout.contains("graph edges:"));
    assert!(stdout.contains("methods:"));
    // stats always carries the pipeline timing block.
    assert!(stdout.contains("--- metrics ---"));
    assert!(stdout.contains("build"));
}

#[test]
fn metrics_flag_prints_registry() {
    let (stdout, _, ok) = prospector(&["--metrics", "query", "IFile", "ASTNode"]);
    assert!(ok);
    assert!(stdout.contains("--- metrics ---"));
    assert!(stdout.contains("search.dfs_expansions"));
    assert!(stdout.contains("graph.nodes"));
}

#[test]
fn metrics_json_reports_pipeline() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) =
        prospector(&["--metrics-json", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok, "stderr: {stderr}");

    let text = std::fs::read_to_string(&path).unwrap();
    let doc = prospector_obs::Json::parse(&text).expect("valid JSON");

    // All six canonical stages are present (zeroed or not), and the ones
    // a mining query actually exercises carry nonzero wall time.
    let stages = doc.get("stages").unwrap();
    for name in prospector_obs::report::PIPELINE_STAGES {
        let stage = stages.get(name).unwrap_or_else(|| panic!("stage `{name}` missing"));
        assert!(stage.get("total_ns").unwrap().as_u64().is_some());
    }
    for name in ["build", "mine", "generalize", "search"] {
        let total = stages.get(name).unwrap().get("total_ns").unwrap().as_u64().unwrap();
        assert!(total > 0, "stage `{name}` should have recorded time");
    }

    let counters = doc.get("counters").unwrap();
    for name in [
        "search.dfs_expansions",
        "search.paths_enumerated",
        "graph.examples_spliced",
        "mine.cast_sites",
        "engine.dist_cache.misses",
        "rank.comparisons",
        "synth.snippets",
    ] {
        let v = counters.get(name).unwrap_or_else(|| panic!("counter `{name}` missing"));
        assert!(v.as_u64().unwrap() > 0, "counter `{name}` should be nonzero");
    }

    let gauges = doc.get("gauges").unwrap();
    assert!(gauges.get("graph.nodes").unwrap().as_u64().unwrap() > 0);
    assert!(gauges.get("graph.edges").unwrap().as_u64().unwrap() > 0);
    assert!(gauges.get("engine.dist_cache.entries").unwrap().as_u64().unwrap() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn query_reports_truncation_reason() {
    // --jungle inflates the graph enough that the default caps trip.
    let (stdout, _, ok) =
        prospector(&["--jungle", "--max", "1", "query", "IWorkbench", "IEditorPart"]);
    assert!(ok);
    if stdout.contains("note: enumeration truncated") {
        assert!(stdout.contains("path_cap") || stdout.contains("expansion_cap"), "{stdout}");
    }
}

#[test]
fn query_batch_emits_json_lines_and_aggregate() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batch.txt");
    std::fs::write(
        &path,
        "# explicit queries, one pair per line\n\
         IFile ASTNode\n\
         \n\
         InputStream BufferedReader\n\
         IWorkbench IEditorPart\n",
    )
    .unwrap();
    let (stdout, stderr, ok) =
        prospector(&["--max", "2", "query", "--batch", path.to_str().unwrap(), "--threads", "2"]);
    assert!(ok, "stderr: {stderr}");

    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "3 queries + 1 aggregate:\n{stdout}");

    // Per-query lines are valid JSON, in input order, with the paper's
    // first example ranked on top and every truncation field populated.
    let first = prospector_obs::Json::parse(lines[0]).expect("valid JSON");
    assert_eq!(first.get("tin").unwrap().as_str(), Some("IFile"));
    assert_eq!(first.get("tout").unwrap().as_str(), Some("ASTNode"));
    assert_eq!(
        (lines[1].contains("\"tin\":\"InputStream\""), lines[2].contains("\"tin\":\"IWorkbench\"")),
        (true, true),
        "input order preserved:\n{stdout}"
    );
    assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));
    let top = first.get("suggestions").unwrap().as_arr().unwrap()[0].as_str().unwrap();
    assert!(top.starts_with("AST.parseCompilationUnit("), "{top}");
    let mut trace_ids = Vec::new();
    for line in &lines[..3] {
        let q = prospector_obs::Json::parse(line).expect("valid JSON");
        let label = q.get("truncation").unwrap().as_str().unwrap();
        assert!(["none", "path_cap", "expansion_cap"].contains(&label), "{label}");
        assert!(q.get("time_us").unwrap().as_u64().is_some());
        // Every line carries its flight-recorder id and the per-query
        // cache split (correlatable with the global engine.dist_cache.*).
        trace_ids.push(q.get("trace_id").unwrap().as_u64().unwrap());
        let hits = q.get("dist_cache_hits").unwrap().as_u64().unwrap();
        let misses = q.get("dist_cache_misses").unwrap().as_u64().unwrap();
        assert_eq!(hits + misses, 1, "each query does exactly one distance lookup");
        assert!(q.get("dfs_expansions").unwrap().as_u64().is_some());
    }
    assert!(trace_ids.windows(2).all(|w| w[0] < w[1]), "input-ordered ids: {trace_ids:?}");

    let agg = prospector_obs::Json::parse(lines[3]).expect("valid JSON");
    let batch = agg.get("batch").unwrap();
    assert_eq!(batch.get("queries").unwrap().as_u64(), Some(3));
    assert_eq!(batch.get("errors").unwrap().as_u64(), Some(0));
    assert_eq!(batch.get("threads").unwrap().as_u64(), Some(2));
    assert!(batch.get("qps").unwrap().as_f64().unwrap() > 0.0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn query_batch_reports_bad_lines_with_numbers() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batch-bad.txt");
    std::fs::write(&path, "IFile ASTNode\nNoSuchType ASTNode\n").unwrap();
    let (_, stderr, ok) = prospector(&["query", "--batch", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains(":2:"), "line number in error: {stderr}");
    assert!(stderr.contains("unknown type"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

/// Rebuilds a Chrome-trace document with its wall-clock fields (`ts`,
/// `dur`) zeroed, leaving names, phases, counter args, pids, and trace
/// ids — everything that must be deterministic — intact.
fn zero_chrome_clocks(doc: &prospector_obs::Json) -> prospector_obs::Json {
    use prospector_obs::Json;
    let events = doc.as_arr().expect("chrome trace is a JSON array");
    Json::Arr(
        events
            .iter()
            .map(|event| {
                let pairs = event.as_obj().expect("chrome event is an object");
                Json::obj(
                    pairs
                        .iter()
                        .map(|(key, value)| {
                            if key == "ts" || key == "dur" {
                                (key.as_str(), Json::num_u(0))
                            } else {
                                (key.as_str(), value.clone())
                            }
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

#[test]
fn same_seed_batch_runs_are_trace_deterministic() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let batch = dir.join("batch-determinism.txt");
    std::fs::write(&batch, "IFile ASTNode\nInputStream BufferedReader\nIFile ASTNode\n").unwrap();

    let run = |trace_path: &std::path::Path| -> (Vec<u64>, String) {
        let (stdout, stderr, ok) = prospector(&[
            "--seed",
            "42",
            "--trace-json",
            trace_path.to_str().unwrap(),
            "query",
            "--batch",
            batch.to_str().unwrap(),
            "--threads",
            "2",
        ]);
        assert!(ok, "stderr: {stderr}");
        let ids: Vec<u64> = stdout
            .lines()
            .filter(|l| l.contains("\"trace_id\""))
            .map(|l| {
                let q = prospector_obs::Json::parse(l).expect("valid JSON");
                q.get("trace_id").unwrap().as_u64().unwrap()
            })
            .collect();
        let chrome = std::fs::read_to_string(trace_path).unwrap();
        let doc = prospector_obs::Json::parse(&chrome).expect("valid chrome trace");
        (ids, zero_chrome_clocks(&doc).to_text())
    };

    let first_path = dir.join("trace-a.json");
    let second_path = dir.join("trace-b.json");
    let (ids_a, chrome_a) = run(&first_path);
    let (ids_b, chrome_b) = run(&second_path);

    assert_eq!(ids_a.len(), 3);
    assert_eq!(ids_a, ids_b, "same seed must allocate the same trace ids");
    assert!(!chrome_a.is_empty() && chrome_a != "[]", "trace captured events");
    assert_eq!(chrome_a, chrome_b, "chrome traces identical modulo ts/dur");

    std::fs::remove_file(&batch).ok();
    std::fs::remove_file(&first_path).ok();
    std::fs::remove_file(&second_path).ok();
}

#[test]
fn explain_replays_recorded_timeline() {
    let (stdout, stderr, ok) = prospector(&["explain", "IFile", "ASTNode"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("recorded timeline (trace "), "{stdout}");
    assert!(stdout.contains("search.dfs_expansions"), "{stdout}");
    assert!(stdout.contains("query.total"), "{stdout}");
}

#[test]
fn complete_infers_context_from_file() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("user.mj");
    std::fs::write(
        &path,
        r"
        package myplugin;
        class Action {
            void run(IWorkbench workbench, IFile selectedFile) {
                ASTNode ast;
            }
        }
        ",
    )
    .unwrap();
    let (stdout, stderr, ok) =
        prospector(&["complete", path.to_str().unwrap(), "run", "ast"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("createCompilationUnitFrom(selectedFile)"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_round_trip() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.idx");
    let path_str = path.to_str().unwrap();
    let (stdout, _, ok) = prospector(&["index", path_str]);
    assert!(ok);
    assert!(stdout.contains("wrote"));
    // Loading the index answers identically to a fresh build.
    let (loaded, _, ok) = prospector(&["--index", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok);
    let (fresh, _, _) = prospector(&["query", "IFile", "ASTNode"]);
    assert_eq!(loaded, fresh);
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_index_build_inspect_and_query() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.pspk");
    let path_str = path.to_str().unwrap();

    let (stdout, stderr, ok) = prospector(&["index", "build", "-o", path_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("wrote"), "{stdout}");
    assert!(stdout.contains("snapshot format v2"), "{stdout}");
    assert!(stdout.contains("padding overhead:"), "{stdout}");
    for section in ["strings", "types", "members", "graph", "csr", "examples", "suffixes"] {
        assert!(stdout.contains(section), "section `{section}` missing from:\n{stdout}");
    }
    // The file is the binary format, not JSON.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..4], b"PSPK");

    let (stdout, stderr, ok) = prospector(&["index", "inspect", path_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("prospector snapshot, format v2"), "{stdout}");
    assert!(stdout.contains("crc32"), "{stdout}");
    assert!(stdout.contains("mined examples:"), "{stdout}");
    // Every v2 payload is 8-byte aligned, so nothing is flagged.
    assert!(!stdout.contains("UNALIGNED"), "{stdout}");

    let (stdout, stderr, ok) = prospector(&["index", "inspect", path_str, "--layout"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("layout:"), "{stdout}");
    assert!(stdout.contains("csr payload"), "{stdout}");

    // Warm-started answers are identical to a fresh build's.
    let (loaded, stderr, ok) = prospector(&["--index", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok, "stderr: {stderr}");
    let (fresh, _, _) = prospector(&["query", "IFile", "ASTNode"]);
    assert_eq!(loaded, fresh);
    std::fs::remove_file(&path).ok();
}

#[test]
fn index_build_can_downgrade_to_v1() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine-v1.pspk");
    let path_str = path.to_str().unwrap();

    let (stdout, stderr, ok) =
        prospector(&["index", "build", "--format", "v1", "-o", path_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("snapshot format v1"), "{stdout}");

    // v1 payloads are unpadded, so most land off the 8-byte grid and
    // inspect flags them — the report that motivates upgrading to v2.
    let (stdout, stderr, ok) = prospector(&["index", "inspect", path_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("prospector snapshot, format v1"), "{stdout}");
    assert!(stdout.contains("UNALIGNED"), "{stdout}");

    // The v1 file still warm-starts an identical engine.
    let (loaded, stderr, ok) = prospector(&["--index", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok, "stderr: {stderr}");
    let (fresh, _, _) = prospector(&["query", "IFile", "ASTNode"]);
    assert_eq!(loaded, fresh);
    std::fs::remove_file(&path).ok();
}

#[test]
fn json_debug_index_still_round_trips() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine-debug.json");
    let path_str = path.to_str().unwrap();
    let (stdout, stderr, ok) = prospector(&["index", "build", "--json", "-o", path_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("JSON debug format"), "{stdout}");
    assert!(std::fs::read_to_string(&path).unwrap().starts_with('{'));

    let (stdout, stderr, ok) = prospector(&["index", "inspect", path_str]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("JSON debug index"), "{stdout}");

    let (loaded, stderr, ok) = prospector(&["--index", path_str, "query", "IFile", "ASTNode"]);
    assert!(ok, "stderr: {stderr}");
    let (fresh, _, _) = prospector(&["query", "IFile", "ASTNode"]);
    assert_eq!(loaded, fresh);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_binary_index_fails_with_a_typed_message() {
    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine-corrupt.pspk");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = prospector(&["index", "build", "-o", path_str]);
    assert!(ok, "stderr: {stderr}");

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    let (_, stderr, ok) = prospector(&["--index", path_str, "query", "IFile", "ASTNode"]);
    assert!(!ok);
    assert!(stderr.contains("corrupt"), "typed corruption message expected: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_warm_start_records_store_stage_and_no_build_stages() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = std::env::temp_dir().join("prospector-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine-warm.pspk");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = prospector(&["index", "build", "-o", path_str]);
    assert!(ok, "stderr: {stderr}");

    let mut child = Command::new(env!("CARGO_BIN_EXE_prospector"))
        .args(["--index", path_str, "serve", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve prints its address").expect("readable");
        if let Some(rest) = line.strip_prefix("serving on http://") {
            break rest.trim().to_owned();
        }
    };

    let get = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response.split_once("\r\n\r\n").expect("body").1.to_owned()
    };

    assert_eq!(get("/healthz"), "ok\n");
    let body = get("/query?tin=IFile&tout=ASTNode");
    assert!(body.contains("AST.parseCompilationUnit("), "{body}");

    // The acceptance bar for warm starting: the pipeline record shows the
    // snapshot load and *zero* graph-build or mining work at startup.
    let metrics = get("/metrics");
    assert!(metrics.contains("stage=\"store\""), "store stage missing:\n{metrics}");
    for cold_stage in ["stage=\"build\"", "stage=\"mine\"", "stage=\"generalize\""] {
        assert!(
            !metrics.contains(cold_stage),
            "warm start must not run {cold_stage}:\n{metrics}"
        );
    }
    assert!(metrics.contains("prospector_store_loads_total"), "{metrics}");

    child.kill().expect("stop server");
    child.wait().expect("reap server");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_index_fails_cleanly() {
    let (_, stderr, ok) = prospector(&["--index", "/nonexistent/engine.idx", "query", "IFile", "ASTNode"]);
    assert!(!ok);
    assert!(stderr.contains("/nonexistent/engine.idx"));
}

#[test]
fn unknown_command_fails() {
    let (_, stderr, ok) = prospector(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}
