//! Multi-tenant registry behaviour over live HTTP: strict-JSON 400 for
//! an unknown `?tenant=`, the admin endpoints (`GET /tenants`,
//! `POST /tenants`, `POST /reload`), per-tenant metric labels, and the
//! reload-under-fire guarantee — clients hammering `/query` across
//! repeated hot reloads never see a non-200 and always get the same
//! suggestions, while every retired engine is actually dropped.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use prospector_cli::serve::{ServeOptions, Server};
use prospector_corpora::{build, BuildOptions};
use prospector_obs::Json;
use prospector_registry::{load_engine, Provenance, Registry, DEFAULT_TENANT};

fn opts() -> ServeOptions {
    ServeOptions { max: 5, mmap: false, ..ServeOptions::default() }
}

/// Issues one `GET` on a fresh connection and returns `(status_line, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

/// Issues one body-less `POST` and returns `(status_line, body)`.
fn http_post(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    http_request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        ),
    )
}

fn http_request(addr: std::net::SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().expect("status line").to_owned();
    (status, body.to_owned())
}

/// Builds the bundled corpus once and saves it as a v2 `.pspk` under the
/// temp dir, returning the path (unique per test to allow parallelism).
fn save_snapshot(tag: &str) -> std::path::PathBuf {
    let built = build(&BuildOptions::default()).expect("corpus builds");
    let mined = built.mine_report.map(|r| r.examples).unwrap_or_default();
    let path = std::env::temp_dir()
        .join(format!("prospector_reload_{tag}_{}.pspk", std::process::id()));
    prospector_store::save_file(&path, built.prospector.api(), built.prospector.graph(), &mined)
        .expect("snapshot saves");
    path
}

#[test]
fn unknown_tenant_is_a_strict_json_400() {
    let engine = build(&BuildOptions::default()).expect("corpus builds").prospector;
    let registry = Registry::with_default(engine, Provenance::built());
    let server = Server::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // A failed assertion must still flip the shutdown flag, or the
        // scope would join the serving thread forever.
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {

        // Every engine endpoint rejects an unknown tenant the same way:
        // HTTP 400 with a strict-JSON `{ok:false, error}` body — never a
        // silent fallback to the default tenant.
        for path in [
            "/query?tenant=nope&tin=IFile&tout=ASTNode",
            "/assist?tenant=nope&tout=ASTNode",
            "/heat?tenant=nope",
            "/analytics?tenant=nope",
        ] {
            let (status, body) = http_get(addr, path);
            assert!(status.contains("400"), "{path}: {status}");
            let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{path}: not strict JSON ({e}): {body}"));
            assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false), "{path}");
            let error = doc.get("error").unwrap().as_str().unwrap();
            assert!(error.contains("unknown tenant `nope`"), "{path}: {error}");
        }

        // A malformed name can never have been registered (insertion
        // validates `[A-Za-z0-9_.-]`), so it resolves as unknown: 400.
        let (status, body) = http_get(addr, "/query?tenant=bad/name&tin=IFile&tout=ASTNode");
        assert!(status.contains("400"), "{status}");
        let doc = Json::parse(&body).expect("strict JSON");
        assert!(doc.get("error").unwrap().as_str().unwrap().contains("unknown tenant `bad/name`"));

        // Reloading the built-in-process default is a 400 (no snapshot),
        // not a 500 — and the tenant keeps serving afterwards.
        let (status, body) = http_post(addr, "/reload");
        assert!(status.contains("400"), "{status}: {body}");
        let doc = Json::parse(&body).expect("strict JSON");
        assert!(doc.get("error").unwrap().as_str().unwrap().contains("no snapshot to reload"));
        let (status, _) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "default tenant still serves: {status}");

        }));

        shutdown.store(true, Ordering::SeqCst);
        let outcome = worker.join().expect("server thread exits cleanly");
        assert_eq!(outcome, Ok(()));
        if let Err(panic) = verdict {
            std::panic::resume_unwind(panic);
        }
    });
}

#[test]
fn tenants_admin_endpoints_and_labeled_metrics() {
    let snapshot = save_snapshot("admin");
    let engine = build(&BuildOptions::default()).expect("corpus builds").prospector;
    let registry = Registry::with_default(engine, Provenance::built());
    let server = Server::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // A failed assertion must still flip the shutdown flag, or the
        // scope would join the serving thread forever.
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {

        // Attach a second tenant at runtime from the snapshot.
        let (status, body) =
            http_post(addr, &format!("/tenants?name=alt&path={}", snapshot.display()));
        assert!(status.contains("200"), "{status}: {body}");
        let doc = Json::parse(&body).expect("strict JSON");
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        let info = doc.get("tenant").unwrap();
        assert_eq!(info.get("name").unwrap().as_str(), Some("alt"));
        assert_eq!(info.get("state").unwrap().as_str(), Some("ready"));
        assert_eq!(info.get("format_version").unwrap().as_u64(), Some(2));
        assert_eq!(info.get("mode").unwrap().as_str(), Some("owned"));

        // Adding the same name twice is a 400, not a replace.
        let (status, body) =
            http_post(addr, &format!("/tenants?name=alt&path={}", snapshot.display()));
        assert!(status.contains("400"), "{status}");
        let doc = Json::parse(&body).expect("strict JSON");
        assert!(doc.get("error").unwrap().as_str().unwrap().contains("already exists"));

        // The manifest lists both tenants with their provenance.
        let (status, body) = http_get(addr, "/tenants");
        assert!(status.contains("200"), "{status}");
        let doc = Json::parse(&body).expect("strict JSON");
        assert_eq!(doc.get("count").unwrap().as_u64(), Some(2));
        assert!(doc.get("engine_bytes_total").unwrap().as_u64().unwrap() > 0);
        let rows = doc.get("tenants").unwrap().as_arr().unwrap();
        let names: Vec<&str> =
            rows.iter().map(|r| r.get("name").unwrap().as_str().unwrap()).collect();
        assert_eq!(names, vec!["alt", DEFAULT_TENANT], "sorted by name");
        for row in rows {
            for key in [
                "name", "state", "snapshot_path", "format_version", "mode", "graph_epoch",
                "engine_bytes", "loaded_at_ms", "load_us", "reloads", "reload_failures",
                "queries",
            ] {
                assert!(row.get(key).is_some(), "manifest row missing {key}");
            }
        }

        // Same question to both tenants: same corpus, same suggestions —
        // and the default-tenant URL needs no `?tenant=` at all.
        let (status, base) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}");
        let (status, alt) = http_get(addr, "/query?tenant=alt&tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}: {alt}");
        let base = Json::parse(&base).expect("strict JSON");
        let alt = Json::parse(&alt).expect("strict JSON");
        assert_eq!(
            base.get("suggestions").unwrap().to_text(),
            alt.get("suggestions").unwrap().to_text(),
            "both tenants answer from the same corpus"
        );

        // A hot reload succeeds, bumps the reload counter, and installs a
        // fresh graph epoch (epochs are distinct per construction).
        let (_, before) = http_get(addr, "/tenants");
        let before = Json::parse(&before).expect("strict JSON");
        let old_epoch = before.get("tenants").unwrap().as_arr().unwrap()[0]
            .get("graph_epoch")
            .unwrap()
            .as_u64()
            .unwrap();
        let (status, body) = http_post(addr, "/reload?tenant=alt");
        assert!(status.contains("200"), "{status}: {body}");
        let doc = Json::parse(&body).expect("strict JSON");
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        let info = doc.get("tenant").unwrap();
        assert_eq!(info.get("reloads").unwrap().as_u64(), Some(1));
        assert_eq!(info.get("state").unwrap().as_str(), Some("ready"));
        let new_epoch = info.get("graph_epoch").unwrap().as_u64().unwrap();
        assert_ne!(new_epoch, old_epoch, "reload installs a fresh graph state");
        let (status, after) = http_get(addr, "/query?tenant=alt&tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}");
        let after = Json::parse(&after).expect("strict JSON");
        assert_eq!(
            base.get("suggestions").unwrap().to_text(),
            after.get("suggestions").unwrap().to_text(),
            "a reload from the same snapshot changes nothing observable"
        );

        // The exposition includes per-tenant labeled series for both.
        let (status, metrics) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        for series in [
            "prospector_engine_queries_total{tenant=\"alt\"}",
            "prospector_engine_queries_total{tenant=\"default\"}",
            "prospector_engine_graph_epoch{tenant=\"alt\"}",
            "prospector_registry_reloads_total{tenant=\"alt\"} 1",
            "prospector_tenant_state{tenant=\"alt\",state=\"ready\"} 1",
        ] {
            assert!(metrics.contains(series), "missing series: {series}");
        }

        // The access log carries the tenant each request routed to.
        let (_, body) = http_get(addr, "/logs?n=50");
        let records = Json::parse(&body).expect("strict JSON").as_arr().unwrap().to_vec();
        assert!(
            records.iter().any(|r| r.get("tenant").unwrap().as_str() == Some("alt")),
            "an access record carries tenant=alt"
        );

        }));

        shutdown.store(true, Ordering::SeqCst);
        let outcome = worker.join().expect("server thread exits cleanly");
        assert_eq!(outcome, Ok(()));
        if let Err(panic) = verdict {
            std::panic::resume_unwind(panic);
        }
    });
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn reload_under_fire_drops_no_query_and_no_engine() {
    let snapshot = save_snapshot("fire");
    // The default tenant itself comes from the snapshot, so `/reload`
    // (no `?tenant=`) exercises the hot path on the tenant under load.
    let (engine, provenance) =
        load_engine(snapshot.to_str().expect("utf-8 temp path"), false).expect("snapshot loads");
    let registry = Registry::with_default(engine, provenance);
    let server = Server::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    // A weak handle onto the engine serving right now: after the reloads
    // below retire it and every in-flight query finishes, the only thing
    // keeping it alive would be a leak.
    let first_engine = registry.get(DEFAULT_TENANT).expect("default exists").engine();
    let weak_first = Arc::downgrade(&first_engine);
    drop(first_engine);

    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 25;
    const RELOADS: usize = 6;

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // A failed assertion must still flip the shutdown flag, or the
        // scope would join the serving thread forever.
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {

        let (status, baseline) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}");
        let baseline = Json::parse(&baseline).expect("strict JSON");
        let expected = baseline.get("suggestions").unwrap().to_text();

        // N clients hammer `/query` while the main thread reloads the
        // tenant repeatedly. Every response must be a 200 with exactly
        // the baseline suggestions: a reload from the same snapshot is
        // invisible to readers, and an in-flight query finishes on the
        // engine it started with.
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let expected = expected.clone();
                scope.spawn(move || {
                    for _ in 0..QUERIES_PER_CLIENT {
                        let (status, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
                        assert!(status.contains("200"), "under reload: {status}: {body}");
                        let doc = Json::parse(&body).expect("strict JSON under reload");
                        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
                        assert_eq!(
                            doc.get("suggestions").unwrap().to_text(),
                            expected,
                            "suggestions drifted across a reload"
                        );
                    }
                })
            })
            .collect();

        for _ in 0..RELOADS {
            let (status, body) = http_post(addr, "/reload");
            assert!(status.contains("200"), "reload under fire: {status}: {body}");
            let doc = Json::parse(&body).expect("strict JSON");
            assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        }

        for client in clients {
            client.join().expect("client saw only 200s");
        }

        let (_, body) = http_get(addr, "/tenants");
        let doc = Json::parse(&body).expect("strict JSON");
        let row = &doc.get("tenants").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("reloads").unwrap().as_u64(), Some(RELOADS as u64));
        assert_eq!(row.get("reload_failures").unwrap().as_u64(), Some(0));
        assert_eq!(row.get("state").unwrap().as_str(), Some("ready"));

        }));

        shutdown.store(true, Ordering::SeqCst);
        let outcome = worker.join().expect("server thread exits cleanly");
        assert_eq!(outcome, Ok(()));
        if let Err(panic) = verdict {
            std::panic::resume_unwind(panic);
        }
    });

    // All clients joined and the server loop exited: nothing in-flight.
    // The engine the test started with must be gone — the swap retires
    // old engines instead of accumulating them.
    assert!(
        weak_first.upgrade().is_none(),
        "the pre-reload engine is still alive: a reload leaked an Arc"
    );
    let _ = std::fs::remove_file(&snapshot);
}
