//! End-to-end tests of the epoll readiness serve core: a parked herd of
//! keep-alive connections on a tiny worker pool, admission-control
//! shedding under saturation, and the framer's strict rejections over a
//! real socket. Linux/x86_64 only — elsewhere the serve core falls back
//! to the pool loop, which `tests/serve.rs` already covers.
#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use prospector_cli::serve::{ServeOptions, Server};
use prospector_corpora::{build, BuildOptions};
use prospector_obs::Json;
use prospector_registry::{Provenance, Registry};

fn opts() -> ServeOptions {
    ServeOptions { max: 5, mmap: false, ..ServeOptions::default() }
}

fn default_registry() -> Registry {
    let engine = build(&BuildOptions::default()).expect("corpus builds").prospector;
    Registry::with_default(engine, Provenance::built())
}

/// Reads exactly one framed response off a keep-alive stream:
/// `(status_line, headers, body)`. Relies on the server always sending
/// `Content-Length` (it does — the serializer emits it on every path).
fn read_one_response(stream: &mut TcpStream) -> (String, String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed mid-response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end - 4].to_vec()).expect("ascii head");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    while buf.len() < head_end + length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-response body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end..head_end + length].to_vec()).expect("utf8 body");
    let status = head.lines().next().expect("status line").to_owned();
    (status, head, body)
}

/// Sends one keep-alive `GET` on an already-open stream and reads the
/// response.
fn keepalive_get(stream: &mut TcpStream, path: &str) -> (String, String, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
    stream.write_all(raw.as_bytes()).expect("send request");
    read_one_response(stream)
}

/// One-shot `GET` on a fresh `Connection: close` stream.
fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream.write_all(raw.as_bytes()).expect("send request");
    read_one_response(&mut stream)
}

/// The headline scenario: 64 keep-alive connections park in the poller
/// while only 2 workers exist, and both parked and fresh traffic keep
/// making progress. The thread-per-connection model would have wedged at
/// connection 3.
#[test]
fn parked_keepalive_herd_on_two_workers() {
    let registry = default_registry();
    let mut server = Server::bind("127.0.0.1:0").expect("bind port 0");
    server.set_workers(2);
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // Park a herd: every connection serves one request, then sits
        // idle in the poller holding its socket open.
        let mut herd: Vec<TcpStream> = (0..64)
            .map(|i| {
                let mut stream = TcpStream::connect(addr).expect("connect herd member");
                let (status, head, body) = keepalive_get(&mut stream, "/healthz");
                assert!(status.contains("200"), "herd {i}: {status}");
                assert!(head.contains("Connection: keep-alive"), "herd {i} parked: {head}");
                assert_eq!(body, "ok\n");
                stream
            })
            .collect();

        // A 65th, fresh connection still gets a real query answered —
        // the herd occupies zero workers while idle.
        let (status, _, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}: {body}");
        let json = Json::parse(&body).expect("valid query JSON");
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
        let top = json.get("suggestions").unwrap().as_arr().unwrap()[0].as_str().unwrap();
        assert!(top.starts_with("AST.parseCompilationUnit("), "{top}");

        // /status introspects the readiness core: the herd shows up as
        // parked connections and the keep-alive budget is surfaced.
        let (status, _, body) = http_get(addr, "/status");
        assert!(status.contains("200"), "{status}");
        let json = Json::parse(&body).expect("valid status JSON");
        let config = json.get("config").expect("config section");
        assert_eq!(config.get("serve_core").unwrap().as_str(), Some("epoll"));
        assert_eq!(config.get("keepalive_max").unwrap().as_u64(), Some(1000));
        let poller = json.get("poller").expect("poller section");
        assert!(
            poller.get("parked").unwrap().as_u64().unwrap() >= 64,
            "herd should be parked: {body}"
        );

        // Parked connections are still live: re-use ones that already
        // served a request, interleaved, and they answer again.
        for i in [0usize, 31, 63] {
            let (status, _, body) = keepalive_get(&mut herd[i], "/query?tin=IFile&tout=ASTNode");
            assert!(status.contains("200"), "parked conn {i} revived: {status}");
            let json = Json::parse(&body).expect("valid query JSON");
            assert_eq!(json.get("ok").unwrap().as_bool(), Some(true));
        }

        // Clean shutdown with 64 sockets still parked: the poller drops
        // them and every thread joins.
        shutdown.store(true, Ordering::SeqCst);
        serving.join().expect("serve thread").expect("serve loop exits cleanly");
        drop(herd);
    });
}

/// Admission control: with a 1-slot in-flight ceiling and one worker,
/// concurrent clients are shed with `429` + `Retry-After`, the shed
/// counter advances, and every accepted answer is unaffected by the
/// overload (same suggestions as an unloaded reference).
#[test]
fn saturation_sheds_with_retry_after() {
    let registry = default_registry();
    let mut server = Server::bind("127.0.0.1:0").expect("bind port 0");
    server.set_workers(1);
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);
    let options = ServeOptions { max_inflight: 1, ..opts() };

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &options, &shutdown));

        // Unloaded reference answer, captured before any saturation.
        let (status, _, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}: {body}");
        let reference = Json::parse(&body).expect("valid query JSON");
        let reference_suggestions = format!("{:?}", reference.get("suggestions").unwrap());

        let shed = AtomicUsize::new(0);
        let served = AtomicUsize::new(0);
        // Rounds of 16 concurrent clients against the 1-slot ceiling
        // until shedding is observed (in practice: the first round).
        for _round in 0..50 {
            std::thread::scope(|clients| {
                for _ in 0..16 {
                    clients.spawn(|| {
                        let (status, head, body) =
                            http_get(addr, "/query?tin=IFile&tout=ASTNode");
                        if status.contains("429") {
                            assert!(
                                head.lines().any(|l| l.starts_with("Retry-After: ")),
                                "429 without Retry-After: {head}"
                            );
                            let json = Json::parse(&body).expect("shed body is strict JSON");
                            assert_eq!(json.get("ok").unwrap().as_bool(), Some(false));
                            assert_eq!(json.get("shed").unwrap().as_bool(), Some(true));
                            shed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            assert!(status.contains("200"), "{status}: {body}");
                            let json = Json::parse(&body).expect("valid query JSON");
                            assert_eq!(
                                format!("{:?}", json.get("suggestions").unwrap()),
                                reference_suggestions,
                                "overload must not change accepted answers"
                            );
                            served.fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            if shed.load(Ordering::SeqCst) > 0 {
                break;
            }
        }
        let shed = shed.load(Ordering::SeqCst);
        let served = served.load(Ordering::SeqCst);
        assert!(shed > 0, "16-way concurrency never tripped a 1-slot ceiling");
        assert!(served > 0, "saturation must not starve every client");

        // Wait for the poller's counters to drain, then check the
        // telemetry agrees with what the clients observed.
        std::thread::sleep(Duration::from_millis(100));
        let (status, _, body) = http_get(addr, "/status");
        assert!(status.contains("200"), "{status}");
        let json = Json::parse(&body).expect("valid status JSON");
        let poller = json.get("poller").expect("poller section");
        assert!(
            poller.get("shed_total").unwrap().as_u64().unwrap() >= shed as u64,
            "shed counter below client-observed sheds: {body}"
        );
        assert_eq!(json.get("config").unwrap().get("max_inflight").unwrap().as_u64(), Some(1));

        // Counter `serve.shed.total` mangles to `..._shed_total` plus
        // the exposition's `_total` counter suffix.
        let (_, _, body) = http_get(addr, "/metrics");
        let shed_line = body
            .lines()
            .find(|l| l.starts_with("prospector_serve_shed_total_total "))
            .expect("shed counter exported");
        let exported: f64 = shed_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(exported >= shed as f64, "{shed_line}");

        shutdown.store(true, Ordering::SeqCst);
        serving.join().expect("serve thread").expect("serve loop exits cleanly");
    });
}

/// The framer's strictness holds over a real socket: a malformed request
/// line gets a strict-JSON `400` and the connection is closed (never
/// resynchronized), and oversized headers get `431`.
#[test]
fn framer_rejections_over_the_wire() {
    let registry = default_registry();
    let mut server = Server::bind("127.0.0.1:0").expect("bind port 0");
    server.set_workers(1);
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // Garbage request line → 400, strict JSON, connection closed.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"NOT_HTTP garbage here\r\n\r\n").expect("send garbage");
        let (status, head, body) = read_one_response(&mut stream);
        assert!(status.contains("400"), "{status}");
        assert!(head.contains("Connection: close"), "{head}");
        let json = Json::parse(&body).expect("400 body is strict JSON");
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(false));
        let mut rest = String::new();
        stream.read_to_string(&mut rest).expect("drain to EOF");
        assert!(rest.is_empty(), "no bytes after a poisoned connection's 400");

        // Oversized head (> 8 KiB of header bytes) → 431, closed.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let huge = format!(
            "GET /healthz HTTP/1.1\r\nHost: test\r\nX-Padding: {}\r\n\r\n",
            "x".repeat(9 * 1024)
        );
        stream.write_all(huge.as_bytes()).expect("send oversized head");
        let (status, head, body) = read_one_response(&mut stream);
        assert!(status.contains("431"), "{status}");
        assert!(head.contains("Connection: close"), "{head}");
        let json = Json::parse(&body).expect("431 body is strict JSON");
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(false));

        // A well-formed pipelined burst on one connection still works:
        // both responses come back in order on the same socket.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )
            .expect("send pipelined pair");
        let (status, _, body) = read_one_response(&mut stream);
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        let (status, head, body) = read_one_response(&mut stream);
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        assert!(head.contains("Connection: close"), "{head}");

        shutdown.store(true, Ordering::SeqCst);
        serving.join().expect("serve thread").expect("serve loop exits cleanly");
    });
}

/// `--keepalive-max`: the Nth request on one connection is answered with
/// `Connection: close` and the socket drops.
#[test]
fn keepalive_budget_closes_the_connection() {
    let registry = default_registry();
    let mut server = Server::bind("127.0.0.1:0").expect("bind port 0");
    server.set_workers(1);
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);
    let options = ServeOptions { keepalive_max: 3, ..opts() };

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &options, &shutdown));

        let mut stream = TcpStream::connect(addr).expect("connect");
        for i in 0..2 {
            let (status, head, _) = keepalive_get(&mut stream, "/healthz");
            assert!(status.contains("200"), "request {i}: {status}");
            assert!(head.contains("Connection: keep-alive"), "request {i}: {head}");
        }
        let (status, head, _) = keepalive_get(&mut stream, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(head.contains("Connection: close"), "budget exhausted: {head}");
        let mut rest = String::new();
        stream.read_to_string(&mut rest).expect("drain to EOF");
        assert!(rest.is_empty(), "server closes after the budgeted request");

        shutdown.store(true, Ordering::SeqCst);
        serving.join().expect("serve thread").expect("serve loop exits cleanly");
    });
}
