//! End-to-end smoke test of `prospector serve`: bind port 0, issue real
//! `TcpStream` requests, validate the Prometheus exposition strictly,
//! and shut the loop down via the atomic flag (the scope joins every
//! handler, so a clean return proves no thread leaked).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

use prospector_cli::serve::{ServeOptions, Server};
use prospector_corpora::{build, BuildOptions};
use prospector_obs::Json;
use prospector_registry::{Provenance, Registry};

/// The default in-process options every test serves with.
fn opts() -> ServeOptions {
    ServeOptions { max: 5, mmap: false, ..ServeOptions::default() }
}

/// A single-tenant registry around an in-process build — the engine the
/// pre-registry tests served directly.
fn default_registry() -> Registry {
    let engine = build(&BuildOptions::default()).expect("corpus builds").prospector;
    Registry::with_default(engine, Provenance::built())
}

/// Issues one `GET` and returns `(status_line, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

fn http_request(addr: std::net::SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().expect("status line").to_owned();
    (status, body.to_owned())
}

fn is_metric_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

/// Strict exposition-format check: every line is `# HELP`, `# TYPE`, or
/// `name{labels} value` with a well-formed metric name and numeric value.
fn validate_prometheus(body: &str) {
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "comment line is neither HELP nor TYPE: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
        let name = series.split('{').next().unwrap();
        assert!(!name.is_empty(), "empty metric name: {line}");
        for (i, c) in name.chars().enumerate() {
            assert!(is_metric_char(c, i == 0), "bad metric name `{name}` in: {line}");
        }
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "unclosed label set: {line}");
            let labels = &series[open + 1..series.len() - 1];
            for pair in labels.split(',') {
                let (key, val) = pair.split_once('=').unwrap_or_else(|| panic!("bad label `{pair}`: {line}"));
                assert!(key.chars().enumerate().all(|(i, c)| is_metric_char(c, i == 0)), "bad label name: {line}");
                assert!(val.starts_with('"') && val.ends_with('"') && val.len() >= 2, "unquoted label value: {line}");
            }
        }
        assert!(value.parse::<f64>().is_ok(), "non-numeric value `{value}`: {line}");
    }
}

/// For every `_bucket` family: counts are cumulative (nondecreasing in
/// file order), the last bucket is `le="+Inf"`, and it equals `_count`.
fn validate_histogram_buckets(body: &str) {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap();
        if let Some(prefix) = series.split('{').next().unwrap().strip_suffix("_bucket") {
            let le = series
                .split("le=\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .unwrap_or_else(|| panic!("bucket without le label: {line}"))
                .to_owned();
            buckets.entry(prefix.to_owned()).or_default().push((le, value.parse().unwrap()));
        } else if let Some(prefix) = series.strip_suffix("_count") {
            counts.insert(prefix.to_owned(), value.parse().unwrap());
        }
    }
    assert!(!buckets.is_empty(), "no histogram families rendered");
    for (family, series) in &buckets {
        for window in series.windows(2) {
            assert!(
                window[0].1 <= window[1].1,
                "{family}: buckets not cumulative: {series:?}"
            );
        }
        let (last_le, last_count) = series.last().unwrap();
        assert_eq!(last_le, "+Inf", "{family}: final bucket must be +Inf");
        let total = counts
            .get(family)
            .unwrap_or_else(|| panic!("{family}: _bucket without _count"));
        assert_eq!(last_count, total, "{family}: +Inf bucket != _count");
    }
}

#[test]
fn serve_smoke() {
    let registry = default_registry();
    let server = Server::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        // Two identical queries: the first runs the pipeline (a result-
        // cache miss), the second is answered from the result cache —
        // `cached` flips to true and every pipeline cost counter is 0.
        let (status, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        assert!(status.contains("200"), "{status}: {body}");
        let first = Json::parse(&body).expect("valid query JSON");
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));
        assert!(first.get("trace_id").unwrap().as_u64().unwrap() > 0);
        let top = first.get("suggestions").unwrap().as_arr().unwrap()[0].as_str().unwrap();
        assert!(top.starts_with("AST.parseCompilationUnit("), "{top}");
        assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(
            first.get("stats").unwrap().get("dist_cache_misses").unwrap().as_u64(),
            Some(1)
        );
        let (_, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        let second = Json::parse(&body).expect("valid query JSON");
        assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            second.get("stats").unwrap().get("result_cache_hits").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            second.get("stats").unwrap().get("dist_cache_misses").unwrap().as_u64(),
            Some(0),
            "a result-cache hit pays no pipeline cost"
        );
        assert_eq!(
            second.get("suggestions").unwrap().as_arr().unwrap().len(),
            first.get("suggestions").unwrap().as_arr().unwrap().len()
        );
        assert_ne!(
            first.get("trace_id").unwrap().as_u64(),
            second.get("trace_id").unwrap().as_u64()
        );

        let (status, body) = http_get(addr, "/query?tin=NoSuchType&tout=ASTNode");
        assert!(status.contains("400"), "{status}");
        assert_eq!(Json::parse(&body).unwrap().get("ok").unwrap().as_bool(), Some(false));

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        validate_prometheus(&body);
        validate_histogram_buckets(&body);
        for family in [
            "prospector_search_dfs_expansions_total",
            "prospector_search_bfs_relaxations_total",
            "prospector_engine_dist_cache_hits_total",
            "prospector_engine_dist_cache_misses_total",
            "prospector_engine_result_cache_hits_total",
            "prospector_engine_result_cache_misses_total",
            "prospector_engine_result_cache_collapsed_total",
            "prospector_engine_result_cache_invalidations_total",
            "prospector_engine_batch_calls_total",
            "prospector_engine_batch_queries_total",
            "prospector_query_latency_ns_bucket",
            "prospector_query_stage_ns_search_bucket",
            "prospector_stage_count",
        ] {
            assert!(body.contains(family), "missing family `{family}` in:\n{body}");
        }
        // The repeated /query above was served from the result cache, so
        // the scrape shows a nonzero hit counter.
        let hits_line = body
            .lines()
            .find(|l| l.starts_with("prospector_engine_result_cache_hits_total"))
            .expect("result-cache hit series rendered");
        let hits: f64 = hits_line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(hits >= 1.0, "repeated /query must register a cache hit: {hits_line}");

        let (status, body) = http_get(addr, "/trace.json");
        assert!(status.contains("200"), "{status}");
        let chrome = Json::parse(&body).expect("valid chrome trace");
        let events = chrome.as_arr().expect("chrome trace is an array");
        assert!(!events.is_empty(), "the two /query calls recorded events");
        assert!(events.iter().any(|e| e.get("ph").unwrap().as_str() == Some("X")));

        let (status, body) = http_get(addr, "/slow");
        assert!(status.contains("200"), "{status}");
        Json::parse(&body).expect("valid slow-query JSON");

        let (status, _) = http_get(addr, "/nonexistent");
        assert!(status.contains("404"), "{status}");
        let (status, _) = http_request(
            addr,
            "POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        assert!(status.contains("405"), "{status}");

        // Graceful shutdown: flip the flag, the accept loop exits, the
        // scope joins every handler, and run() returns Ok.
        shutdown.store(true, Ordering::Relaxed);
        let outcome = worker.join().expect("serve thread joins");
        assert_eq!(outcome, Ok(()));
    });
}

/// Reads one keep-alive response off the stream: parses the head up to
/// `\r\n\r\n`, then exactly `Content-Length` body bytes — without
/// closing the connection.
fn read_response(stream: &mut TcpStream) -> (String, String) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("read header byte");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("utf8 head");
    let length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    (head, String::from_utf8(body).expect("utf8 body"))
}

/// The worker pool under an explicit `--workers 4`-style configuration:
/// concurrent clients on distinct connections are all answered, one
/// connection can carry several requests (HTTP/1.1 keep-alive), and the
/// pool still drains and joins cleanly on shutdown.
#[test]
fn serve_worker_pool_keepalive_and_concurrent_clients() {
    let registry = default_registry();
    let mut server = Server::bind("127.0.0.1:0").expect("bind port 0");
    server.set_workers(4);
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // Keep-alive: three requests over ONE connection. The first two
        // responses advertise keep-alive; the last asks to close.
        let mut stream = TcpStream::connect(addr).expect("connect");
        for _ in 0..2 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
                .expect("send keep-alive request");
            let (head, body) = read_response(&mut stream);
            assert!(head.contains("200"), "{head}");
            assert!(
                head.to_ascii_lowercase().contains("connection: keep-alive"),
                "server must hold the connection open: {head}"
            );
            assert_eq!(body, "ok\n");
        }
        stream
            .write_all(b"GET /query?tin=IFile&tout=ASTNode HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
            .expect("send final request");
        let (head, body) = read_response(&mut stream);
        assert!(head.contains("200"), "{head}");
        assert!(head.to_ascii_lowercase().contains("connection: close"), "{head}");
        let parsed = Json::parse(&body).expect("valid query JSON");
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
        drop(stream);

        // Concurrency: 8 clients (more than the 4 workers) firing the
        // same query at once; every one must get the full answer.
        std::thread::scope(|clients| {
            for _ in 0..8 {
                clients.spawn(|| {
                    let (status, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
                    assert!(status.contains("200"), "{status}");
                    let parsed = Json::parse(&body).expect("valid query JSON");
                    assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
                    assert!(parsed.get("found").unwrap().as_u64().unwrap() > 0);
                });
            }
        });

        shutdown.store(true, Ordering::Relaxed);
        let outcome = serving.join().expect("serve thread joins");
        assert_eq!(outcome, Ok(()));
    });
}

/// Issues one `GET` and returns the full response head plus body, so
/// callers can assert on headers beyond the status line.
fn http_get_full(addr: std::net::SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.to_owned(), body.to_owned())
}

/// The value of one flat series in a Prometheus exposition body.
fn prom_value(body: &str, series: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(series) && l[series.len()..].starts_with(' '))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
}

/// The SLO observability surface end to end: generated `/query` load
/// moves the rolling windows, `/status` reports it as strict JSON,
/// `/metrics` grows labeled request counters and window gauges, every
/// request leaves exactly one access-log line whose `trace_id` joins
/// against `/trace.json`, `/readyz` reports provenance, `/slow?clear=1`
/// resets the slow log, 404s land on `endpoint="other"`, and 405s carry
/// `Allow: GET`.
#[test]
fn serve_status_logs_and_introspection() {
    let registry = default_registry();
    let server = Server::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        // A failed assertion must still flip the shutdown flag, or the
        // scope would join the serving thread forever.
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {

        // Generated load: 60+ queries (the first per pair runs the
        // pipeline, repeats hit the result cache — both count).
        let pairs = ["IFile&tout=ASTNode", "IWorkspace&tout=IFile", "Shell&tout=Button"];
        for i in 0..63 {
            let (status, body) =
                http_get(addr, &format!("/query?tin={}", pairs[i % pairs.len()]));
            assert!(status.contains("200"), "{status}: {body}");
        }

        // One more query whose trace_id we follow through /logs and
        // /trace.json.
        let (_, body) = http_get(addr, "/query?tin=IFile&tout=ASTNode");
        let followed = Json::parse(&body).expect("valid query JSON");
        let trace_id = followed.get("trace_id").unwrap().as_u64().expect("trace id");

        // An unknown path and a non-GET, for the counter assertions.
        let (status, _) = http_get(addr, "/definitely-not-an-endpoint");
        assert!(status.contains("404"), "{status}");
        let (head, _) = http_get_full(
            addr,
            "POST /query HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        assert!(head.contains("405"), "{head}");
        assert!(
            head.lines().any(|l| l.eq_ignore_ascii_case("allow: GET")),
            "405 must name the allowed method: {head}"
        );

        // /readyz: strict JSON, built in-process (no snapshot).
        let (status, body) = http_get(addr, "/readyz");
        assert!(status.contains("200"), "{status}");
        let ready = Json::parse(&body).expect("readyz is strict JSON");
        assert_eq!(ready.get("ready").unwrap().as_bool(), Some(true));
        assert_eq!(ready.get("warm_start").unwrap().as_bool(), Some(false));
        assert!(
            matches!(ready.get("snapshot_mode"), Some(Json::Null)),
            "in-process build has no snapshot mode: {body}"
        );
        assert!(ready.get("graph_epoch").unwrap().as_u64().is_some());

        // /status: the windows saw the load — nonzero 1m count and p99
        // for the query endpoint, queue waits recorded, pool and cache
        // sections populated.
        let (status, body) = http_get(addr, "/status");
        assert!(status.contains("200"), "{status}");
        let doc = Json::parse(&body).expect("status is strict JSON");
        assert_eq!(doc.get("ready").unwrap().as_bool(), Some(true));
        assert!(doc.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
        let query_ep = doc.get("endpoints").unwrap().get("query").expect("query endpoint");
        assert!(query_ep.get("requests_total").unwrap().as_u64().unwrap() >= 64);
        let one_min = query_ep.get("1m").expect("1m window");
        assert!(
            one_min.get("count").unwrap().as_u64().unwrap() >= 60,
            "the generated load lands in the 1m window: {body}"
        );
        assert!(
            one_min.get("p99_ns").unwrap().as_u64().unwrap() > 0,
            "p99 must be nonzero after 60+ queries"
        );
        assert!(one_min.get("rate").unwrap().as_f64().unwrap() > 0.0);
        // The error rings are process-global and another test in this
        // binary deliberately 400s a /query, so only bound the rate.
        let error_rate = one_min.get("error_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&error_rate), "error rate in [0,1]: {error_rate}");
        let other_ep = doc.get("endpoints").unwrap().get("other").expect("other endpoint");
        assert!(other_ep.get("errors_total").unwrap().as_u64().unwrap() >= 1, "the 404 counted");
        let queue_1m = doc.get("queue_wait").unwrap().get("1m").expect("queue_wait window");
        assert!(
            queue_1m.get("count").unwrap().as_u64().unwrap() >= 60,
            "every popped connection records its queue wait: {body}"
        );
        let pool = doc.get("pool").unwrap();
        assert!(pool.get("workers").unwrap().as_u64().unwrap() >= 1);
        assert!(pool.get("queue_depth").unwrap().as_u64().is_some());
        let cache = doc.get("cache").unwrap().get("result").unwrap();
        assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1, "repeat queries hit");
        let ratio = cache.get("hit_ratio").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&ratio), "hit ratio in [0,1]: {ratio}");
        assert!(doc.get("process").unwrap().get("rss_bytes").unwrap().as_u64().is_some());

        // /metrics: still strictly valid with the labeled request block
        // and window gauges present; the query row saw our load.
        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        validate_prometheus(&body);
        validate_histogram_buckets(&body);
        let query_200 = prom_value(
            &body,
            "prospector_serve_http_requests_total{endpoint=\"query\",code=\"200\"}",
        )
        .expect("labeled query counter rendered");
        assert!(query_200 >= 64.0, "query counter saw the load: {query_200}");
        let other_404 = prom_value(
            &body,
            "prospector_serve_http_requests_total{endpoint=\"other\",code=\"404\"}",
        )
        .expect("labeled other counter rendered");
        assert!(other_404 >= 1.0, "unknown paths count under other: {other_404}");
        let p99 = prom_value(
            &body,
            "prospector_serve_http_latency_ns_query_window{win=\"1m\",q=\"p99\"}",
        )
        .expect("window gauge rendered");
        assert!(p99 > 0.0, "windowed p99 moved under load");
        assert!(
            body.contains("prospector_serve_queue_wait_ns_window{win=\"1m\",q=\"p50\"}"),
            "queue-wait window gauges rendered"
        );

        // /logs: exactly one strict-JSON record per request; the followed
        // query's record carries its flight-recorder trace_id, which
        // joins against a /trace.json event on the same tid.
        let (status, body) = http_get(addr, "/logs?n=500");
        assert!(status.contains("200"), "{status}");
        let logs = Json::parse(&body).expect("logs are strict JSON");
        let records = logs.as_arr().expect("logs is an array");
        assert!(records.len() >= 60, "the load left records: {}", records.len());
        for rec in records {
            for key in
                ["ts_ms", "trace_id", "endpoint", "tenant", "code", "bytes", "queue_wait_us", "handle_us", "cached", "truncation"]
            {
                assert!(rec.get(key).is_some(), "access record missing {key}");
            }
        }
        let matching: Vec<_> = records
            .iter()
            .filter(|r| r.get("trace_id").unwrap().as_u64() == Some(trace_id))
            .collect();
        assert_eq!(matching.len(), 1, "exactly one access-log line per request");
        assert_eq!(matching[0].get("endpoint").unwrap().as_str(), Some("query"));
        assert_eq!(matching[0].get("code").unwrap().as_u64(), Some(200));
        let (_, body) = http_get(addr, "/trace.json");
        let chrome = Json::parse(&body).expect("valid chrome trace");
        assert!(
            chrome
                .as_arr()
                .unwrap()
                .iter()
                .any(|e| e.get("tid").unwrap().as_u64() == Some(trace_id)),
            "the access-log trace_id joins against a flight-recorder track"
        );

        // /slow?clear=1 resets the slow log and reports what it dropped.
        let (status, body) = http_get(addr, "/slow?clear=1");
        assert!(status.contains("200"), "{status}");
        let cleared = Json::parse(&body).expect("clear response is strict JSON");
        assert!(cleared.get("cleared").unwrap().as_u64().is_some());
        let (_, body) = http_get(addr, "/slow");
        assert_eq!(
            Json::parse(&body).unwrap().as_arr().map(<[Json]>::len),
            Some(0),
            "the slow log is empty after clearing"
        );

        }));

        shutdown.store(true, Ordering::Relaxed);
        let outcome = serving.join().expect("serve thread joins");
        assert_eq!(outcome, Ok(()));
        if let Err(panic) = verdict {
            std::panic::resume_unwind(panic);
        }
    });
}

/// The workload-analytics surface: `/heat` reports the hot graph
/// regions as strict JSON, `/analytics` the query sketches and profiler
/// counters, `/profile.folded` renders flamegraph.pl-compatible folded
/// stacks, `/status` carries per-endpoint truncation-reason counts, and
/// `/logs?n=` validates its parameter (400 on garbage, clamp on
/// giants).
///
/// The heat table is process-global and epoch-stamped: the other tests
/// in this binary serve different engines (different graph epochs), so
/// a query of theirs landing between our load and our scrape resets the
/// table. The nonemptiness assertions therefore retry the
/// load-then-scrape cycle; JSON shape is asserted on every attempt.
#[test]
fn serve_heat_analytics_and_profiler() {
    let registry = default_registry();
    let server = Server::bind("127.0.0.1:0").expect("bind port 0");
    let addr = server.local_addr().expect("bound address");
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&registry, &opts(), &shutdown));

        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {

        // /heat: strict JSON with the full shape on every attempt;
        // nonempty top-K once our queries land uncontested.
        let mut heat_doc = None;
        for _ in 0..50 {
            for pair in ["IFile&tout=ASTNode", "IWorkspace&tout=IFile", "Shell&tout=Button"] {
                let (status, body) = http_get(addr, &format!("/query?tin={pair}"));
                assert!(status.contains("200"), "{status}: {body}");
            }
            let (status, body) = http_get(addr, "/heat?k=5");
            assert!(status.contains("200"), "{status}");
            let doc = Json::parse(&body).expect("heat is strict JSON");
            for key in [
                "epoch", "queries", "fields", "nodes_touched", "edges_touched",
                "node_total", "edge_total", "top_types", "top_members", "top_edges",
            ] {
                assert!(doc.get(key).is_some(), "/heat missing {key}: {body}");
            }
            if !doc.get("top_types").unwrap().as_arr().unwrap().is_empty() {
                heat_doc = Some(doc);
                break;
            }
        }
        let heat = heat_doc.expect("/heat top-K populated under repeated load");
        assert!(heat.get("queries").unwrap().as_u64().unwrap() >= 1);
        let types = heat.get("top_types").unwrap().as_arr().unwrap();
        assert!(types.len() <= 5, "k=5 caps the report: {}", types.len());
        for e in types {
            assert!(!e.get("name").unwrap().as_str().unwrap().is_empty());
            assert!(e.get("count").unwrap().as_u64().unwrap() >= 1);
        }
        // Counts arrive sorted descending — the top-K contract.
        let counts: Vec<u64> =
            types.iter().map(|e| e.get("count").unwrap().as_u64().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "descending: {counts:?}");
        for e in heat.get("top_edges").unwrap().as_arr().unwrap() {
            for key in ["from", "elem", "to", "count"] {
                assert!(e.get(key).is_some(), "/heat edge missing {key}");
            }
        }

        // /analytics: the workload sketches are global and append-only
        // within the process, so our queries are visible regardless of
        // what the sibling tests did.
        let (status, body) = http_get(addr, "/analytics?k=5");
        assert!(status.contains("200"), "{status}");
        let doc = Json::parse(&body).expect("analytics is strict JSON");
        assert!(doc.get("queries").unwrap().as_u64().unwrap() >= 3);
        assert!(doc.get("cache_misses").unwrap().as_u64().unwrap() >= 1);
        let sketch = doc.get("sketch").unwrap();
        assert!(sketch.get("width").unwrap().as_u64().unwrap() >= 16);
        assert!(sketch.get("depth").unwrap().as_u64().unwrap() >= 1);
        let popularity = doc.get("popularity").unwrap().as_arr().unwrap();
        assert!(!popularity.is_empty(), "popularity saw our queries: {body}");
        for e in popularity {
            let count = e.get("count").unwrap().as_u64().unwrap();
            let err = e.get("err").unwrap().as_u64().unwrap();
            let estimate = e.get("estimate").unwrap().as_u64().unwrap();
            assert!(err <= count, "err is a portion of count: {body}");
            assert!(estimate >= count - err, "count-min never underestimates: {body}");
            assert!(!e.get("tin").unwrap().as_str().unwrap().is_empty());
            assert!(!e.get("tout").unwrap().as_str().unwrap().is_empty());
        }
        assert!(doc.get("misses").unwrap().as_arr().is_some());
        assert!(doc.get("truncated").unwrap().as_arr().is_some());
        assert!(doc.get("profiler").unwrap().get("samples").unwrap().as_u64().is_some());

        // /profile.folded: wait for the ~100 Hz sampler to observe the
        // worker threads, then validate every line of the format —
        // `frame(;frame)* count`, exactly one space, numeric count.
        let mut folded = String::new();
        for _ in 0..100 {
            let (status, body) = http_get(addr, "/profile.folded");
            assert!(status.contains("200"), "{status}");
            if !body.trim().is_empty() {
                folded = body;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(!folded.trim().is_empty(), "sampler produced no folded stacks");
        for line in folded.lines() {
            let (stack, count) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("folded line has no count: {line}"));
            assert!(count.parse::<u64>().is_ok(), "non-numeric count: {line}");
            assert!(!stack.is_empty(), "empty stack: {line}");
            for frame in stack.split(';') {
                assert!(!frame.is_empty(), "empty frame in: {line}");
                assert!(!frame.contains(' '), "frame with space breaks the format: {line}");
            }
        }

        // /status: per-endpoint truncation-reason counts, all three
        // labels always present.
        let (status, body) = http_get(addr, "/status");
        assert!(status.contains("200"), "{status}");
        let doc = Json::parse(&body).expect("status is strict JSON");
        let query_ep = doc.get("endpoints").unwrap().get("query").expect("query endpoint");
        let trunc = query_ep.get("truncation").expect("per-endpoint truncation counts");
        for reason in ["none", "path_cap", "expansion_cap"] {
            assert!(
                trunc.get(reason).unwrap().as_u64().is_some(),
                "missing truncation label {reason}: {body}"
            );
        }
        assert!(
            trunc.get("none").unwrap().as_u64().unwrap() >= 3,
            "our untruncated queries counted: {body}"
        );

        // /logs?n=: garbage is a 400 with a JSON error, not a silent
        // default; valid small n bounds the tail.
        let (status, body) = http_get(addr, "/logs?n=abc");
        assert!(status.contains("400"), "garbage n must 400: {status}");
        let err = Json::parse(&body).expect("400 body is strict JSON");
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert!(err.get("error").unwrap().as_str().unwrap().contains('n'));
        let (status, body) = http_get(addr, "/logs?n=2");
        assert!(status.contains("200"), "{status}");
        let records = Json::parse(&body).unwrap();
        assert!(records.as_arr().unwrap().len() <= 2, "n=2 bounds the tail");
        let (status, _) = http_get(addr, "/logs?n=99999999");
        assert!(status.contains("200"), "huge n clamps, not errors: {status}");

        }));

        shutdown.store(true, Ordering::Relaxed);
        let outcome = serving.join().expect("serve thread joins");
        assert_eq!(outcome, Ok(()));
        if let Err(panic) = verdict {
            std::panic::resume_unwind(panic);
        }
    });
}
