//! A Java-like reference-type model: packages, classes, interfaces, arrays,
//! and the subtyping judgments that jungloid synthesis relies on.
//!
//! This crate is the lowest-level substrate of the Prospector reproduction
//! (PLDI 2005, *Jungloid Mining*). The paper's algorithms only ever consult
//! the *static type structure* of an API — the class hierarchy, widening
//! reference conversions, and narrowing conversions (downcasts) — so this
//! model captures exactly that fragment of the Java type system:
//!
//! * reference types: classes, interfaces, and arrays (§2.1, footnote 4);
//! * `void`, used as the input type of zero-argument jungloids (§2.1);
//! * primitive types, which may appear as free-variable types but are never
//!   query endpoints;
//! * widening reference conversions `T → U` for `T <: U` and downcasts
//!   `U → T` (§2.1, Definition 2).
//!
//! Generics are deliberately absent: the paper targets pre-generics Java and
//! notes (§1 footnote 3) that the downcasts it mines would be required even
//! under Java 5 generics.
//!
//! # Example
//!
//! ```
//! use jungloid_typesys::{TypeKind, TypeTable};
//!
//! let mut table = TypeTable::new();
//! let object = table.declare("java.lang", "Object", TypeKind::Class)?;
//! let reader = table.declare("java.io", "Reader", TypeKind::Class)?;
//! let buffered = table.declare("java.io", "BufferedReader", TypeKind::Class)?;
//! table.set_superclass(buffered, reader)?;
//!
//! assert!(table.is_subtype(buffered, reader));
//! assert!(table.is_subtype(reader, object));
//! assert!(!table.is_subtype(reader, buffered));
//! assert!(table.is_subtype(buffered, object));
//! # let _ = object;
//! # Ok::<(), jungloid_typesys::TypeError>(())
//! ```

mod error;
mod table;
mod ty;

pub use error::TypeError;
pub use table::{PackageId, RawSlot, RawSlotView, TypeDecl, TypeTable};
pub use ty::{Prim, Ty, TyId, TypeKind};
