//! The type table: an arena of interned types plus hierarchy queries.

use std::collections::HashMap;

use prospector_obs::json::{decode_err, Json, JsonError};

use crate::{Prim, Ty, TyId, TypeError, TypeKind};

/// Identifier of an interned package name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageId(u32);

impl PackageId {
    /// Raw index into the owning table's package list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index.
    ///
    /// Only meaningful for indexes previously obtained from
    /// [`PackageId::index`] against the same table (the binary snapshot
    /// loader re-derives them; [`TypeTable::from_raw`] validates range).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        PackageId(u32::try_from(index).expect("package arena exceeds u32 range"))
    }
}

/// A symbol: an index into the table's [`NameArena`]. Hot paths (edge
/// decoding, display, snapshot encode) carry these 4-byte handles instead
/// of heap `String`s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Sym(u32);

/// All the table's names — package names and simple type names — interned
/// into one contiguous `String` with `(start, len)` spans. Interning
/// dedups (same text → same [`Sym`]) via a hash-bucket index that stores
/// only symbols, never a second copy of the text, so the arena is the
/// single owner of every name byte in the table.
#[derive(Clone, Debug, Default)]
struct NameArena {
    buf: String,
    spans: Vec<(u32, u32)>,
    /// `hash(text) -> candidate symbols`; collisions resolved by comparing
    /// against the arena content itself.
    index: HashMap<u64, Vec<Sym>>,
}

impl NameArena {
    fn hash_text(s: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// Interns `s`, returning the existing symbol when the exact text is
    /// already present.
    fn intern(&mut self, s: &str) -> Sym {
        let h = Self::hash_text(s);
        if let Some(cands) = self.index.get(&h) {
            for &sym in cands {
                if self.get(sym) == s {
                    return sym;
                }
            }
        }
        let start = u32::try_from(self.buf.len()).expect("name arena exceeds u32 range");
        let len = u32::try_from(s.len()).expect("name exceeds u32 range");
        let sym = Sym(u32::try_from(self.spans.len()).expect("name arena exceeds u32 range"));
        self.buf.push_str(s);
        self.spans.push((start, len));
        self.index.entry(h).or_default().push(sym);
        sym
    }

    fn get(&self, sym: Sym) -> &str {
        let (start, len) = self.spans[sym.0 as usize];
        &self.buf[start as usize..(start + len) as usize]
    }
}

/// Internal structure of one arena slot.
#[derive(Clone, Debug)]
enum TyData {
    Void,
    Null,
    Prim(Prim),
    Decl(DeclData),
    Array { elem: TyId },
}

#[derive(Clone, Debug)]
struct DeclData {
    simple: Sym,
    package: PackageId,
    kind: TypeKind,
    superclass: Option<TyId>,
    interfaces: Vec<TyId>,
}

/// A read-only view of one declared class or interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeDecl<'a> {
    /// The type's own id.
    pub id: TyId,
    /// Simple (unqualified) name, e.g. `BufferedReader`.
    pub simple_name: &'a str,
    /// Package name, e.g. `java.io`.
    pub package_name: &'a str,
    /// Package id.
    pub package: PackageId,
    /// Class or interface.
    pub kind: TypeKind,
    /// Declared superclass, if any. `None` for `java.lang.Object` and for
    /// classes that implicitly extend `Object` before it is declared.
    pub superclass: Option<TyId>,
    /// Implemented (for classes) or extended (for interfaces) interfaces.
    pub interfaces: &'a [TyId],
}

impl TypeDecl<'_> {
    /// Fully qualified name, `package.Simple`.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        if self.package_name.is_empty() {
            self.simple_name.to_owned()
        } else {
            format!("{}.{}", self.package_name, self.simple_name)
        }
    }
}

/// Arena of interned types with hierarchy construction and subtype queries.
///
/// A fresh table pre-interns `void`, the null type, and the eight Java
/// primitives; everything else is declared by the caller (typically the
/// `.api` stub loader in `jungloid-apidef`).
///
/// # Example
///
/// ```
/// use jungloid_typesys::{TypeKind, TypeTable};
///
/// let mut t = TypeTable::new();
/// let object = t.declare("java.lang", "Object", TypeKind::Class)?;
/// let iter = t.declare("java.util", "Iterator", TypeKind::Interface)?;
/// let list_iter = t.declare("java.util", "ListIterator", TypeKind::Interface)?;
/// t.add_interface(list_iter, iter)?;
///
/// assert!(t.is_subtype(list_iter, iter));
/// assert!(t.is_subtype(iter, object));
/// assert_eq!(t.resolve("Iterator")?, iter);
/// assert_eq!(t.resolve("java.util.ListIterator")?, list_iter);
/// # Ok::<(), jungloid_typesys::TypeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TypeTable {
    names: NameArena,
    packages: Vec<Sym>,
    package_ids: HashMap<Sym, PackageId>,
    types: Vec<TyData>,
    /// Name-lookup maps, built lazily on first [`TypeTable::resolve`].
    /// [`TypeTable::from_raw`] (the snapshot warm-start path) skips the
    /// build entirely so loading stays O(slots), not O(name bytes hashed).
    resolve_index: std::sync::OnceLock<ResolveIndex>,
    arrays: HashMap<TyId, TyId>,
    void_id: TyId,
    null_id: TyId,
    prim_ids: [TyId; 8],
    object: Option<TyId>,
}

/// Derived name-lookup maps behind [`TypeTable::resolve`].
#[derive(Clone, Debug, Default)]
struct ResolveIndex {
    by_qualified: HashMap<String, TyId>,
    by_simple: HashMap<String, Vec<TyId>>,
}

impl ResolveIndex {
    fn insert(&mut self, qualified: String, simple: &str, id: TyId) {
        self.by_qualified.insert(qualified, id);
        self.by_simple.entry(simple.to_owned()).or_default().push(id);
    }
}

impl TypeTable {
    /// Creates a table containing only `void`, the null type, and the
    /// primitives.
    #[must_use]
    pub fn new() -> Self {
        let mut types = Vec::with_capacity(16);
        types.push(TyData::Void);
        types.push(TyData::Null);
        let void_id = TyId(0);
        let null_id = TyId(1);
        let mut prim_ids = [TyId(0); 8];
        for (i, p) in Prim::ALL.into_iter().enumerate() {
            prim_ids[i] = TyId(u32::try_from(types.len()).expect("small"));
            types.push(TyData::Prim(p));
        }
        TypeTable {
            names: NameArena::default(),
            packages: Vec::new(),
            package_ids: HashMap::new(),
            types,
            resolve_index: std::sync::OnceLock::new(),
            arrays: HashMap::new(),
            void_id,
            null_id,
            prim_ids,
            object: None,
        }
    }

    /// Fully-qualified name of a declared slot, without going through
    /// [`TypeTable::decl`].
    fn qualified_of(&self, d: &DeclData) -> String {
        let pkg = self.names.get(self.packages[d.package.index()]);
        let simple = self.names.get(d.simple);
        if pkg.is_empty() {
            simple.to_owned()
        } else {
            format!("{pkg}.{simple}")
        }
    }

    /// The resolve maps, building them on first use.
    fn resolve_index(&self) -> &ResolveIndex {
        self.resolve_index.get_or_init(|| {
            let mut index = ResolveIndex::default();
            for (i, slot) in self.types.iter().enumerate() {
                if let TyData::Decl(d) = slot {
                    index.insert(self.qualified_of(d), self.names.get(d.simple), TyId::from_index(i));
                }
            }
            index
        })
    }

    /// Mutable access to the resolve maps, building them first if a
    /// warm-started table has not needed them yet.
    fn resolve_index_mut(&mut self) -> &mut ResolveIndex {
        if self.resolve_index.get().is_none() {
            self.resolve_index();
        }
        self.resolve_index.get_mut().expect("initialized above")
    }

    /// The `void` pseudo-type.
    #[must_use]
    pub fn void(&self) -> TyId {
        self.void_id
    }

    /// The null type (static type of the `null` literal).
    #[must_use]
    pub fn null(&self) -> TyId {
        self.null_id
    }

    /// The id of a primitive type.
    #[must_use]
    pub fn prim(&self, p: Prim) -> TyId {
        self.prim_ids[Prim::ALL.iter().position(|q| *q == p).expect("all prims listed")]
    }

    /// `java.lang.Object`, if it has been declared.
    #[must_use]
    pub fn object(&self) -> Option<TyId> {
        self.object
    }

    /// Interns a package name, returning its id.
    pub fn intern_package(&mut self, name: &str) -> PackageId {
        let sym = self.names.intern(name);
        if let Some(&id) = self.package_ids.get(&sym) {
            return id;
        }
        let id = PackageId(u32::try_from(self.packages.len()).expect("package arena overflow"));
        self.packages.push(sym);
        self.package_ids.insert(sym, id);
        id
    }

    /// Name of an interned package.
    #[must_use]
    pub fn package_name(&self, id: PackageId) -> &str {
        self.names.get(self.packages[id.index()])
    }

    /// Declares a new class or interface.
    ///
    /// Declaring `java.lang.Object` marks it as the hierarchy root; classes
    /// and interfaces without explicit supertypes are implicitly subtypes of
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::DuplicateType`] if the qualified name is taken.
    pub fn declare(&mut self, package: &str, simple: &str, kind: TypeKind) -> Result<TyId, TypeError> {
        let qualified = if package.is_empty() {
            simple.to_owned()
        } else {
            format!("{package}.{simple}")
        };
        if self.resolve_index_mut().by_qualified.contains_key(&qualified) {
            return Err(TypeError::DuplicateType { qualified_name: qualified });
        }
        let package = self.intern_package(package);
        let simple_sym = self.names.intern(simple);
        let id = TyId(u32::try_from(self.types.len()).expect("type arena overflow"));
        self.types.push(TyData::Decl(DeclData {
            simple: simple_sym,
            package,
            kind,
            superclass: None,
            interfaces: Vec::new(),
        }));
        if qualified == "java.lang.Object" {
            self.object = Some(id);
        }
        self.resolve_index_mut().insert(qualified, simple, id);
        Ok(id)
    }

    /// Interns (or returns the existing) array type with the given element.
    ///
    /// # Panics
    ///
    /// Panics if `elem` is `void` or the null type, which have no array
    /// types in Java.
    pub fn array_of(&mut self, elem: TyId) -> TyId {
        assert!(
            !matches!(self.types[elem.index()], TyData::Void | TyData::Null),
            "no array of void/null"
        );
        if let Some(&arr) = self.arrays.get(&elem) {
            return arr;
        }
        let id = TyId(u32::try_from(self.types.len()).expect("type arena overflow"));
        self.types.push(TyData::Array { elem });
        self.arrays.insert(elem, id);
        id
    }

    /// Sets the superclass of a class.
    ///
    /// # Errors
    ///
    /// Fails if either side is not a declared type, the subtype is an
    /// interface or already has a superclass, the supertype is an interface,
    /// or the link would create a cycle.
    pub fn set_superclass(&mut self, class: TyId, superclass: TyId) -> Result<(), TypeError> {
        match (self.kind(class), self.kind(superclass)) {
            (Some(TypeKind::Class), Some(TypeKind::Class)) => {}
            (Some(TypeKind::Interface), _) => {
                return Err(TypeError::KindMismatch {
                    detail: format!(
                        "interface `{}` cannot have a superclass; use add_interface",
                        self.display(class)
                    ),
                })
            }
            (_, Some(TypeKind::Interface)) => {
                return Err(TypeError::KindMismatch {
                    detail: format!(
                        "class `{}` cannot extend interface `{}`",
                        self.display(class),
                        self.display(superclass)
                    ),
                })
            }
            (None, _) => return Err(TypeError::NotADeclaredType { ty: class }),
            (_, None) => return Err(TypeError::NotADeclaredType { ty: superclass }),
        }
        if self.reaches(superclass, class) || class == superclass {
            return Err(TypeError::CyclicHierarchy { sub: class, sup: superclass });
        }
        let TyData::Decl(data) = &mut self.types[class.index()] else { unreachable!() };
        if data.superclass.is_some() {
            return Err(TypeError::SuperclassAlreadySet { class });
        }
        data.superclass = Some(superclass);
        Ok(())
    }

    /// Adds an implemented/extended interface to a class or interface.
    ///
    /// # Errors
    ///
    /// Fails if either side is not declared, the supertype is not an
    /// interface, or the link would create a cycle. Adding the same
    /// interface twice is a no-op.
    pub fn add_interface(&mut self, sub: TyId, iface: TyId) -> Result<(), TypeError> {
        match self.kind(iface) {
            Some(TypeKind::Interface) => {}
            Some(TypeKind::Class) => {
                return Err(TypeError::KindMismatch {
                    detail: format!("`{}` is a class, not an interface", self.display(iface)),
                })
            }
            None => return Err(TypeError::NotADeclaredType { ty: iface }),
        }
        if self.kind(sub).is_none() {
            return Err(TypeError::NotADeclaredType { ty: sub });
        }
        if self.reaches(iface, sub) || sub == iface {
            return Err(TypeError::CyclicHierarchy { sub, sup: iface });
        }
        let TyData::Decl(data) = &mut self.types[sub.index()] else { unreachable!() };
        if !data.interfaces.contains(&iface) {
            data.interfaces.push(iface);
        }
        Ok(())
    }

    /// The structural shape of a type.
    #[must_use]
    pub fn ty(&self, id: TyId) -> Ty {
        match &self.types[id.index()] {
            TyData::Void => Ty::Void,
            TyData::Null => Ty::Null,
            TyData::Prim(p) => Ty::Prim(*p),
            TyData::Decl(_) => Ty::Decl,
            TyData::Array { elem } => Ty::Array(*elem),
        }
    }

    /// `Some(kind)` if `id` is a declared class or interface.
    #[must_use]
    pub fn kind(&self, id: TyId) -> Option<TypeKind> {
        match &self.types[id.index()] {
            TyData::Decl(d) => Some(d.kind),
            _ => None,
        }
    }

    /// Whether `id` is a reference type (declared or array or null).
    #[must_use]
    pub fn is_reference(&self, id: TyId) -> bool {
        matches!(
            self.types[id.index()],
            TyData::Decl(_) | TyData::Array { .. } | TyData::Null
        )
    }

    /// Read-only view of a declared type.
    #[must_use]
    pub fn decl(&self, id: TyId) -> Option<TypeDecl<'_>> {
        match &self.types[id.index()] {
            TyData::Decl(d) => Some(TypeDecl {
                id,
                simple_name: self.names.get(d.simple),
                package_name: self.names.get(self.packages[d.package.index()]),
                package: d.package,
                kind: d.kind,
                superclass: d.superclass,
                interfaces: &d.interfaces,
            }),
            _ => None,
        }
    }

    /// The package a type belongs to: its own for declared types, the
    /// element's for arrays, `None` for `void`/null/primitives.
    #[must_use]
    pub fn package_of(&self, id: TyId) -> Option<PackageId> {
        match &self.types[id.index()] {
            TyData::Decl(d) => Some(d.package),
            TyData::Array { elem } => self.package_of(*elem),
            _ => None,
        }
    }

    /// Total number of interned types (including `void`, null, primitives,
    /// and arrays).
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the table holds only the built-in types.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // 10 built-ins: void, null, 8 primitives.
        self.types.len() <= 10
    }

    /// Iterates over the ids of all interned types.
    pub fn ids(&self) -> impl Iterator<Item = TyId> + '_ {
        (0..self.types.len()).map(TyId::from_index)
    }

    /// Iterates over all declared classes and interfaces.
    pub fn decls(&self) -> impl Iterator<Item = TypeDecl<'_>> + '_ {
        self.ids().filter_map(|id| self.decl(id))
    }

    /// Resolves a type name: qualified (`java.io.Reader`) or simple
    /// (`Reader`). Arrays and primitives are not handled here.
    ///
    /// # Errors
    ///
    /// [`TypeError::UnknownType`] if nothing matches,
    /// [`TypeError::AmbiguousName`] if a simple name has several matches.
    pub fn resolve(&self, name: &str) -> Result<TyId, TypeError> {
        let index = self.resolve_index();
        if name.contains('.') {
            return index
                .by_qualified
                .get(name)
                .copied()
                .ok_or_else(|| TypeError::UnknownType { name: name.to_owned() });
        }
        match index.by_simple.get(name).map(Vec::as_slice) {
            None | Some([]) => Err(TypeError::UnknownType { name: name.to_owned() }),
            Some([one]) => Ok(*one),
            Some(many) => Err(TypeError::AmbiguousName {
                name: name.to_owned(),
                candidates: many
                    .iter()
                    .map(|id| self.decl(*id).expect("simple index holds decls").qualified_name())
                    .collect(),
            }),
        }
    }

    /// Direct supertypes of a type, i.e. the targets of its widening edges
    /// in the signature graph:
    ///
    /// * declared type: its superclass (or `Object` implicitly) plus its
    ///   interfaces; interfaces with no supers widen to `Object`;
    /// * array `S[]`: `Object`, plus `T[]` for each *interned* direct
    ///   supertype `T` of a reference element `S`;
    /// * `void`, null, primitives: none.
    #[must_use]
    pub fn direct_supertypes(&self, id: TyId) -> Vec<TyId> {
        let mut out = Vec::new();
        match &self.types[id.index()] {
            TyData::Decl(d) => {
                if let Some(sup) = d.superclass {
                    out.push(sup);
                } else if self.object != Some(id) {
                    if let Some(obj) = self.object {
                        out.push(obj);
                    }
                }
                out.extend(d.interfaces.iter().copied());
            }
            TyData::Array { elem } => {
                if let Some(obj) = self.object {
                    out.push(obj);
                }
                if matches!(self.types[elem.index()], TyData::Decl(_) | TyData::Array { .. }) {
                    for sup in self.direct_supertypes(*elem) {
                        if let Some(&arr) = self.arrays.get(&sup) {
                            out.push(arr);
                        }
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// Whether `sub` is a subtype of `sup` (reflexive).
    ///
    /// Implements Java's widening-reference-conversion relation restricted
    /// to the types this model supports: identity, class/interface
    /// hierarchy, array covariance, array-to-`Object`, and null-to-any-
    /// reference.
    #[must_use]
    pub fn is_subtype(&self, sub: TyId, sup: TyId) -> bool {
        if sub == sup {
            return true;
        }
        if sub == self.null_id {
            return self.is_reference(sup);
        }
        self.reaches(sub, sup)
    }

    /// Whether `to` is reachable from `from` through direct supertype
    /// links (strictly upward; not reflexive unless on a cycle, which
    /// construction forbids).
    fn reaches(&self, from: TyId, to: TyId) -> bool {
        let mut stack = self.direct_supertypes(from);
        let mut seen = vec![false; self.types.len()];
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if t.index() < seen.len() && !std::mem::replace(&mut seen[t.index()], true) {
                stack.extend(self.direct_supertypes(t));
            }
        }
        false
    }

    /// Inheritance depth: length of the longest chain of direct-supertype
    /// links from `id` up to a root (`Object` or a parentless type).
    ///
    /// Used by the ranking heuristic of §3.2: among jungloids of equal
    /// length, the one returning the *more general* (smaller-depth) type is
    /// preferred.
    #[must_use]
    pub fn depth(&self, id: TyId) -> u32 {
        self.direct_supertypes(id)
            .into_iter()
            .map(|s| 1 + self.depth(s))
            .max()
            .unwrap_or(0)
    }

    /// All strict subtypes of `id` among declared and array types.
    ///
    /// Linear scan; used by graph construction (downcast candidates) and by
    /// the CHA call-graph approximation, both of which precompute.
    #[must_use]
    pub fn strict_subtypes(&self, id: TyId) -> Vec<TyId> {
        self.ids()
            .filter(|&s| s != id && self.is_reference(s) && s != self.null_id && self.is_subtype(s, id))
            .collect()
    }

    /// Renders a type id as Java-ish source text (`java.io.Reader`,
    /// `int`, `String[]`, `void`).
    #[must_use]
    pub fn display(&self, id: TyId) -> String {
        match &self.types[id.index()] {
            TyData::Void => "void".to_owned(),
            TyData::Null => "<null>".to_owned(),
            TyData::Prim(p) => p.keyword().to_owned(),
            TyData::Decl(d) => {
                let pkg = self.names.get(self.packages[d.package.index()]);
                let simple = self.names.get(d.simple);
                if pkg.is_empty() {
                    simple.to_owned()
                } else {
                    format!("{pkg}.{simple}")
                }
            }
            TyData::Array { elem } => format!("{}[]", self.display(*elem)),
        }
    }

    /// Renders a type id using simple names only (`Reader`, `String[]`).
    #[must_use]
    pub fn display_simple(&self, id: TyId) -> String {
        match &self.types[id.index()] {
            TyData::Decl(d) => self.names.get(d.simple).to_owned(),
            TyData::Array { elem } => format!("{}[]", self.display_simple(*elem)),
            _ => self.display(id),
        }
    }
}

impl Default for TypeTable {
    fn default() -> Self {
        TypeTable::new()
    }
}

// --- Persistence --------------------------------------------------------
//
// Both wire formats (JSON here, binary in `prospector-store`) carry only
// the arena (packages + typed slots); every derived index
// (qualified/simple lookup, array interning, the Object root) is rebuilt
// on load, which keeps the format small and makes a loaded table
// structurally identical to a freshly built one. [`RawSlot`] is the
// neutral exchange shape both formats decode into; [`TypeTable::from_raw`]
// owns all structural validation.

/// The raw contents of one type-arena slot, as exchanged with persistence
/// layers ([`TypeTable::to_json`] and the binary snapshot format in
/// `prospector-store`). Obtained from [`TypeTable::raw_slots`]; reversed by
/// [`TypeTable::from_raw`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RawSlot {
    /// The `void` pseudo-type (always slot 0).
    Void,
    /// The null type (always slot 1).
    Null,
    /// A primitive (slots 2..10, in [`Prim::ALL`] order).
    Prim(Prim),
    /// A declared class or interface.
    Decl {
        /// Simple (unqualified) name.
        simple: String,
        /// Package reference.
        package: PackageId,
        /// Class or interface.
        kind: TypeKind,
        /// Declared superclass, if any.
        superclass: Option<TyId>,
        /// Implemented/extended interfaces.
        interfaces: Vec<TyId>,
    },
    /// An array type.
    Array {
        /// Element type.
        elem: TyId,
    },
}

/// A borrowed view of one type-arena slot: the allocation-free sibling of
/// [`RawSlot`]. Save paths (the binary snapshot encoder, the JSON debug
/// dump) iterate these instead of cloning every name `String` out of the
/// interned arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RawSlotView<'a> {
    /// The `void` pseudo-type (always slot 0).
    Void,
    /// The null type (always slot 1).
    Null,
    /// A primitive (slots 2..10, in [`Prim::ALL`] order).
    Prim(Prim),
    /// A declared class or interface.
    Decl {
        /// Simple (unqualified) name, borrowed from the name arena.
        simple: &'a str,
        /// Package reference.
        package: PackageId,
        /// Class or interface.
        kind: TypeKind,
        /// Declared superclass, if any.
        superclass: Option<TyId>,
        /// Implemented/extended interfaces.
        interfaces: &'a [TyId],
    },
    /// An array type.
    Array {
        /// Element type.
        elem: TyId,
    },
}

impl TypeTable {
    /// The interned package names, in arena order, borrowed from the name
    /// arena.
    pub fn package_names(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        self.packages.iter().map(|&sym| self.names.get(sym))
    }

    /// The raw arena slots, in id order. Together with
    /// [`TypeTable::package_names`] this is the table's complete persistent
    /// state. Clones names out of the arena; save paths that only need to
    /// read should prefer [`TypeTable::raw_slot_views`].
    #[must_use]
    pub fn raw_slots(&self) -> Vec<RawSlot> {
        self.raw_slot_views()
            .map(|slot| match slot {
                RawSlotView::Void => RawSlot::Void,
                RawSlotView::Null => RawSlot::Null,
                RawSlotView::Prim(p) => RawSlot::Prim(p),
                RawSlotView::Decl { simple, package, kind, superclass, interfaces } => {
                    RawSlot::Decl {
                        simple: simple.to_owned(),
                        package,
                        kind,
                        superclass,
                        interfaces: interfaces.to_vec(),
                    }
                }
                RawSlotView::Array { elem } => RawSlot::Array { elem },
            })
            .collect()
    }

    /// Borrowed views of the raw arena slots, in id order — zero
    /// allocations, names read straight from the interned arena.
    pub fn raw_slot_views(&self) -> impl ExactSizeIterator<Item = RawSlotView<'_>> + '_ {
        self.types.iter().map(|slot| match slot {
            TyData::Void => RawSlotView::Void,
            TyData::Null => RawSlotView::Null,
            TyData::Prim(p) => RawSlotView::Prim(*p),
            TyData::Decl(d) => RawSlotView::Decl {
                simple: self.names.get(d.simple),
                package: d.package,
                kind: d.kind,
                superclass: d.superclass,
                interfaces: &d.interfaces,
            },
            TyData::Array { elem } => RawSlotView::Array { elem: *elem },
        })
    }

    /// Rebuilds a table from raw parts, validating every reference and
    /// rebuilding all derived indexes.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidTable`] on out-of-range package/type
    /// references, a built-in prefix (void, null, the eight primitives)
    /// that does not match a fresh table's, arrays of `void`/null, or
    /// duplicate packages, declared types, or array internings.
    pub fn from_raw(packages: Vec<String>, slots: Vec<RawSlot>) -> Result<TypeTable, TypeError> {
        let invalid = |detail: String| TypeError::InvalidTable { detail };
        let arena_len = slots.len();
        let check_ty = |id: TyId| {
            if id.index() < arena_len {
                Ok(id)
            } else {
                Err(invalid(format!("type reference {id:?} out of bounds ({arena_len} slots)")))
            }
        };
        let mut names = NameArena::default();
        let mut types = Vec::with_capacity(arena_len);
        for slot in slots {
            types.push(match slot {
                RawSlot::Void => TyData::Void,
                RawSlot::Null => TyData::Null,
                RawSlot::Prim(p) => TyData::Prim(p),
                RawSlot::Decl { simple, package, kind, superclass, interfaces } => {
                    if package.index() >= packages.len() {
                        return Err(invalid(format!(
                            "package reference {} out of bounds ({} packages)",
                            package.index(),
                            packages.len()
                        )));
                    }
                    if let Some(sup) = superclass {
                        check_ty(sup)?;
                    }
                    for &i in &interfaces {
                        check_ty(i)?;
                    }
                    TyData::Decl(DeclData {
                        simple: names.intern(&simple),
                        package,
                        kind,
                        superclass,
                        interfaces,
                    })
                }
                RawSlot::Array { elem } => {
                    check_ty(elem)?;
                    TyData::Array { elem }
                }
            });
        }

        // The built-in prefix must match what `TypeTable::new` interns.
        if types.len() < 10
            || !matches!(types[0], TyData::Void)
            || !matches!(types[1], TyData::Null)
        {
            return Err(invalid("built-in prefix (void, null, primitives) missing".to_owned()));
        }
        let mut prim_ids = [TyId(0); 8];
        for (i, p) in Prim::ALL.into_iter().enumerate() {
            match &types[2 + i] {
                TyData::Prim(q) if *q == p => prim_ids[i] = TyId(u32::try_from(2 + i).expect("small")),
                _ => return Err(invalid("primitive slots out of order".to_owned())),
            }
        }
        for slot in &types {
            if let TyData::Array { elem } = slot {
                if matches!(types[elem.index()], TyData::Void | TyData::Null) {
                    return Err(invalid("array of void/null".to_owned()));
                }
            }
        }

        // Rebuild derived state. The name-lookup maps are NOT built here —
        // they materialize lazily on the first `resolve` call — so the
        // snapshot warm-start path pays only for the cheap id-keyed maps.
        let mut table = TypeTable {
            names,
            packages: Vec::with_capacity(packages.len()),
            package_ids: HashMap::new(),
            types,
            resolve_index: std::sync::OnceLock::new(),
            arrays: HashMap::new(),
            void_id: TyId(0),
            null_id: TyId(1),
            prim_ids,
            object: None,
        };
        for (i, name) in packages.iter().enumerate() {
            let id = PackageId(u32::try_from(i).expect("small"));
            // Interning dedups, so a repeated package name maps to the same
            // symbol and trips the duplicate check here.
            let sym = table.names.intern(name);
            if table.package_ids.insert(sym, id).is_some() {
                return Err(invalid(format!("duplicate package `{name}`")));
            }
            table.packages.push(sym);
        }
        // Interning also dedups simple names, so a duplicate declared type
        // is exactly a repeated (package, simple-symbol) pair.
        let mut seen_decls = std::collections::HashSet::with_capacity(table.types.len());
        for (i, slot) in table.types.iter().enumerate() {
            let id = TyId::from_index(i);
            match slot {
                TyData::Decl(d) => {
                    if !seen_decls.insert((d.package, d.simple)) {
                        return Err(invalid(format!(
                            "duplicate declared type `{}`",
                            table.qualified_of(d)
                        )));
                    }
                    if table.object.is_none()
                        && table.names.get(d.simple) == "Object"
                        && table.names.get(table.packages[d.package.index()]) == "java.lang"
                    {
                        table.object = Some(id);
                    }
                }
                TyData::Array { elem } if table.arrays.insert(*elem, id).is_some() => {
                    return Err(invalid("duplicate array interning".to_owned()));
                }
                _ => {}
            }
        }
        Ok(table)
    }
}

fn ty_ref(id: TyId) -> Json {
    Json::num_u(u64::from(id.0))
}

fn want_ty(v: &Json, arena_len: usize) -> Result<TyId, JsonError> {
    let raw = v.as_u64().ok_or_else(|| decode_err("type id must be a non-negative integer"))?;
    let raw = u32::try_from(raw).map_err(|_| decode_err("type id out of range"))?;
    if (raw as usize) >= arena_len {
        return Err(decode_err(format!("type id {raw} out of bounds ({arena_len} slots)")));
    }
    Ok(TyId(raw))
}

impl TypeTable {
    /// Serializes the table to a JSON value. The interned name arena is
    /// emitted once as `names` and decl slots reference it by symbol
    /// index, so a simple name shared by many types costs one string in
    /// the document (and one allocation on save) rather than one per
    /// slot.
    #[must_use]
    pub fn to_json(&self) -> Json {
        // Canonical first-use order (not raw arena order) keeps the
        // document stable across a decode/re-encode round trip, where
        // the rebuilt arena interns names in a different sequence.
        let mut remap: HashMap<u32, u64> = HashMap::new();
        let mut names: Vec<Json> = Vec::new();
        for slot in &self.types {
            if let TyData::Decl(d) = slot {
                if let std::collections::hash_map::Entry::Vacant(e) = remap.entry(d.simple.0) {
                    e.insert(names.len() as u64);
                    names.push(Json::Str(self.names.get(d.simple).to_owned()));
                }
            }
        }
        let types = self
            .types
            .iter()
            .map(|slot| match slot {
                TyData::Void => Json::obj(vec![("k", Json::Str("void".into()))]),
                TyData::Null => Json::obj(vec![("k", Json::Str("null".into()))]),
                TyData::Prim(p) => Json::obj(vec![
                    ("k", Json::Str("prim".into())),
                    ("p", Json::Str(p.keyword().into())),
                ]),
                TyData::Decl(d) => Json::obj(vec![
                    ("k", Json::Str("decl".into())),
                    ("simple", Json::num_u(remap[&d.simple.0])),
                    ("pkg", Json::num_u(u64::from(d.package.0))),
                    (
                        "kind",
                        Json::Str(
                            match d.kind {
                                TypeKind::Class => "class",
                                TypeKind::Interface => "interface",
                            }
                            .into(),
                        ),
                    ),
                    ("super", d.superclass.map_or(Json::Null, ty_ref)),
                    ("ifaces", Json::Arr(d.interfaces.iter().map(|&i| ty_ref(i)).collect())),
                ]),
                TyData::Array { elem } => Json::obj(vec![
                    ("k", Json::Str("array".into())),
                    ("elem", ty_ref(*elem)),
                ]),
            })
            .collect();
        Json::obj(vec![
            (
                "packages",
                Json::Arr(self.package_names().map(|p| Json::Str(p.to_owned())).collect()),
            ),
            ("names", Json::Arr(names)),
            ("types", Json::Arr(types)),
        ])
    }

    /// Rebuilds a table from [`TypeTable::to_json`] output.
    ///
    /// # Errors
    ///
    /// Fails on missing keys, malformed slots, out-of-range references,
    /// or an arena whose built-in prefix (void, null, the eight
    /// primitives) does not match a fresh table's.
    pub fn from_json(v: &Json) -> Result<TypeTable, JsonError> {
        let packages: Vec<String> = v
            .want("packages")?
            .as_arr()
            .ok_or_else(|| decode_err("`packages` must be an array"))?
            .iter()
            .map(|p| {
                p.as_str().map(str::to_owned).ok_or_else(|| decode_err("package must be a string"))
            })
            .collect::<Result<_, _>>()?;
        let names: Vec<&str> = v
            .want("names")?
            .as_arr()
            .ok_or_else(|| decode_err("`names` must be an array"))?
            .iter()
            .map(|n| n.as_str().ok_or_else(|| decode_err("name must be a string")))
            .collect::<Result<_, _>>()?;
        let slots = v
            .want("types")?
            .as_arr()
            .ok_or_else(|| decode_err("`types` must be an array"))?;
        let arena_len = slots.len();
        let mut raw = Vec::with_capacity(arena_len);
        for slot in slots {
            let kind = slot.want("k")?.as_str().ok_or_else(|| decode_err("`k` must be a string"))?;
            raw.push(match kind {
                "void" => RawSlot::Void,
                "null" => RawSlot::Null,
                "prim" => {
                    let word = slot
                        .want("p")?
                        .as_str()
                        .ok_or_else(|| decode_err("`p` must be a string"))?;
                    RawSlot::Prim(
                        Prim::from_keyword(word)
                            .ok_or_else(|| decode_err(format!("unknown primitive `{word}`")))?,
                    )
                }
                "decl" => {
                    let pkg = slot
                        .want("pkg")?
                        .as_u64()
                        .and_then(|p| u32::try_from(p).ok())
                        .ok_or_else(|| decode_err("bad package reference"))?;
                    let superclass = match slot.want("super")? {
                        Json::Null => None,
                        other => Some(want_ty(other, arena_len)?),
                    };
                    let interfaces = slot
                        .want("ifaces")?
                        .as_arr()
                        .ok_or_else(|| decode_err("`ifaces` must be an array"))?
                        .iter()
                        .map(|i| want_ty(i, arena_len))
                        .collect::<Result<_, _>>()?;
                    let simple_ref = slot
                        .want("simple")?
                        .as_u64()
                        .and_then(|i| usize::try_from(i).ok())
                        .ok_or_else(|| decode_err("`simple` must be a name index"))?;
                    RawSlot::Decl {
                        simple: names
                            .get(simple_ref)
                            .copied()
                            .ok_or_else(|| {
                                decode_err(format!("name index {simple_ref} out of range"))
                            })?
                            .to_owned(),
                        package: PackageId(pkg),
                        kind: match slot.want("kind")?.as_str() {
                            Some("class") => TypeKind::Class,
                            Some("interface") => TypeKind::Interface,
                            _ => return Err(decode_err("`kind` must be class|interface")),
                        },
                        superclass,
                        interfaces,
                    }
                }
                "array" => RawSlot::Array { elem: want_ty(slot.want("elem")?, arena_len)? },
                other => return Err(decode_err(format!("unknown type slot kind `{other}`"))),
            });
        }
        TypeTable::from_raw(packages, raw).map_err(|e| decode_err(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (TypeTable, TyId) {
        let mut t = TypeTable::new();
        let obj = t.declare("java.lang", "Object", TypeKind::Class).unwrap();
        (t, obj)
    }

    #[test]
    fn builtins_present() {
        let t = TypeTable::new();
        assert_eq!(t.ty(t.void()), Ty::Void);
        assert_eq!(t.ty(t.null()), Ty::Null);
        assert_eq!(t.ty(t.prim(Prim::Int)), Ty::Prim(Prim::Int));
        assert!(t.is_empty());
    }

    #[test]
    fn declare_and_resolve() {
        let (mut t, obj) = base();
        let r = t.declare("java.io", "Reader", TypeKind::Class).unwrap();
        assert_eq!(t.resolve("Reader").unwrap(), r);
        assert_eq!(t.resolve("java.io.Reader").unwrap(), r);
        assert_eq!(t.resolve("java.lang.Object").unwrap(), obj);
        assert!(matches!(t.resolve("Nope"), Err(TypeError::UnknownType { .. })));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let (mut t, _) = base();
        t.declare("a", "X", TypeKind::Class).unwrap();
        assert!(matches!(
            t.declare("a", "X", TypeKind::Interface),
            Err(TypeError::DuplicateType { .. })
        ));
    }

    #[test]
    fn simple_name_ambiguity() {
        let (mut t, _) = base();
        t.declare("a", "X", TypeKind::Class).unwrap();
        t.declare("b", "X", TypeKind::Class).unwrap();
        match t.resolve("X") {
            Err(TypeError::AmbiguousName { candidates, .. }) => {
                assert_eq!(candidates, vec!["a.X".to_owned(), "b.X".to_owned()]);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
        assert_eq!(t.resolve("a.X").unwrap(), t.resolve("a.X").unwrap());
    }

    #[test]
    fn subtyping_through_classes_and_interfaces() {
        let (mut t, obj) = base();
        let readable = t.declare("java.lang", "Readable", TypeKind::Interface).unwrap();
        let reader = t.declare("java.io", "Reader", TypeKind::Class).unwrap();
        let buffered = t.declare("java.io", "BufferedReader", TypeKind::Class).unwrap();
        t.add_interface(reader, readable).unwrap();
        t.set_superclass(buffered, reader).unwrap();

        assert!(t.is_subtype(buffered, reader));
        assert!(t.is_subtype(buffered, readable));
        assert!(t.is_subtype(buffered, obj));
        assert!(t.is_subtype(readable, obj));
        assert!(!t.is_subtype(reader, buffered));
        assert!(!t.is_subtype(obj, reader));
    }

    #[test]
    fn implicit_object_supertype() {
        let (mut t, obj) = base();
        let lone = t.declare("x", "Lone", TypeKind::Class).unwrap();
        assert_eq!(t.direct_supertypes(lone), vec![obj]);
        assert!(t.is_subtype(lone, obj));
        assert!(t.direct_supertypes(obj).is_empty());
    }

    #[test]
    fn null_subtype_of_references_only() {
        let (mut t, obj) = base();
        let c = t.declare("x", "C", TypeKind::Class).unwrap();
        let arr = t.array_of(c);
        assert!(t.is_subtype(t.null(), obj));
        assert!(t.is_subtype(t.null(), c));
        assert!(t.is_subtype(t.null(), arr));
        assert!(!t.is_subtype(t.null(), t.prim(Prim::Int)));
        assert!(!t.is_subtype(t.null(), t.void()));
    }

    #[test]
    fn array_covariance_when_interned() {
        let (mut t, obj) = base();
        let sup = t.declare("x", "Sup", TypeKind::Class).unwrap();
        let sub = t.declare("x", "Sub", TypeKind::Class).unwrap();
        t.set_superclass(sub, sup).unwrap();
        let sub_arr = t.array_of(sub);
        let sup_arr = t.array_of(sup);
        assert!(t.is_subtype(sub_arr, sup_arr));
        assert!(t.is_subtype(sub_arr, obj));
        assert!(!t.is_subtype(sup_arr, sub_arr));
        // int[] is not covariant with anything but itself (and Object).
        let int_arr = t.array_of(t.prim(Prim::Int));
        assert!(t.is_subtype(int_arr, obj));
        assert!(!t.is_subtype(int_arr, sup_arr));
    }

    #[test]
    fn array_interning_is_idempotent() {
        let (mut t, _) = base();
        let c = t.declare("x", "C", TypeKind::Class).unwrap();
        assert_eq!(t.array_of(c), t.array_of(c));
    }

    #[test]
    fn cycles_rejected() {
        let (mut t, _) = base();
        let a = t.declare("x", "A", TypeKind::Class).unwrap();
        let b = t.declare("x", "B", TypeKind::Class).unwrap();
        t.set_superclass(b, a).unwrap();
        assert!(matches!(
            t.set_superclass(a, b),
            Err(TypeError::CyclicHierarchy { .. })
        ));
        let i = t.declare("x", "I", TypeKind::Interface).unwrap();
        let j = t.declare("x", "J", TypeKind::Interface).unwrap();
        t.add_interface(i, j).unwrap();
        assert!(matches!(t.add_interface(j, i), Err(TypeError::CyclicHierarchy { .. })));
        assert!(matches!(t.add_interface(i, i), Err(TypeError::CyclicHierarchy { .. })));
    }

    #[test]
    fn kind_rules_enforced() {
        let (mut t, _) = base();
        let c = t.declare("x", "C", TypeKind::Class).unwrap();
        let i = t.declare("x", "I", TypeKind::Interface).unwrap();
        assert!(matches!(t.set_superclass(c, i), Err(TypeError::KindMismatch { .. })));
        assert!(matches!(t.set_superclass(i, c), Err(TypeError::KindMismatch { .. })));
        assert!(matches!(t.add_interface(c, c), Err(TypeError::KindMismatch { .. })));
    }

    #[test]
    fn second_superclass_rejected() {
        let (mut t, _) = base();
        let a = t.declare("x", "A", TypeKind::Class).unwrap();
        let b = t.declare("x", "B", TypeKind::Class).unwrap();
        let c = t.declare("x", "C", TypeKind::Class).unwrap();
        t.set_superclass(c, a).unwrap();
        assert!(matches!(
            t.set_superclass(c, b),
            Err(TypeError::SuperclassAlreadySet { .. })
        ));
    }

    #[test]
    fn depth_counts_longest_chain() {
        let (mut t, obj) = base();
        let a = t.declare("x", "A", TypeKind::Class).unwrap();
        let b = t.declare("x", "B", TypeKind::Class).unwrap();
        let i = t.declare("x", "I", TypeKind::Interface).unwrap();
        let j = t.declare("x", "J", TypeKind::Interface).unwrap();
        t.set_superclass(a, b).unwrap(); // a <: b <: Object
        t.add_interface(j, i).unwrap(); // j <: i <: Object
        t.add_interface(a, j).unwrap(); // a also <: j
        assert_eq!(t.depth(obj), 0);
        assert_eq!(t.depth(b), 1);
        assert_eq!(t.depth(i), 1);
        assert_eq!(t.depth(j), 2);
        // a's longest chain: a -> j -> i -> Object = 3.
        assert_eq!(t.depth(a), 3);
    }

    #[test]
    fn display_forms() {
        let (mut t, _) = base();
        let c = t.declare("java.io", "Reader", TypeKind::Class).unwrap();
        let arr = t.array_of(c);
        assert_eq!(t.display(c), "java.io.Reader");
        assert_eq!(t.display_simple(c), "Reader");
        assert_eq!(t.display(arr), "java.io.Reader[]");
        assert_eq!(t.display_simple(arr), "Reader[]");
        assert_eq!(t.display(t.void()), "void");
        assert_eq!(t.display(t.prim(Prim::Long)), "long");
        let unpackaged = t.declare("", "Top", TypeKind::Class).unwrap();
        assert_eq!(t.display(unpackaged), "Top");
    }

    #[test]
    fn strict_subtypes_scan() {
        let (mut t, obj) = base();
        let a = t.declare("x", "A", TypeKind::Class).unwrap();
        let b = t.declare("x", "B", TypeKind::Class).unwrap();
        t.set_superclass(b, a).unwrap();
        let subs = t.strict_subtypes(a);
        assert_eq!(subs, vec![b]);
        let all = t.strict_subtypes(obj);
        assert!(all.contains(&a) && all.contains(&b));
        assert!(!all.contains(&obj));
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let (mut t, obj) = base();
        let readable = t.declare("java.lang", "Readable", TypeKind::Interface).unwrap();
        let reader = t.declare("java.io", "Reader", TypeKind::Class).unwrap();
        let buffered = t.declare("java.io", "BufferedReader", TypeKind::Class).unwrap();
        t.add_interface(reader, readable).unwrap();
        t.set_superclass(buffered, reader).unwrap();
        let arr = t.array_of(buffered);
        let unpackaged = t.declare("", "Top", TypeKind::Class).unwrap();

        let doc = t.to_json();
        let back = TypeTable::from_json(&doc).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.object(), Some(obj));
        assert_eq!(back.resolve("java.io.BufferedReader").unwrap(), buffered);
        assert_eq!(back.resolve("Top").unwrap(), unpackaged);
        assert!(back.is_subtype(buffered, readable));
        assert_eq!(back.ty(arr), Ty::Array(buffered));
        let mut back2 = back.clone();
        assert_eq!(back2.array_of(buffered), arr, "array interning survives");
        assert_eq!(back.display(arr), "java.io.BufferedReader[]");
        assert_eq!(back.prim(Prim::Double), t.prim(Prim::Double));
        // Reserialization is stable.
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn json_rejects_corrupt_tables() {
        let (t, _) = base();
        let doc = t.to_json();
        // Truncate the built-in prefix.
        let Json::Obj(mut pairs) = doc.clone() else { unreachable!() };
        for (k, v) in &mut pairs {
            if k == "types" {
                let Json::Arr(items) = v else { unreachable!() };
                items.truncate(3);
            }
        }
        assert!(TypeTable::from_json(&Json::Obj(pairs)).is_err());
        // Missing keys entirely.
        assert!(TypeTable::from_json(&Json::obj(vec![])).is_err());
        // Dangling type reference.
        let text = doc.to_text().replace("\"super\":null", "\"super\":9999");
        assert!(TypeTable::from_json(&Json::parse(&text).unwrap()).is_err());
    }

    #[test]
    fn decl_view_and_packages() {
        let (mut t, _) = base();
        let c = t.declare("java.io", "Reader", TypeKind::Class).unwrap();
        let pkg = {
            let d = t.decl(c).unwrap();
            assert_eq!(d.simple_name, "Reader");
            assert_eq!(d.package_name, "java.io");
            assert_eq!(d.qualified_name(), "java.io.Reader");
            assert_eq!(d.kind, TypeKind::Class);
            d.package
        };
        assert_eq!(t.package_name(pkg), "java.io");
        assert!(t.decl(t.void()).is_none());
        assert_eq!(t.package_of(c), Some(pkg));
        let arr = t.array_of(c);
        assert_eq!(t.package_of(arr), Some(pkg));
        assert_eq!(t.package_of(t.void()), None);
    }
}
