//! Type identifiers and the structural description of each type.

/// A compact, copyable handle for an interned type.
///
/// `TyId`s are only meaningful relative to the [`TypeTable`] that issued
/// them; they index into the table's dense arena. Every node of the
/// signature graph is keyed by a `TyId` (plus fresh mined nodes), so keeping
/// this a 4-byte value keeps the graph compact.
///
/// [`TypeTable`]: crate::TypeTable
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TyId(pub(crate) u32);

impl TyId {
    /// Returns the raw index of this id in its owning table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an id from a raw index.
    ///
    /// Only meaningful for indexes previously obtained from
    /// [`TyId::index`] against the same table.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TyId(u32::try_from(index).expect("type arena exceeds u32 range"))
    }
}

impl std::fmt::Debug for TyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ty#{}", self.0)
    }
}

/// Whether a declared reference type is a class or an interface.
///
/// The distinction matters for hierarchy validity (classes have at most one
/// superclass; interfaces may extend several interfaces) but not for graph
/// search: both are ordinary nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// A concrete or abstract class.
    Class,
    /// An interface.
    Interface,
}

impl std::fmt::Display for TypeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeKind::Class => f.write_str("class"),
            TypeKind::Interface => f.write_str("interface"),
        }
    }
}

/// Java primitive types.
///
/// Primitives are excluded from jungloid queries (§2.1 footnote 4: "The only
/// types we exclude are primitive types such as `int`, which could represent
/// anything from an array bound to a cryptographic key") but still occur as
/// method-parameter types, where they become free variables of a jungloid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Prim {
    /// `boolean`
    Boolean,
    /// `byte`
    Byte,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
}

impl Prim {
    /// All primitive kinds, in declaration order.
    pub const ALL: [Prim; 8] = [
        Prim::Boolean,
        Prim::Byte,
        Prim::Char,
        Prim::Short,
        Prim::Int,
        Prim::Long,
        Prim::Float,
        Prim::Double,
    ];

    /// The Java keyword for this primitive.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            Prim::Boolean => "boolean",
            Prim::Byte => "byte",
            Prim::Char => "char",
            Prim::Short => "short",
            Prim::Int => "int",
            Prim::Long => "long",
            Prim::Float => "float",
            Prim::Double => "double",
        }
    }

    /// Parses a Java primitive keyword.
    #[must_use]
    pub fn from_keyword(word: &str) -> Option<Prim> {
        Prim::ALL.into_iter().find(|p| p.keyword() == word)
    }
}

impl std::fmt::Display for Prim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The structure of one interned type.
///
/// Obtained from [`TypeTable::ty`]; use it to case on what a [`TyId`]
/// denotes without poking at table internals.
///
/// [`TypeTable::ty`]: crate::TypeTable::ty
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The pseudo-type `void`, input of zero-argument elementary jungloids.
    Void,
    /// The null type: the static type of the `null` literal, subtype of
    /// every reference type. Used by the MiniJava front end; never a graph
    /// node.
    Null,
    /// A primitive type.
    Prim(Prim),
    /// A declared class or interface. Structure lives in the table; query
    /// it via [`TypeTable`](crate::TypeTable) accessors.
    Decl,
    /// An array with the given element type.
    Array(TyId),
}
