//! Errors reported while building or querying a type table.

use crate::TyId;

/// An error raised while constructing or querying the type hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// A type with this qualified name was already declared.
    DuplicateType {
        /// Fully qualified name of the clashing declaration.
        qualified_name: String,
    },
    /// The named type has not been declared.
    UnknownType {
        /// The name that failed to resolve.
        name: String,
    },
    /// A simple name resolves to more than one declared type.
    AmbiguousName {
        /// The ambiguous simple name.
        name: String,
        /// Qualified names of all candidates.
        candidates: Vec<String>,
    },
    /// The requested operation needs a declared class or interface but got
    /// `void`, a primitive, or an array type.
    NotADeclaredType {
        /// The offending type id.
        ty: TyId,
    },
    /// Setting this supertype link would make the hierarchy cyclic.
    CyclicHierarchy {
        /// The subtype whose supertype link was being set.
        sub: TyId,
        /// The proposed supertype.
        sup: TyId,
    },
    /// A class may extend only one superclass.
    SuperclassAlreadySet {
        /// The class whose superclass was being set again.
        class: TyId,
    },
    /// Interfaces cannot extend classes, classes cannot extend interfaces
    /// via `set_superclass`, etc.
    KindMismatch {
        /// Human-readable description of the violated rule.
        detail: String,
    },
    /// A persisted arena (JSON or binary) failed structural validation:
    /// out-of-range references, a malformed built-in prefix, duplicate
    /// declarations, and the like.
    InvalidTable {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::DuplicateType { qualified_name } => {
                write!(f, "type `{qualified_name}` is declared twice")
            }
            TypeError::UnknownType { name } => write!(f, "unknown type `{name}`"),
            TypeError::AmbiguousName { name, candidates } => write!(
                f,
                "simple name `{name}` is ambiguous between {}",
                candidates.join(", ")
            ),
            TypeError::NotADeclaredType { ty } => {
                write!(f, "{ty:?} is not a declared class or interface")
            }
            TypeError::CyclicHierarchy { sub, sup } => {
                write!(f, "making {sup:?} a supertype of {sub:?} would create a cycle")
            }
            TypeError::SuperclassAlreadySet { class } => {
                write!(f, "superclass of {class:?} is already set")
            }
            TypeError::KindMismatch { detail } => f.write_str(detail),
            TypeError::InvalidTable { detail } => {
                write!(f, "invalid persisted type table: {detail}")
            }
        }
    }
}

impl std::error::Error for TypeError {}
