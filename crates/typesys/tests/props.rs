//! Property tests for the type-table invariants the synthesizer relies
//! on: subtyping is a partial order, widening edges go strictly up the
//! depth measure, and the subtype scan agrees with the relation.

use jungloid_typesys::{TypeKind, TypeTable};
use proptest::prelude::*;

/// A random hierarchy description: `links[i]` optionally names an earlier
/// type that type `i` extends (classes) plus interface links.
#[derive(Clone, Debug)]
struct HierarchySpec {
    kinds: Vec<bool>, // true = interface
    extends: Vec<Option<usize>>,
    implements: Vec<Vec<usize>>,
}

fn hierarchy_strategy(max: usize) -> impl Strategy<Value = HierarchySpec> {
    (2..max).prop_flat_map(|n| {
        let kinds = proptest::collection::vec(any::<bool>(), n);
        let extends = proptest::collection::vec(proptest::option::of(0..n), n);
        let implements =
            proptest::collection::vec(proptest::collection::vec(0..n, 0..3), n);
        (kinds, extends, implements).prop_map(|(kinds, extends, implements)| HierarchySpec {
            kinds,
            extends,
            implements,
        })
    })
}

fn build(spec: &HierarchySpec) -> TypeTable {
    let mut table = TypeTable::new();
    let object = table.declare("java.lang", "Object", TypeKind::Class).unwrap();
    let _ = object;
    let ids: Vec<_> = spec
        .kinds
        .iter()
        .enumerate()
        .map(|(i, &iface)| {
            let kind = if iface { TypeKind::Interface } else { TypeKind::Class };
            table.declare("p", &format!("T{i}"), kind).unwrap()
        })
        .collect();
    for (i, &sup) in spec.extends.iter().enumerate() {
        if let Some(s) = sup {
            if s < i && !spec.kinds[i] && !spec.kinds[s] {
                // Earlier-only links keep the hierarchy acyclic; the table
                // must accept them all.
                table.set_superclass(ids[i], ids[s]).unwrap();
            }
        }
    }
    for (i, ifaces) in spec.implements.iter().enumerate() {
        for &s in ifaces {
            if s < i && spec.kinds[s] {
                table.add_interface(ids[i], ids[s]).unwrap();
            }
        }
    }
    table
}

proptest! {
    #[test]
    fn subtyping_is_a_partial_order(spec in hierarchy_strategy(10)) {
        let table = build(&spec);
        let ids: Vec<_> = table.decls().map(|d| d.id).collect();
        // Reflexive.
        for &a in &ids {
            prop_assert!(table.is_subtype(a, a));
        }
        // Transitive and antisymmetric.
        for &a in &ids {
            for &b in &ids {
                if a != b && table.is_subtype(a, b) {
                    prop_assert!(!table.is_subtype(b, a), "antisymmetry violated");
                    for &c in &ids {
                        if table.is_subtype(b, c) {
                            prop_assert!(table.is_subtype(a, c), "transitivity violated");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn everything_widens_to_object(spec in hierarchy_strategy(10)) {
        let table = build(&spec);
        let object = table.object().unwrap();
        for d in table.decls() {
            prop_assert!(table.is_subtype(d.id, object));
        }
    }

    #[test]
    fn direct_supertypes_decrease_depth(spec in hierarchy_strategy(10)) {
        let table = build(&spec);
        for d in table.decls() {
            let depth = table.depth(d.id);
            for sup in table.direct_supertypes(d.id) {
                prop_assert!(table.depth(sup) < depth,
                    "depth({}) = {} not below depth({}) = {}",
                    table.display(sup), table.depth(sup), table.display(d.id), depth);
            }
        }
    }

    #[test]
    fn strict_subtypes_agrees_with_relation(spec in hierarchy_strategy(8)) {
        let table = build(&spec);
        let ids: Vec<_> = table.decls().map(|d| d.id).collect();
        for &t in &ids {
            let subs = table.strict_subtypes(t);
            for &s in &ids {
                let expected = s != t && table.is_subtype(s, t);
                prop_assert_eq!(subs.contains(&s), expected);
            }
        }
    }

    #[test]
    fn subtype_implies_reachable_via_direct_links(spec in hierarchy_strategy(8)) {
        // is_subtype must equal the transitive closure of
        // direct_supertypes — the property that lets the graph encode
        // transitive widening as zero-cost edge compositions.
        let table = build(&spec);
        let ids: Vec<_> = table.decls().map(|d| d.id).collect();
        for &a in &ids {
            // BFS over direct supertype links.
            let mut seen = vec![a];
            let mut stack = vec![a];
            while let Some(t) = stack.pop() {
                for s in table.direct_supertypes(t) {
                    if !seen.contains(&s) {
                        seen.push(s);
                        stack.push(s);
                    }
                }
            }
            for &b in &ids {
                prop_assert_eq!(a == b || seen.contains(&b), table.is_subtype(a, b));
            }
        }
    }
}
