//! Property tests for the type-table invariants the synthesizer relies
//! on: subtyping is a partial order, widening edges go strictly up the
//! depth measure, and the subtype scan agrees with the relation.
//!
//! Each property is checked over a sweep of seeded random hierarchies
//! (deterministic — failures reproduce by seed).

use jungloid_typesys::{TyId, TypeKind, TypeTable};
use prospector_obs::SmallRng;

/// A random hierarchy description: `extends[i]` optionally names an
/// earlier type that type `i` extends (classes) plus interface links.
#[derive(Clone, Debug)]
struct HierarchySpec {
    kinds: Vec<bool>, // true = interface
    extends: Vec<Option<usize>>,
    implements: Vec<Vec<usize>>,
}

fn random_spec(seed: u64, max: usize) -> HierarchySpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2..max);
    let kinds: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let extends: Vec<Option<usize>> = (0..n)
        .map(|_| rng.gen_bool(0.5).then(|| rng.gen_range(0..n)))
        .collect();
    let implements: Vec<Vec<usize>> = (0..n)
        .map(|_| (0..rng.gen_range(0..3)).map(|_| rng.gen_range(0..n)).collect())
        .collect();
    HierarchySpec { kinds, extends, implements }
}

fn build(spec: &HierarchySpec) -> TypeTable {
    let mut table = TypeTable::new();
    let object = table.declare("java.lang", "Object", TypeKind::Class).unwrap();
    let _ = object;
    let ids: Vec<_> = spec
        .kinds
        .iter()
        .enumerate()
        .map(|(i, &iface)| {
            let kind = if iface { TypeKind::Interface } else { TypeKind::Class };
            table.declare("p", &format!("T{i}"), kind).unwrap()
        })
        .collect();
    for (i, &sup) in spec.extends.iter().enumerate() {
        if let Some(s) = sup {
            if s < i && !spec.kinds[i] && !spec.kinds[s] {
                // Earlier-only links keep the hierarchy acyclic; the table
                // must accept them all.
                table.set_superclass(ids[i], ids[s]).unwrap();
            }
        }
    }
    for (i, ifaces) in spec.implements.iter().enumerate() {
        for &s in ifaces {
            if s < i && spec.kinds[s] {
                table.add_interface(ids[i], ids[s]).unwrap();
            }
        }
    }
    table
}

fn sweep(max: usize, check: impl Fn(&TypeTable)) {
    for seed in 0..96u64 {
        check(&build(&random_spec(seed, max)));
    }
}

fn decl_ids(table: &TypeTable) -> Vec<TyId> {
    table.decls().map(|d| d.id).collect()
}

#[test]
fn subtyping_is_a_partial_order() {
    sweep(10, |table| {
        let ids = decl_ids(table);
        // Reflexive.
        for &a in &ids {
            assert!(table.is_subtype(a, a));
        }
        // Transitive and antisymmetric.
        for &a in &ids {
            for &b in &ids {
                if a != b && table.is_subtype(a, b) {
                    assert!(!table.is_subtype(b, a), "antisymmetry violated");
                    for &c in &ids {
                        if table.is_subtype(b, c) {
                            assert!(table.is_subtype(a, c), "transitivity violated");
                        }
                    }
                }
            }
        }
    });
}

#[test]
fn everything_widens_to_object() {
    sweep(10, |table| {
        let object = table.object().unwrap();
        for d in table.decls() {
            assert!(table.is_subtype(d.id, object));
        }
    });
}

#[test]
fn direct_supertypes_decrease_depth() {
    sweep(10, |table| {
        for d in table.decls() {
            let depth = table.depth(d.id);
            for sup in table.direct_supertypes(d.id) {
                assert!(
                    table.depth(sup) < depth,
                    "depth({}) = {} not below depth({}) = {}",
                    table.display(sup),
                    table.depth(sup),
                    table.display(d.id),
                    depth
                );
            }
        }
    });
}

#[test]
fn strict_subtypes_agrees_with_relation() {
    sweep(8, |table| {
        let ids = decl_ids(table);
        for &t in &ids {
            let subs = table.strict_subtypes(t);
            for &s in &ids {
                let expected = s != t && table.is_subtype(s, t);
                assert_eq!(subs.contains(&s), expected);
            }
        }
    });
}

#[test]
fn subtype_implies_reachable_via_direct_links() {
    // is_subtype must equal the transitive closure of
    // direct_supertypes — the property that lets the graph encode
    // transitive widening as zero-cost edge compositions.
    sweep(8, |table| {
        let ids = decl_ids(table);
        for &a in &ids {
            // BFS over direct supertype links.
            let mut seen = vec![a];
            let mut stack = vec![a];
            while let Some(t) = stack.pop() {
                for s in table.direct_supertypes(t) {
                    if !seen.contains(&s) {
                        seen.push(s);
                        stack.push(s);
                    }
                }
            }
            for &b in &ids {
                assert_eq!(a == b || seen.contains(&b), table.is_subtype(a, b));
            }
        }
    });
}

#[test]
fn json_round_trip_over_random_hierarchies() {
    sweep(10, |table| {
        let doc = table.to_json();
        let back = TypeTable::from_json(&doc).unwrap();
        assert_eq!(back.len(), table.len());
        for d in table.decls() {
            let other = back.decl(d.id).unwrap();
            assert_eq!(other.qualified_name(), d.qualified_name());
            assert_eq!(other.kind, d.kind);
        }
        let ids = decl_ids(table);
        for &a in &ids {
            for &b in &ids {
                assert_eq!(table.is_subtype(a, b), back.is_subtype(a, b));
            }
        }
        assert_eq!(back.to_json(), doc);
        // The serialized text survives a parse round trip too.
        let text = doc.to_text();
        assert_eq!(prospector_obs::Json::parse(&text).unwrap(), doc);
    });
}
