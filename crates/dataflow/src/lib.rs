//! Jungloid mining front end: from client source code to example
//! jungloids (§4.2, "Extracting Jungloids").
//!
//! The pipeline:
//!
//! 1. [`lower`] — parsed MiniJava client code is lowered to a small typed
//!    IR ([`lower::Val`]): every name is resolved against the API model,
//!    every call site against the class hierarchy (client classes are
//!    registered into the type table so inheritance from API types
//!    works), and every cast and client call site is indexed.
//! 2. [`mine`] — for each *downcast* site, a backward, interprocedural,
//!    flow-insensitive walk collects the sequences of elementary
//!    jungloids that can reach the cast:
//!    * a local variable's uses flow from **all** of its definitions
//!      (flow-insensitive);
//!    * a parameter flows from the corresponding argument at **every**
//!      call site of the method in the corpus (interprocedural, call
//!      graph approximated by the type hierarchy);
//!    * an API call is an elementary jungloid through each of its
//!      class-typed inputs (the paper's first interpretation); client
//!      methods are always inlined (the second interpretation) — API
//!      bodies are not available in a signature model, matching the
//!      paper's treatment of binary libraries;
//!    * extraction stops at zero-argument expressions (no-input
//!      constructors/statics, static fields, parameters without call
//!      sites, string/class literals) and is capped per cast site, as in
//!      the paper ("stopping after a defined maximum number of example
//!      jungloids is extracted for a given cast expression").
//!
//! The output of [`mine::Miner::mine`] feeds
//! `prospector_core::Prospector::add_examples`.

pub mod lower;
pub mod mine;

pub use lower::{ClientClass, ClientMethod, LowerError, LoweredCorpus, Val, ValKind};
pub use mine::{MineReport, Miner, MinerConfig, ParamMineReport};
