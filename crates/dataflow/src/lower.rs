//! Lowering: MiniJava ASTs → a resolved, typed IR the miner can walk.

use std::collections::HashMap;

use jungloid_apidef::{Api, FieldId, MethodId};
use jungloid_minijava::ast::{Expr, Lit, Stmt, TypeName, Unit};
use jungloid_typesys::{Prim, Ty, TyId, TypeKind};

/// A resolution/typing failure while lowering client code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowerError {
    /// File label.
    pub file: String,
    /// Enclosing `Class.method`, when known.
    pub context: String,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.file, self.context, self.message)
    }
}

impl std::error::Error for LowerError {}

/// A typed IR value: an expression with every name resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Val {
    /// Static type of the value.
    pub ty: TyId,
    /// Structure.
    pub kind: ValKind,
}

/// IR value kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValKind {
    /// A local variable or parameter of the enclosing method.
    Var(String),
    /// `new C(args)`.
    New {
        /// Resolved constructor.
        ctor: MethodId,
        /// Lowered arguments.
        args: Vec<Val>,
    },
    /// A call to an API method (static when `recv` is `None` and the
    /// method is static).
    ApiCall {
        /// Resolved method.
        method: MethodId,
        /// Lowered receiver for instance calls.
        recv: Option<Box<Val>>,
        /// Lowered arguments.
        args: Vec<Val>,
    },
    /// A call to a client (corpus) method — always inlined by the miner.
    ClientCall {
        /// Index into [`LoweredCorpus::classes`].
        class_idx: usize,
        /// Index into that class's `methods`.
        method_idx: usize,
        /// Lowered arguments.
        args: Vec<Val>,
    },
    /// `C.f` static field read.
    StaticField(FieldId),
    /// `v.f` instance field read.
    GetField {
        /// Lowered receiver.
        recv: Box<Val>,
        /// Resolved field.
        field: FieldId,
    },
    /// `(T) v`.
    Cast {
        /// Target type (== `self.ty`).
        to: TyId,
        /// Operand.
        val: Box<Val>,
    },
    /// A string literal.
    Str,
    /// An integer literal.
    Int,
    /// A boolean literal.
    Bool,
    /// `null`.
    Null,
    /// `T.class`.
    ClassLit,
}

/// One lowered client method.
#[derive(Clone, Debug)]
pub struct ClientMethod {
    /// Method name.
    pub name: String,
    /// Whether declared `static`.
    pub is_static: bool,
    /// `(name, type)` parameters.
    pub params: Vec<(String, TyId)>,
    /// Return type (`None` for constructors and `void`).
    pub ret: Option<TyId>,
    /// Flow-insensitive definition map: variable → all values assigned
    /// anywhere in the body.
    pub defs: HashMap<String, Vec<Val>>,
    /// All `return e;` values.
    pub returns: Vec<Val>,
    /// Every cast value occurring anywhere in the body (mining seeds).
    pub casts: Vec<Val>,
    /// Values of expression statements (calls for effect) — consulted by
    /// the §4.3 parameter miner, which needs every API call site.
    pub stmt_vals: Vec<Val>,
}

/// One lowered client class.
#[derive(Clone, Debug)]
pub struct ClientClass {
    /// The type-table id assigned to this client class.
    pub ty: TyId,
    /// Simple name.
    pub name: String,
    /// Source file.
    pub file: String,
    /// Lowered methods.
    pub methods: Vec<ClientMethod>,
}

/// A call site of a client method, recorded for parameter jumps.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Class of the *calling* method (for variable lookups in `args`).
    pub caller_class: usize,
    /// Method index of the caller.
    pub caller_method: usize,
    /// Lowered argument values.
    pub args: Vec<Val>,
}

/// The fully lowered corpus.
#[derive(Debug, Default)]
pub struct LoweredCorpus {
    /// Client classes in declaration order.
    pub classes: Vec<ClientClass>,
    class_by_ty: HashMap<TyId, usize>,
    /// `(callee class, callee method) → call sites`.
    call_sites: HashMap<(usize, usize), Vec<CallSite>>,
}

impl LoweredCorpus {
    /// Lowers parsed units against `api`. Client classes are declared into
    /// the API's type table (packaged as in their source files) so that
    /// inheritance from API types and client-typed locals resolve; client
    /// classes contribute no API members.
    ///
    /// # Errors
    ///
    /// Any unresolved name, unknown method/field, or type mismatch aborts
    /// lowering with a [`LowerError`] naming the offending method.
    pub fn lower(api: &mut Api, units: &[Unit]) -> Result<Self, LowerError> {
        let mut corpus = LoweredCorpus::default();
        // Pass 1a: declare all client class types.
        let mut declared: Vec<(usize, usize, TyId)> = Vec::new(); // (unit, class, ty)
        for (ui, unit) in units.iter().enumerate() {
            for (ci, class) in unit.classes.iter().enumerate() {
                let pkg = unit.package.clone().unwrap_or_default();
                let ty = api
                    .types_mut()
                    .declare(&pkg, &class.name, TypeKind::Class)
                    .map_err(|e| LowerError {
                        file: unit.file.clone(),
                        context: class.name.clone(),
                        message: e.to_string(),
                    })?;
                declared.push((ui, ci, ty));
            }
        }
        // Pass 1b: hierarchy + method signatures.
        for &(ui, ci, ty) in &declared {
            let unit = &units[ui];
            let class = &unit.classes[ci];
            let ctx = |m: &str| LowerError {
                file: unit.file.clone(),
                context: class.name.clone(),
                message: m.to_owned(),
            };
            if let Some(sup) = &class.extends {
                let sup_ty = resolve_type_name(api, sup).map_err(|m| ctx(&m))?;
                api.types_mut().set_superclass(ty, sup_ty).map_err(|e| ctx(&e.to_string()))?;
            }
            for iface in &class.implements {
                let i = resolve_type_name(api, iface).map_err(|m| ctx(&m))?;
                api.types_mut().add_interface(ty, i).map_err(|e| ctx(&e.to_string()))?;
            }
            let mut methods = Vec::new();
            for m in &class.methods {
                let params = m
                    .params
                    .iter()
                    .map(|(t, n)| Ok((n.clone(), resolve_type_name(api, t).map_err(|msg| ctx(&msg))?)))
                    .collect::<Result<Vec<_>, LowerError>>()?;
                let ret = match &m.ret {
                    None => None, // constructor
                    Some(t) if t.parts == ["void"] && t.dims == 0 => None,
                    Some(t) => Some(resolve_type_name(api, t).map_err(|msg| ctx(&msg))?),
                };
                methods.push(ClientMethod {
                    name: m.name.clone(),
                    is_static: m.is_static(),
                    params,
                    ret,
                    defs: HashMap::new(),
                    returns: Vec::new(),
                    casts: Vec::new(),
                    stmt_vals: Vec::new(),
                });
            }
            corpus.class_by_ty.insert(ty, corpus.classes.len());
            corpus.classes.push(ClientClass {
                ty,
                name: class.name.clone(),
                file: unit.file.clone(),
                methods,
            });
        }
        // Pass 2: lower bodies.
        for (global_idx, &(ui, ci, _ty)) in declared.iter().enumerate() {
            let unit = &units[ui];
            let class = &unit.classes[ci];
            for (mi, m) in class.methods.iter().enumerate() {
                let lowered = {
                    let mut ctx = MethodCx {
                        api,
                        corpus: &corpus,
                        file: &unit.file,
                        class_idx: global_idx,
                        context: format!("{}.{}", class.name, m.name),
                        locals: corpus.classes[global_idx]
                            .methods[mi]
                            .params
                            .iter()
                            .cloned()
                            .collect(),
                        defs: HashMap::new(),
                        returns: Vec::new(),
                        casts: Vec::new(),
                        stmt_vals: Vec::new(),
                        sites: Vec::new(),
                    };
                    for stmt in &m.body {
                        ctx.lower_stmt(stmt)?;
                    }
                    (ctx.defs, ctx.returns, ctx.casts, ctx.stmt_vals, ctx.sites)
                };
                let (defs, returns, casts, stmt_vals, sites) = lowered;
                {
                    let cm = &mut corpus.classes[global_idx].methods[mi];
                    cm.defs = defs;
                    cm.returns = returns;
                    cm.casts = casts;
                    cm.stmt_vals = stmt_vals;
                }
                for (callee, args) in sites {
                    corpus.call_sites.entry(callee).or_default().push(CallSite {
                        caller_class: global_idx,
                        caller_method: mi,
                        args,
                    });
                }
            }
        }
        Ok(corpus)
    }

    /// The client class backing a type id, if any.
    #[must_use]
    pub fn class_of_ty(&self, ty: TyId) -> Option<usize> {
        self.class_by_ty.get(&ty).copied()
    }

    /// Call sites of a client method.
    #[must_use]
    pub fn call_sites(&self, class_idx: usize, method_idx: usize) -> &[CallSite] {
        self.call_sites.get(&(class_idx, method_idx)).map_or(&[], Vec::as_slice)
    }

    /// Client methods named `name`/`arity` declared on client subclasses
    /// of `recv_ty` (the CHA dispatch approximation for inlining).
    #[must_use]
    pub fn client_overrides(
        &self,
        api: &Api,
        recv_ty: TyId,
        name: &str,
        arity: usize,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ci, class) in self.classes.iter().enumerate() {
            if api.types().is_subtype(class.ty, recv_ty) || api.types().is_subtype(recv_ty, class.ty) {
                for (mi, m) in class.methods.iter().enumerate() {
                    if !m.is_static && m.name == name && m.params.len() == arity {
                        out.push((ci, mi));
                    }
                }
            }
        }
        out
    }

    /// Total number of cast seeds in the corpus.
    #[must_use]
    pub fn cast_count(&self) -> usize {
        self.classes.iter().flat_map(|c| &c.methods).map(|m| m.casts.len()).sum()
    }
}

/// Resolves a source type name (simple, qualified, primitive, array)
/// against the API's type table.
fn resolve_type_name(api: &mut Api, t: &TypeName) -> Result<TyId, String> {
    let base = if t.parts.len() == 1 {
        let word = t.parts[0].as_str();
        if word == "void" {
            return Err("`void` is not a value type".to_owned());
        }
        if let Some(p) = Prim::from_keyword(word) {
            api.types().prim(p)
        } else {
            api.types().resolve(word).map_err(|e| e.to_string())?
        }
    } else {
        api.types().resolve(&t.parts.join(".")).map_err(|e| e.to_string())?
    };
    let mut ty = base;
    for _ in 0..t.dims {
        ty = api.types_mut().array_of(ty);
    }
    Ok(ty)
}

/// Per-method lowering context.
struct MethodCx<'a> {
    api: &'a Api,
    corpus: &'a LoweredCorpus,
    file: &'a str,
    class_idx: usize,
    context: String,
    locals: HashMap<String, TyId>,
    defs: HashMap<String, Vec<Val>>,
    returns: Vec<Val>,
    casts: Vec<Val>,
    stmt_vals: Vec<Val>,
    /// Client call sites found in this body: (callee, args).
    sites: Vec<((usize, usize), Vec<Val>)>,
}

impl MethodCx<'_> {
    fn err(&self, message: String) -> LowerError {
        LowerError { file: self.file.to_owned(), context: self.context.clone(), message }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match stmt {
            Stmt::Local { ty, name, init } => {
                let declared = self
                    .resolve_type(ty)
                    .map_err(|m| self.err(format!("in declaration of `{name}`: {m}")))?;
                self.locals.insert(name.clone(), declared);
                if let Some(init) = init {
                    let v = self.lower_expr(init)?;
                    self.check_assignable(&v, declared, name)?;
                    self.defs.entry(name.clone()).or_default().push(v);
                }
                Ok(())
            }
            Stmt::Assign { name, value } => {
                let Some(&declared) = self.locals.get(name) else {
                    return Err(self.err(format!("assignment to undeclared variable `{name}`")));
                };
                let v = self.lower_expr(value)?;
                self.check_assignable(&v, declared, name)?;
                self.defs.entry(name.clone()).or_default().push(v);
                Ok(())
            }
            Stmt::Return(Some(e)) => {
                let v = self.lower_expr(e)?;
                self.returns.push(v);
                Ok(())
            }
            Stmt::Return(None) => Ok(()),
            Stmt::If { cond, then, els } => {
                // Flow-insensitive: both arms contribute to the same
                // definition pool; the condition is lowered for its casts
                // and call sites.
                if let Ok(v) = self.lower_expr(cond) {
                    self.stmt_vals.push(v);
                }
                for st in then {
                    self.lower_stmt(st)?;
                }
                if let Some(els) = els {
                    for st in els {
                        self.lower_stmt(st)?;
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                if let Ok(v) = self.lower_expr(cond) {
                    self.stmt_vals.push(v);
                }
                for st in body {
                    self.lower_stmt(st)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                // Calls for effect (incl. void): lower to index casts and
                // call sites; the value is kept for the §4.3 parameter
                // miner. Best-effort: effect-only statements may not type
                // as values.
                if let Ok(v) = self.lower_expr(e) {
                    self.stmt_vals.push(v);
                }
                Ok(())
            }
        }
    }

    fn check_assignable(&self, v: &Val, declared: TyId, name: &str) -> Result<(), LowerError> {
        if compatible(self.api, v.ty, declared) {
            Ok(())
        } else {
            Err(self.err(format!(
                "cannot assign {} to `{name}: {}`",
                self.api.types().display(v.ty),
                self.api.types().display(declared)
            )))
        }
    }

    fn resolve_type(&self, t: &TypeName) -> Result<TyId, String> {
        // Arrays of not-yet-interned element types cannot be interned here
        // (we hold &Api); the corpora pre-intern arrays via signatures.
        let base = if t.parts.len() == 1 {
            let word = t.parts[0].as_str();
            if let Some(p) = Prim::from_keyword(word) {
                self.api.types().prim(p)
            } else {
                self.api.types().resolve(word).map_err(|e| e.to_string())?
            }
        } else {
            self.api.types().resolve(&t.parts.join(".")).map_err(|e| e.to_string())?
        };
        let mut ty = base;
        for _ in 0..t.dims {
            ty = self
                .api
                .types()
                .strict_subtypes(self.api.types().object().ok_or("no Object")?)
                .into_iter()
                .find(|&a| matches!(self.api.types().ty(a), Ty::Array(e) if e == ty))
                .ok_or_else(|| format!("array type {}[] not interned by any signature", t))?;
        }
        Ok(ty)
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Val, LowerError> {
        match e {
            Expr::Lit(Lit::Int(_)) => {
                Ok(Val { ty: self.api.types().prim(Prim::Int), kind: ValKind::Int })
            }
            Expr::Lit(Lit::Bool(_)) => {
                Ok(Val { ty: self.api.types().prim(Prim::Boolean), kind: ValKind::Bool })
            }
            Expr::Lit(Lit::Null) => Ok(Val { ty: self.api.types().null(), kind: ValKind::Null }),
            Expr::Lit(Lit::Str(_)) => {
                let string = self
                    .api
                    .types()
                    .resolve("java.lang.String")
                    .map_err(|e| self.err(e.to_string()))?;
                Ok(Val { ty: string, kind: ValKind::Str })
            }
            Expr::ClassLit { .. } => {
                let class = self
                    .api
                    .types()
                    .resolve("java.lang.Class")
                    .map_err(|e| self.err(e.to_string()))?;
                Ok(Val { ty: class, kind: ValKind::ClassLit })
            }
            Expr::Name { parts } => self.lower_name(parts)?.into_value(self),
            Expr::New { class, args } => {
                let ty = self
                    .resolve_type(class)
                    .map_err(|m| self.err(format!("in `new {class}`: {m}")))?;
                let args = args.iter().map(|a| self.lower_expr(a)).collect::<Result<Vec<_>, _>>()?;
                let ctor = self
                    .pick_api_overload(self.api.lookup_constructor(ty, args.len()), &args)
                    .ok_or_else(|| {
                        self.err(format!(
                            "no matching constructor `new {}/{}`",
                            self.api.types().display_simple(ty),
                            args.len()
                        ))
                    })?;
                let cast_sites = collect_casts_of_args(&args);
                self.casts.extend(cast_sites);
                Ok(Val { ty, kind: ValKind::New { ctor, args } })
            }
            Expr::Cast { ty, expr } => {
                let to = self.resolve_type(ty).map_err(|m| self.err(format!("in cast: {m}")))?;
                let val = self.lower_expr(expr)?;
                let v = Val { ty: to, kind: ValKind::Cast { to, val: Box::new(val) } };
                self.casts.push(v.clone());
                Ok(v)
            }
            Expr::Field { recv, name } => {
                let r = self.lower_expr(recv)?;
                let field = self
                    .api
                    .lookup_field(r.ty, name)
                    .filter(|&f| !self.api.field(f).is_static)
                    .ok_or_else(|| {
                        self.err(format!(
                            "no instance field `{name}` on {}",
                            self.api.types().display(r.ty)
                        ))
                    })?;
                Ok(Val {
                    ty: self.api.field(field).ty,
                    kind: ValKind::GetField { recv: Box::new(r), field },
                })
            }
            Expr::Call { recv, name, args } => self.lower_call(recv.as_deref(), name, args),
            Expr::Binary { op, lhs, rhs } => {
                // Operators never carry object flow; lower the operands so
                // their casts and call sites register, then produce an
                // opaque primitive.
                let _ = self.lower_expr(lhs)?;
                let _ = self.lower_expr(rhs)?;
                if matches!(*op, "+" | "-") {
                    Ok(Val { ty: self.api.types().prim(Prim::Int), kind: ValKind::Int })
                } else {
                    Ok(Val { ty: self.api.types().prim(Prim::Boolean), kind: ValKind::Bool })
                }
            }
            Expr::Not { expr } => {
                let _ = self.lower_expr(expr)?;
                Ok(Val { ty: self.api.types().prim(Prim::Boolean), kind: ValKind::Bool })
            }
        }
    }

    fn lower_call(
        &mut self,
        recv: Option<&Expr>,
        name: &str,
        args: &[Expr],
    ) -> Result<Val, LowerError> {
        let args: Vec<Val> =
            args.iter().map(|a| self.lower_expr(a)).collect::<Result<Vec<_>, _>>()?;
        match recv {
            None => {
                // Receiverless: a method of the enclosing client class, or
                // an API method inherited from its superclass (modeled with
                // an implicit `this` receiver).
                let class = &self.corpus.classes[self.class_idx];
                if let Some(mi) = class
                    .methods
                    .iter()
                    .position(|m| m.name == name && m.params.len() == args.len())
                {
                    return self.client_call(self.class_idx, mi, args, name);
                }
                let self_ty = class.ty;
                if let Some(m) = self
                    .pick_api_overload(self.api.lookup_instance_method(self_ty, name, args.len()), &args)
                {
                    let cast_sites = collect_casts_of_args(&args);
                    self.casts.extend(cast_sites);
                    let def = self.api.method(m);
                    let this = Val { ty: self_ty, kind: ValKind::Var("this".to_owned()) };
                    return Ok(Val {
                        ty: def.ret,
                        kind: ValKind::ApiCall { method: m, recv: Some(Box::new(this)), args },
                    });
                }
                Err(self.err(format!(
                    "no method `{name}/{}` in class {} or its supertypes",
                    args.len(),
                    self.corpus.classes[self.class_idx].name
                )))
            }
            Some(Expr::Name { parts }) => {
                match self.lower_name(parts)? {
                    Lowered::TypeRef(ty) => {
                        // Static API call or static client call.
                        if let Some(m) = self
                            .pick_api_overload(self.api.lookup_static_method(ty, name, args.len()), &args)
                        {
                            let cast_sites = collect_casts_of_args(&args);
                            self.casts.extend(cast_sites);
                            let def = self.api.method(m);
                            return Ok(Val {
                                ty: def.ret,
                                kind: ValKind::ApiCall { method: m, recv: None, args },
                            });
                        }
                        if let Some(ci) = self.corpus.class_of_ty(ty) {
                            if let Some(mi) = self.corpus.classes[ci]
                                .methods
                                .iter()
                                .position(|m| m.name == name && m.params.len() == args.len())
                            {
                                return self.client_call(ci, mi, args, name);
                            }
                        }
                        Err(self.err(format!(
                            "no static method `{name}/{}` on {}",
                            args.len(),
                            self.api.types().display(ty)
                        )))
                    }
                    lowered => {
                        let r = lowered.into_value(self)?;
                        self.instance_call(r, name, args)
                    }
                }
            }
            Some(other) => {
                let r = self.lower_expr(other)?;
                self.instance_call(r, name, args)
            }
        }
    }

    fn instance_call(&mut self, recv: Val, name: &str, args: Vec<Val>) -> Result<Val, LowerError> {
        if let Some(m) =
            self.pick_api_overload(self.api.lookup_instance_method(recv.ty, name, args.len()), &args)
        {
            let cast_sites = collect_casts_of_args(&args);
            self.casts.extend(cast_sites);
            let def = self.api.method(m);
            return Ok(Val {
                ty: def.ret,
                kind: ValKind::ApiCall { method: m, recv: Some(Box::new(recv)), args },
            });
        }
        // A client instance method?
        if let Some(ci) = self.corpus.class_of_ty(recv.ty) {
            if let Some(mi) = self.corpus.classes[ci]
                .methods
                .iter()
                .position(|m| !m.is_static && m.name == name && m.params.len() == args.len())
            {
                return self.client_call(ci, mi, args, name);
            }
        }
        Err(self.err(format!(
            "no method `{name}/{}` on {}",
            args.len(),
            self.api.types().display(recv.ty)
        )))
    }

    fn client_call(
        &mut self,
        class_idx: usize,
        method_idx: usize,
        args: Vec<Val>,
        name: &str,
    ) -> Result<Val, LowerError> {
        let callee = &self.corpus.classes[class_idx].methods[method_idx];
        let Some(ret) = callee.ret else {
            // A void client call is fine as a statement; we record the
            // call site (for parameter jumps) and give it the void type so
            // it cannot be used as a value downstream.
            self.sites.push(((class_idx, method_idx), args.clone()));
            let cast_sites = collect_casts_of_args(&args);
            self.casts.extend(cast_sites);
            return Ok(Val {
                ty: self.api.types().void(),
                kind: ValKind::ClientCall { class_idx, method_idx, args },
            });
        };
        let _ = name;
        self.sites.push(((class_idx, method_idx), args.clone()));
        let cast_sites = collect_casts_of_args(&args);
        self.casts.extend(cast_sites);
        Ok(Val { ty: ret, kind: ValKind::ClientCall { class_idx, method_idx, args } })
    }

    /// Picks the first candidate whose parameters accept the argument
    /// types.
    fn pick_api_overload(&self, candidates: Vec<MethodId>, args: &[Val]) -> Option<MethodId> {
        candidates.into_iter().find(|&m| {
            let def = self.api.method(m);
            def.params.len() == args.len()
                && def.params.iter().zip(args).all(|(&p, a)| compatible(self.api, a.ty, p))
        })
    }

    /// Resolves a dotted name to a variable chain or a type reference.
    fn lower_name(&mut self, parts: &[String]) -> Result<Lowered, LowerError> {
        // Variables shadow types.
        if let Some(&ty) = self.locals.get(&parts[0]) {
            let mut val = Val { ty, kind: ValKind::Var(parts[0].clone()) };
            for name in &parts[1..] {
                let field = self
                    .api
                    .lookup_field(val.ty, name)
                    .filter(|&f| !self.api.field(f).is_static)
                    .ok_or_else(|| {
                        self.err(format!(
                            "no instance field `{name}` on {}",
                            self.api.types().display(val.ty)
                        ))
                    })?;
                val = Val {
                    ty: self.api.field(field).ty,
                    kind: ValKind::GetField { recv: Box::new(val), field },
                };
            }
            return Ok(Lowered::Value(val));
        }
        // Longest type prefix (qualified or simple).
        for k in (1..=parts.len()).rev() {
            let joined = parts[..k].join(".");
            let Ok(ty) = self.api.types().resolve(&joined) else { continue };
            if k == parts.len() {
                return Ok(Lowered::TypeRef(ty));
            }
            // parts[k] is a static field of `ty`, the rest instance fields.
            let field = self
                .api
                .lookup_field(ty, &parts[k])
                .filter(|&f| self.api.field(f).is_static)
                .ok_or_else(|| {
                    self.err(format!(
                        "no static field `{}` on {}",
                        parts[k],
                        self.api.types().display(ty)
                    ))
                })?;
            let mut val = Val { ty: self.api.field(field).ty, kind: ValKind::StaticField(field) };
            for name in &parts[k + 1..] {
                let f = self
                    .api
                    .lookup_field(val.ty, name)
                    .filter(|&f| !self.api.field(f).is_static)
                    .ok_or_else(|| {
                        self.err(format!(
                            "no instance field `{name}` on {}",
                            self.api.types().display(val.ty)
                        ))
                    })?;
                val =
                    Val { ty: self.api.field(f).ty, kind: ValKind::GetField { recv: Box::new(val), field: f } };
            }
            return Ok(Lowered::Value(val));
        }
        Err(self.err(format!("cannot resolve name `{}`", parts.join("."))))
    }
}

/// Whether a value of type `vty` may be supplied where `pty` is expected.
fn compatible(api: &Api, vty: TyId, pty: TyId) -> bool {
    if vty == pty {
        return true;
    }
    if vty == api.types().null() {
        return api.types().is_reference(pty);
    }
    api.types().is_reference(vty) && api.types().is_reference(pty) && api.types().is_subtype(vty, pty)
}

/// Casts may hide inside argument positions; surface them as seeds.
fn collect_casts_of_args(args: &[Val]) -> Vec<Val> {
    let mut out = Vec::new();
    for a in args {
        collect_casts(a, &mut out);
    }
    out
}

fn collect_casts(v: &Val, out: &mut Vec<Val>) {
    match &v.kind {
        ValKind::Cast { val, .. } => {
            out.push(v.clone());
            collect_casts(val, out);
        }
        ValKind::New { args, .. } | ValKind::ClientCall { args, .. } => {
            for a in args {
                collect_casts(a, out);
            }
        }
        ValKind::ApiCall { recv, args, .. } => {
            if let Some(r) = recv {
                collect_casts(r, out);
            }
            for a in args {
                collect_casts(a, out);
            }
        }
        ValKind::GetField { recv, .. } => collect_casts(recv, out),
        _ => {}
    }
}

/// Resolution result for a dotted name.
enum Lowered {
    Value(Val),
    TypeRef(TyId),
}

impl Lowered {
    fn into_value(self, cx: &MethodCx<'_>) -> Result<Val, LowerError> {
        match self {
            Lowered::Value(v) => Ok(v),
            Lowered::TypeRef(ty) => Err(cx.err(format!(
                "type `{}` used as a value",
                cx.api.types().display(ty)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::ApiLoader;
    use jungloid_minijava::parse::parse_unit;

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "ui.api",
                r"
                package ui;
                public interface ISelection { boolean isEmpty(); }
                public interface IStructuredSelection extends ISelection { Object getFirstElement(); }
                public class Viewer { ISelection getSelection(); }
                public interface IDebugView { Viewer getViewer(); Object getAdapter(Class c); }
                public class JavaInspectExpression {}
                public class Registry {
                    static Registry getDefault();
                    Viewer lookup(String key);
                    Viewer cached;
                    static Registry INSTANCE;
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn lower_src(api: &mut Api, src: &str) -> Result<LoweredCorpus, LowerError> {
        let unit = parse_unit("client.mj", src).unwrap();
        LoweredCorpus::lower(api, &[unit])
    }

    #[test]
    fn figure2_lowering() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class DebugHelper {
                Object selectedWatchExpression(IDebugView debugger) {
                    Viewer viewer = debugger.getViewer();
                    IStructuredSelection sel = (IStructuredSelection) viewer.getSelection();
                    JavaInspectExpression expr = (JavaInspectExpression) sel.getFirstElement();
                    return expr;
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(corpus.classes.len(), 1);
        let m = &corpus.classes[0].methods[0];
        assert_eq!(m.casts.len(), 2);
        assert_eq!(m.returns.len(), 1);
        assert_eq!(corpus.cast_count(), 2);
        // The first cast's operand is the getSelection() API call.
        let ValKind::Cast { val, .. } = &m.casts[0].kind else { panic!() };
        assert!(matches!(val.kind, ValKind::ApiCall { .. }));
    }

    #[test]
    fn client_classes_enter_the_hierarchy() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r"
            package corpus;
            class MyViewer extends Viewer {
                ISelection current() {
                    MyViewer self = null;
                    return self.getSelection();
                }
            }
            ",
        )
        .unwrap();
        let my = api.types().resolve("MyViewer").unwrap();
        let viewer = api.types().resolve("Viewer").unwrap();
        assert!(api.types().is_subtype(my, viewer));
        assert_eq!(corpus.class_of_ty(my), Some(0));
        // Inherited API method resolved through the hierarchy.
        let m = &corpus.classes[0].methods[0];
        assert!(matches!(
            m.returns[0].kind,
            ValKind::ApiCall { .. }
        ));
    }

    #[test]
    fn flow_insensitive_defs_accumulate() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class Multi {
                Viewer pick(IDebugView a, IDebugView b) {
                    Viewer v = a.getViewer();
                    v = b.getViewer();
                    return v;
                }
            }
            "#,
        )
        .unwrap();
        let m = &corpus.classes[0].methods[0];
        assert_eq!(m.defs["v"].len(), 2);
    }

    #[test]
    fn client_call_sites_recorded_for_param_jumps() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class A {
                ISelection helper(Viewer v) {
                    return v.getSelection();
                }
                ISelection use(IDebugView d) {
                    return helper(d.getViewer());
                }
            }
            "#,
        )
        .unwrap();
        // helper is method 0 of class 0.
        let sites = corpus.call_sites(0, 0);
        assert_eq!(sites.len(), 1);
        assert!(matches!(sites[0].args[0].kind, ValKind::ApiCall { .. }));
    }

    #[test]
    fn static_members_and_field_chains() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class B {
                Viewer viaStatic() {
                    Registry r = Registry.getDefault();
                    return r.cached;
                }
                Viewer viaStaticField() {
                    return Registry.INSTANCE.cached;
                }
            }
            "#,
        )
        .unwrap();
        let m0 = &corpus.classes[0].methods[0];
        assert!(matches!(m0.returns[0].kind, ValKind::GetField { .. }));
        let m1 = &corpus.classes[0].methods[1];
        let ValKind::GetField { recv, .. } = &m1.returns[0].kind else { panic!() };
        assert!(matches!(recv.kind, ValKind::StaticField(_)));
    }

    #[test]
    fn overload_and_literal_args() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class C {
                Viewer go() {
                    Registry r = Registry.getDefault();
                    return r.lookup("viewer-key");
                }
                Object adapt(IDebugView d) {
                    return d.getAdapter(IDebugView.class);
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(corpus.classes[0].methods.len(), 2);
    }

    #[test]
    fn resolution_errors_are_reported() {
        let mut api = api();
        let err = lower_src(
            &mut api,
            r"
            package corpus;
            class Bad {
                void m(Viewer v) {
                    v.noSuchMethod();
                }
            }
            ",
        );
        // Effect-only statements are lowered best-effort, so the unknown
        // call is tolerated; but a *value* use fails.
        assert!(err.is_ok());
        let mut api2 = api;
        let err2 = lower_src(
            &mut api2,
            r"
            package corpus2;
            class Bad2 {
                Viewer m(Viewer v) {
                    Viewer x = v.noSuchMethod();
                    return x;
                }
            }
            ",
        );
        assert!(err2.is_err());
        assert!(err2.unwrap_err().to_string().contains("noSuchMethod"));
    }

    #[test]
    fn undeclared_assignment_rejected() {
        let mut api = api();
        let err = lower_src(
            &mut api,
            r"
            package corpus;
            class Bad {
                Viewer m(IDebugView d) {
                    x = d.getViewer();
                    return x;
                }
            }
            ",
        );
        assert!(err.is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut api = api();
        let err = lower_src(
            &mut api,
            r"
            package corpus;
            class Bad {
                void m(IDebugView d) {
                    ISelection s = d.getViewer();
                    return;
                }
            }
            ",
        );
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("cannot assign"));
    }

    #[test]
    fn control_flow_pools_definitions() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class Guarded {
                ISelection robust(Viewer v, IDebugView d) {
                    ISelection s = v.getSelection();
                    if (s == null) {
                        s = d.getViewer().getSelection();
                    } else {
                        s = v.getSelection();
                    }
                    while (s.isEmpty()) {
                        s = v.getSelection();
                    }
                    return s;
                }
            }
            "#,
        )
        .unwrap();
        let m = &corpus.classes[0].methods[0];
        // Initializer + both if-arms + while-body: four flow-insensitive defs.
        assert_eq!(m.defs["s"].len(), 4);
        // The conditions were lowered too (they carry potential seeds).
        assert!(!m.stmt_vals.is_empty());
    }

    #[test]
    fn casts_in_branches_are_seeds() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class Branchy {
                Object pick(Viewer v, boolean deep) {
                    if (deep) {
                        IStructuredSelection sel = (IStructuredSelection) v.getSelection();
                        return sel.getFirstElement();
                    }
                    return v.getSelection();
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(corpus.cast_count(), 1);
    }

    #[test]
    fn casts_inside_arguments_are_seeds() {
        let mut api = api();
        let corpus = lower_src(
            &mut api,
            r#"
            package corpus;
            class D {
                boolean m(Viewer v, Object o) {
                    ISelection s = (ISelection) o;
                    return s.isEmpty();
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(corpus.cast_count(), 1);
    }
}
