//! The backward, interprocedural, flow-insensitive example extractor
//! (§4.2).

use std::collections::HashSet;

use jungloid_apidef::elem::elems_of_method;
use jungloid_apidef::{Api, ElemJungloid, InputSlot};
use jungloid_typesys::TyId;

use crate::lower::{LoweredCorpus, Val, ValKind};

/// Extraction limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinerConfig {
    /// Maximum example jungloids per cast site (the paper caps this to
    /// avoid the gigabytes-of-examples blowup it reports).
    pub max_examples_per_cast: usize,
    /// Maximum elementary jungloids per example.
    pub max_steps: usize,
    /// Walk-invocation budget per cast site (backstop against path
    /// explosion before the per-cast cap bites).
    pub max_expansions: usize,
    /// Mine cast sites on multiple threads.
    pub parallel: bool,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            max_examples_per_cast: 64,
            max_steps: 16,
            max_expansions: 50_000,
            parallel: true,
        }
    }
}

/// What mining produced.
#[derive(Clone, Debug, Default)]
pub struct MineReport {
    /// Extracted example jungloids (deduplicated), each ending in a
    /// downcast.
    pub examples: Vec<Vec<ElemJungloid>>,
    /// Number of downcast seeds examined.
    pub cast_sites: usize,
    /// Seeds whose extraction hit the per-cast cap or budget.
    pub capped_casts: usize,
}

/// The example-jungloid extractor.
#[derive(Debug)]
pub struct Miner<'a> {
    api: &'a Api,
    corpus: &'a LoweredCorpus,
    /// Limits.
    pub config: MinerConfig,
}

impl<'a> Miner<'a> {
    /// A miner over a lowered corpus.
    #[must_use]
    pub fn new(api: &'a Api, corpus: &'a LoweredCorpus) -> Self {
        Miner { api, corpus, config: MinerConfig::default() }
    }

    /// Extracts example jungloids from every downcast site.
    #[must_use]
    pub fn mine(&self) -> MineReport {
        // Seeds: every cast whose target strictly narrows its operand.
        let mut seeds: Vec<(usize, usize, &Val)> = Vec::new();
        for (ci, class) in self.corpus.classes.iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                for cast in &method.casts {
                    let ValKind::Cast { to, val } = &cast.kind else { continue };
                    if *to != val.ty && self.api.types().is_subtype(*to, val.ty) {
                        seeds.push((ci, mi, cast));
                    }
                }
            }
        }
        let run_seed = |&(ci, mi, cast): &(usize, usize, &Val)| {
            let mut walk = Walk {
                api: self.api,
                corpus: self.corpus,
                config: &self.config,
                expansions: 0,
                visited_vars: HashSet::new(),
                inlining: Vec::new(),
            };
            let partials = walk.walk(cast, ci, mi);
            let mut examples: Vec<Vec<ElemJungloid>> = Vec::new();
            for p in partials {
                // Leading widenings carry no code; dropping them makes the
                // example enter the graph at the widened-to (API-level)
                // type rather than at a corpus-private subclass.
                let mut steps = p.steps;
                while steps.first().is_some_and(ElemJungloid::is_widen) {
                    steps.remove(0);
                }
                if steps.last().is_some_and(ElemJungloid::is_downcast) && !examples.contains(&steps)
                {
                    examples.push(steps);
                }
            }
            let over_budget = walk.expansions >= self.config.max_expansions;
            let capped = examples.len() > self.config.max_examples_per_cast || over_budget;
            examples.truncate(self.config.max_examples_per_cast);
            (examples, capped)
        };

        let results: Vec<(Vec<Vec<ElemJungloid>>, bool)> =
            if self.config.parallel && seeds.len() >= 8 {
                let threads = std::thread::available_parallelism().map_or(4, usize::from).min(8);
                let chunk = seeds.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = seeds
                        .chunks(chunk)
                        .map(|part| scope.spawn(move || part.iter().map(run_seed).collect::<Vec<_>>()))
                        .collect();
                    handles.into_iter().flat_map(|h| h.join().expect("miner thread")).collect()
                })
            } else {
                seeds.iter().map(run_seed).collect()
            };

        let mut report = MineReport { examples: Vec::new(), cast_sites: seeds.len(), capped_casts: 0 };
        for (examples, capped) in results {
            if capped {
                report.capped_casts += 1;
            }
            for e in examples {
                if !report.examples.contains(&e) {
                    report.examples.push(e);
                }
            }
        }
        prospector_obs::add("mine.cast_sites", report.cast_sites as u64);
        prospector_obs::add("mine.capped_casts", report.capped_casts as u64);
        prospector_obs::add("mine.examples", report.examples.len() as u64);
        report
    }
}

/// What §4.3 parameter mining produced.
#[derive(Clone, Debug, Default)]
pub struct ParamMineReport {
    /// Extracted examples, each ending in the `Call` elementary whose
    /// weakly typed parameter the example feeds.
    pub examples: Vec<Vec<ElemJungloid>>,
    /// Number of weakly typed argument sites examined.
    pub arg_sites: usize,
}

impl Miner<'_> {
    /// The §4.3 extension: mine which values client code actually passes
    /// into parameters of the given types (typically `Object` and
    /// `String`). "The algorithms would be the same, with methods having
    /// Object or String parameters playing the role of downcasts": for
    /// each such argument position, the backward walk collects the
    /// sequences producing the argument, terminated by the call itself.
    #[must_use]
    pub fn mine_params(&self, weak_tys: &[TyId]) -> ParamMineReport {
        let mut report = ParamMineReport::default();
        for (ci, class) in self.corpus.classes.iter().enumerate() {
            for (mi, method) in class.methods.iter().enumerate() {
                let mut roots: Vec<&Val> = Vec::new();
                roots.extend(method.returns.iter());
                roots.extend(method.stmt_vals.iter());
                roots.extend(method.defs.values().flatten());
                let mut sites: Vec<(jungloid_apidef::MethodId, usize, &Val)> = Vec::new();
                for root in roots {
                    collect_weak_arg_sites(self.api, root, weak_tys, &mut sites);
                }
                for (target, slot, arg) in sites {
                    report.arg_sites += 1;
                    let mut walk = Walk {
                        api: self.api,
                        corpus: self.corpus,
                        config: &self.config,
                        expansions: 0,
                        visited_vars: HashSet::new(),
                        inlining: Vec::new(),
                    };
                    let terminal =
                        ElemJungloid::Call { method: target, input: Some(InputSlot::Arg(slot)) };
                    let mut found = 0usize;
                    for p in walk.walk(arg, ci, mi) {
                        // Skip trivial examples (literals straight into the
                        // parameter carry no usage information).
                        if p.steps.iter().all(ElemJungloid::is_widen) {
                            continue;
                        }
                        let Some(mut done) =
                            push_step(p, terminal, self.api, self.config.max_steps)
                        else {
                            continue;
                        };
                        while done.steps.first().is_some_and(ElemJungloid::is_widen) {
                            done.steps.remove(0);
                        }
                        if !report.examples.contains(&done.steps) {
                            report.examples.push(done.steps);
                            found += 1;
                            if found >= self.config.max_examples_per_cast {
                                break;
                            }
                        }
                    }
                }
            }
        }
        prospector_obs::add("mine.arg_sites", report.arg_sites as u64);
        prospector_obs::add("mine.param_examples", report.examples.len() as u64);
        report
    }
}

/// Finds every API call/constructor argument whose *declared* parameter
/// type is one of `weak_tys`, recursing through the value tree.
fn collect_weak_arg_sites<'v>(
    api: &Api,
    v: &'v Val,
    weak_tys: &[TyId],
    out: &mut Vec<(jungloid_apidef::MethodId, usize, &'v Val)>,
) {
    match &v.kind {
        ValKind::New { ctor, args } => {
            let def = api.method(*ctor);
            for (i, a) in args.iter().enumerate() {
                if def.params.get(i).is_some_and(|p| weak_tys.contains(p)) {
                    out.push((*ctor, i, a));
                }
                collect_weak_arg_sites(api, a, weak_tys, out);
            }
        }
        ValKind::ApiCall { method, recv, args } => {
            let def = api.method(*method);
            if let Some(r) = recv {
                collect_weak_arg_sites(api, r, weak_tys, out);
            }
            for (i, a) in args.iter().enumerate() {
                if def.params.get(i).is_some_and(|p| weak_tys.contains(p)) {
                    out.push((*method, i, a));
                }
                collect_weak_arg_sites(api, a, weak_tys, out);
            }
        }
        ValKind::ClientCall { args, .. } => {
            for a in args {
                collect_weak_arg_sites(api, a, weak_tys, out);
            }
        }
        ValKind::GetField { recv, .. } => collect_weak_arg_sites(api, recv, weak_tys, out),
        ValKind::Cast { val, .. } => collect_weak_arg_sites(api, val, weak_tys, out),
        _ => {}
    }
}

/// A backward-walk intermediate: the steps collected so far (in forward,
/// input-to-output order) and the type the partial currently produces.
#[derive(Clone, Debug)]
struct Partial {
    steps: Vec<ElemJungloid>,
    out_ty: TyId,
}

struct Walk<'a> {
    api: &'a Api,
    corpus: &'a LoweredCorpus,
    config: &'a MinerConfig,
    expansions: usize,
    /// `(class, method, var)` guard against cyclic def/param chasing.
    visited_vars: HashSet<(usize, usize, String)>,
    /// Inlining stack guard against mutually recursive client methods.
    inlining: Vec<(usize, usize)>,
}

impl Walk<'_> {
    /// All partials whose value can flow into `v`.
    fn walk(&mut self, v: &Val, ci: usize, mi: usize) -> Vec<Partial> {
        self.expansions += 1;
        if self.expansions >= self.config.max_expansions {
            return Vec::new();
        }
        match &v.kind {
            ValKind::Var(name) => self.walk_var(name, v.ty, ci, mi),
            ValKind::New { ctor, args } => self.walk_call(*ctor, None, args, ci, mi),
            ValKind::ApiCall { method, recv, args } => {
                let mut out = self.walk_call(*method, recv.as_deref(), args, ci, mi);
                // Second interpretation: inline client overrides (CHA).
                if let Some(r) = recv {
                    let def = self.api.method(*method);
                    for (oc, om) in
                        self.corpus.client_overrides(self.api, r.ty, &def.name, args.len())
                    {
                        out.extend(self.inline(oc, om, v.ty));
                    }
                }
                out
            }
            ValKind::ClientCall { class_idx, method_idx, .. } => {
                self.inline(*class_idx, *method_idx, v.ty)
            }
            ValKind::StaticField(f) => {
                let elem = ElemJungloid::FieldAccess { field: *f };
                vec![Partial { steps: vec![elem], out_ty: elem.output_ty(self.api) }]
            }
            ValKind::GetField { recv, field } => {
                let elem = ElemJungloid::FieldAccess { field: *field };
                let subs = self.walk(recv, ci, mi);
                self.append_all(subs, elem)
            }
            ValKind::Cast { to, val } => {
                let subs = self.walk(val, ci, mi);
                let mut out = Vec::new();
                for p in subs {
                    if p.out_ty == *to {
                        out.push(p); // cast redundant along this path
                    } else if self.api.types().is_subtype(*to, p.out_ty) {
                        let elem = ElemJungloid::Downcast { from: p.out_ty, to: *to };
                        if let Some(p2) = push_step(p, elem, self.api, self.config.max_steps) {
                            out.push(p2);
                        }
                    } else if self.api.types().is_subtype(p.out_ty, *to) {
                        let mut p2 = p;
                        p2.steps.push(ElemJungloid::Widen { from: p2.out_ty, to: *to });
                        p2.out_ty = *to;
                        out.push(p2);
                    }
                    // Unrelated types (e.g. cross-interface casts): drop.
                }
                out
            }
            ValKind::Str | ValKind::ClassLit => {
                vec![Partial { steps: Vec::new(), out_ty: v.ty }]
            }
            ValKind::Int | ValKind::Bool | ValKind::Null => Vec::new(),
        }
    }

    /// Defs within the method (flow-insensitive), plus parameter jumps to
    /// every call site (interprocedural); a parameter with no call sites
    /// terminates the walk at its declared type.
    fn walk_var(&mut self, name: &str, declared: TyId, ci: usize, mi: usize) -> Vec<Partial> {
        // The implicit receiver of an inherited API call: a zero-argument
        // terminal typed by the enclosing class.
        if name == "this" {
            return vec![Partial { steps: Vec::new(), out_ty: declared }];
        }
        let key = (ci, mi, name.to_owned());
        if !self.visited_vars.insert(key.clone()) {
            return Vec::new();
        }
        let method = &self.corpus.classes[ci].methods[mi];
        let mut out = Vec::new();
        if let Some(defs) = method.defs.get(name) {
            let defs = defs.clone();
            for def in &defs {
                out.extend(self.walk(def, ci, mi));
            }
        }
        if let Some(pos) = method.params.iter().position(|(n, _)| n == name) {
            let sites = self.corpus.call_sites(ci, mi).to_vec();
            if sites.is_empty() && out.is_empty() {
                out.push(Partial { steps: Vec::new(), out_ty: declared });
            } else {
                for site in &sites {
                    if let Some(arg) = site.args.get(pos) {
                        out.extend(self.walk(arg, site.caller_class, site.caller_method));
                    }
                }
            }
        }
        self.visited_vars.remove(&key);
        out
    }

    /// The first interpretation: the call as an elementary jungloid
    /// through each of its class-typed input slots (§2.1).
    fn walk_call(
        &mut self,
        method: jungloid_apidef::MethodId,
        recv: Option<&Val>,
        args: &[Val],
        ci: usize,
        mi: usize,
    ) -> Vec<Partial> {
        let mut out = Vec::new();
        for elem in elems_of_method(self.api, method) {
            let ElemJungloid::Call { input, .. } = elem else { continue };
            match input {
                None => out.push(Partial { steps: vec![elem], out_ty: elem.output_ty(self.api) }),
                Some(InputSlot::Receiver) => {
                    if let Some(r) = recv {
                        let subs = self.walk(r, ci, mi);
                        out.extend(self.append_all(subs, elem));
                    }
                }
                Some(InputSlot::Arg(i)) => {
                    if let Some(a) = args.get(i) {
                        let subs = self.walk(a, ci, mi);
                        out.extend(self.append_all(subs, elem));
                    }
                }
            }
        }
        out
    }

    /// The second interpretation: inline a client method, walking its
    /// return values. Parameters inside the callee jump back out through
    /// the global call-site index.
    fn inline(&mut self, ci: usize, mi: usize, expect_ty: TyId) -> Vec<Partial> {
        if self.inlining.contains(&(ci, mi)) {
            return Vec::new();
        }
        self.inlining.push((ci, mi));
        let returns = self.corpus.classes[ci].methods[mi].returns.clone();
        let mut out = Vec::new();
        for r in &returns {
            for p in self.walk(r, ci, mi) {
                // Glue the callee's produced type to the caller's expected
                // static type if they differ by widening.
                if p.out_ty == expect_ty || self.api.types().is_subtype(p.out_ty, expect_ty) {
                    out.push(p);
                }
            }
        }
        self.inlining.pop();
        out
    }

    fn append_all(&self, subs: Vec<Partial>, elem: ElemJungloid) -> Vec<Partial> {
        subs.into_iter()
            .filter_map(|p| push_step(p, elem, self.api, self.config.max_steps))
            .collect()
    }
}

/// Appends `elem` to a partial, inserting a widening conversion when the
/// partial's current type is a strict subtype of the step's input type;
/// drops the path if the types are incompatible or the step budget is
/// exceeded.
fn push_step(mut p: Partial, elem: ElemJungloid, api: &Api, max_steps: usize) -> Option<Partial> {
    let expect = elem.input_ty(api);
    if p.out_ty != expect {
        if api.types().is_subtype(p.out_ty, expect) {
            p.steps.push(ElemJungloid::Widen { from: p.out_ty, to: expect });
        } else {
            return None;
        }
    }
    p.steps.push(elem);
    p.out_ty = elem.output_ty(api);
    if p.steps.iter().filter(|e| !e.is_widen()).count() > max_steps {
        return None;
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::LoweredCorpus;
    use jungloid_apidef::ApiLoader;
    use jungloid_minijava::parse::parse_unit;

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "debug.api",
                r"
                package ui;
                public interface ISelection { boolean isEmpty(); }
                public interface IStructuredSelection extends ISelection { Object getFirstElement(); }
                public class Viewer { ISelection getSelection(); Object getInput(); }
                public interface IDebugView { Viewer getViewer(); }
                public class JavaInspectExpression {}
                public class WorkbenchPlugin {
                    static IDebugView getActiveDebugView();
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn mine_src(src: &str) -> (Api, MineReport) {
        let mut api = api();
        let unit = parse_unit("client.mj", src).unwrap();
        let corpus = LoweredCorpus::lower(&mut api, &[unit]).unwrap();
        let mut miner = Miner::new(&api, &corpus);
        miner.config.parallel = false;
        let report = miner.mine();
        (api, report)
    }

    fn describe(api: &Api, e: &[ElemJungloid]) -> String {
        e.iter().map(|s| s.label(api)).collect::<Vec<_>>().join(" . ")
    }

    #[test]
    fn figure2_examples_extracted() {
        let (api, report) = mine_src(
            r#"
            package corpus;
            class DebugHelper {
                Object selected(IDebugView debugger) {
                    Viewer viewer = debugger.getViewer();
                    IStructuredSelection sel = (IStructuredSelection) viewer.getSelection();
                    JavaInspectExpression expr = (JavaInspectExpression) sel.getFirstElement();
                    return expr;
                }
            }
            "#,
        );
        assert_eq!(report.cast_sites, 2);
        assert_eq!(report.capped_casts, 0);
        let descs: Vec<String> = report.examples.iter().map(|e| describe(&api, e)).collect();
        // The inner cast's example: getViewer . getSelection . (IStructuredSelection)
        assert!(
            descs.iter().any(|d| d
                == "IDebugView.getViewer . Viewer.getSelection . (IStructuredSelection)"),
            "got {descs:?}"
        );
        // The outer cast's example chains through the first cast.
        assert!(
            descs.iter().any(|d| d.ends_with(
                "(IStructuredSelection) . IStructuredSelection.getFirstElement . (JavaInspectExpression)"
            )),
            "got {descs:?}"
        );
        // Every example ends in a downcast and is well-typed when spliced.
        for e in &report.examples {
            assert!(e.last().unwrap().is_downcast());
        }
    }

    #[test]
    fn flow_insensitive_defs_branch() {
        let (api, report) = mine_src(
            r#"
            package corpus;
            class Multi {
                IStructuredSelection pick(Viewer a, Viewer b) {
                    ISelection s = a.getSelection();
                    s = b.getSelection();
                    return (IStructuredSelection) s;
                }
            }
            "#,
        );
        // Both defs reach the cast, but they produce the same elementary
        // steps (receiver slot of getSelection), so one example remains.
        assert_eq!(report.cast_sites, 1);
        assert_eq!(report.examples.len(), 1);
        assert_eq!(
            describe(&api, &report.examples[0]),
            "Viewer.getSelection . (IStructuredSelection)"
        );
    }

    #[test]
    fn interprocedural_param_jump() {
        let (api, report) = mine_src(
            r#"
            package corpus;
            class Helper {
                IStructuredSelection narrow(ISelection s) {
                    return (IStructuredSelection) s;
                }
                IStructuredSelection use(IDebugView d) {
                    return narrow(d.getViewer().getSelection());
                }
            }
            "#,
        );
        assert_eq!(report.cast_sites, 1);
        let descs: Vec<String> = report.examples.iter().map(|e| describe(&api, e)).collect();
        // The cast's operand is parameter `s`; its value comes from the
        // call site in `use`, giving the full chain.
        assert!(
            descs.contains(
                &"IDebugView.getViewer . Viewer.getSelection . (IStructuredSelection)".to_owned()
            ),
            "got {descs:?}"
        );
    }

    #[test]
    fn param_without_call_sites_terminates() {
        let (api, report) = mine_src(
            r#"
            package corpus;
            class Lone {
                IStructuredSelection narrow(ISelection s) {
                    return (IStructuredSelection) s;
                }
            }
            "#,
        );
        assert_eq!(report.examples.len(), 1);
        assert_eq!(describe(&api, &report.examples[0]), "(IStructuredSelection)");
    }

    #[test]
    fn client_inlining_interpretation() {
        let (api, report) = mine_src(
            r#"
            package corpus;
            class Inline {
                Viewer fetch(IDebugView d) {
                    return d.getViewer();
                }
                IStructuredSelection go(IDebugView d) {
                    ISelection s = fetch(d).getSelection();
                    return (IStructuredSelection) s;
                }
            }
            "#,
        );
        let descs: Vec<String> = report.examples.iter().map(|e| describe(&api, e)).collect();
        // Inlining `fetch` exposes getViewer.
        assert!(
            descs.contains(
                &"IDebugView.getViewer . Viewer.getSelection . (IStructuredSelection)".to_owned()
            ),
            "got {descs:?}"
        );
    }

    #[test]
    fn zero_arg_static_terminates() {
        let (api, report) = mine_src(
            r#"
            package corpus;
            class Zero {
                IStructuredSelection go() {
                    ISelection s = WorkbenchPlugin.getActiveDebugView().getViewer().getSelection();
                    return (IStructuredSelection) s;
                }
            }
            "#,
        );
        let descs: Vec<String> = report.examples.iter().map(|e| describe(&api, e)).collect();
        assert!(
            descs.contains(
                &"WorkbenchPlugin.getActiveDebugView . IDebugView.getViewer . Viewer.getSelection . (IStructuredSelection)"
                    .to_owned()
            ),
            "got {descs:?}"
        );
    }

    #[test]
    fn upcasts_are_not_seeds() {
        let (_, report) = mine_src(
            r#"
            package corpus;
            class Up {
                ISelection go(IStructuredSelection s) {
                    return (ISelection) s;
                }
            }
            "#,
        );
        assert_eq!(report.cast_sites, 0);
        assert!(report.examples.is_empty());
    }

    #[test]
    fn recursion_does_not_hang() {
        let (_, report) = mine_src(
            r#"
            package corpus;
            class Rec {
                ISelection spin(ISelection s) {
                    ISelection t = spin(s);
                    return t;
                    return s;
                }
                IStructuredSelection go(Viewer v) {
                    ISelection s = spin(v.getSelection());
                    return (IStructuredSelection) s;
                }
            }
            "#,
        );
        assert_eq!(report.cast_sites, 1);
        // The non-recursive path must still be found.
        assert!(!report.examples.is_empty());
    }

    #[test]
    fn cap_limits_examples() {
        // Eight parallel defs reaching one cast; cap at 3.
        let src = r#"
            package corpus;
            class Many {
                IStructuredSelection go(Viewer a, Viewer b, Viewer c, Viewer d, IDebugView e) {
                    ISelection s = a.getSelection();
                    s = b.getSelection();
                    s = c.getSelection();
                    s = d.getSelection();
                    s = e.getViewer().getSelection();
                    return (IStructuredSelection) s;
                }
            }
        "#;
        let mut api = api();
        let unit = parse_unit("client.mj", src).unwrap();
        let corpus = LoweredCorpus::lower(&mut api, &[unit]).unwrap();
        let mut miner = Miner::new(&api, &corpus);
        miner.config.parallel = false;
        miner.config.max_examples_per_cast = 1;
        let report = miner.mine();
        assert_eq!(report.examples.len(), 1);
        assert_eq!(report.capped_casts, 1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let src = r#"
            package corpus;
            class P {
                IStructuredSelection a(Viewer v) { return (IStructuredSelection) v.getSelection(); }
                IStructuredSelection b(IDebugView d) { return (IStructuredSelection) d.getViewer().getSelection(); }
                JavaInspectExpression c(IStructuredSelection s) { return (JavaInspectExpression) s.getFirstElement(); }
                IStructuredSelection d(Viewer v) { return (IStructuredSelection) v.getSelection(); }
                IStructuredSelection e(Viewer v) { return (IStructuredSelection) v.getSelection(); }
                IStructuredSelection f(Viewer v) { return (IStructuredSelection) v.getSelection(); }
                IStructuredSelection g(Viewer v) { return (IStructuredSelection) v.getSelection(); }
                IStructuredSelection h(Viewer v) { return (IStructuredSelection) v.getSelection(); }
            }
        "#;
        let mut api = api();
        let unit = parse_unit("client.mj", src).unwrap();
        let corpus = LoweredCorpus::lower(&mut api, &[unit]).unwrap();
        let mut miner = Miner::new(&api, &corpus);
        miner.config.parallel = false;
        let serial = miner.mine();
        miner.config.parallel = true;
        let parallel = miner.mine();
        let mut a = serial.examples.clone();
        let mut b = parallel.examples.clone();
        a.sort_by_key(|e| format!("{e:?}"));
        b.sort_by_key(|e| format!("{e:?}"));
        assert_eq!(a, b);
    }
}
