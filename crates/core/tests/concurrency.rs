//! Concurrency stress tests for the query engine: many threads hammering
//! the same immutable engine — same-target queries (shared distance
//! field, cache hits), different-target queries (different cache shards),
//! and the batched fan-out — must all agree with the serial path exactly
//! and leave no lock poisoned.

use jungloid_apidef::{Api, ApiLoader};
use jungloid_typesys::TyId;
use prospector_core::Prospector;

/// A diamond-shaped API with enough distinct targets to spread across
/// cache shards and enough path multiplicity to make ranking non-trivial.
fn api() -> Api {
    let mut loader = ApiLoader::with_prelude();
    loader
        .add_source(
            "c.api",
            r"
            package c;
            public class A { B toB(); C toC(); }
            public class B { C toC(); D toD(); E toE(); }
            public class C { D toD(); }
            public class D { E toE(); }
            public class E {}
            public class F extends E {}
            public class Maker {
                static B makeB(A a);
                static F makeF(D d);
            }
            ",
        )
        .unwrap();
    loader.finish().unwrap()
}

fn ty(api: &Api, name: &str) -> TyId {
    api.types().resolve(name).unwrap()
}

/// The comparable fingerprint of a query result: ranked codes in order.
fn codes(engine: &Prospector, tin: TyId, tout: TyId) -> Vec<String> {
    engine
        .query(tin, tout)
        .unwrap()
        .suggestions
        .iter()
        .map(|s| s.code.clone())
        .collect()
}

#[test]
fn eight_threads_same_and_different_queries_match_serial() {
    let api = api();
    let a = ty(&api, "c.A");
    let b = ty(&api, "c.B");
    let c = ty(&api, "c.C");
    let d = ty(&api, "c.D");
    let e = ty(&api, "c.E");
    let engine = Prospector::new(api);

    // Serial reference answers, computed up front.
    let queries = [(a, e), (a, d), (b, e), (c, d), (a, c), (b, d)];
    let expected: Vec<Vec<String>> =
        queries.iter().map(|&(tin, tout)| codes(&engine, tin, tout)).collect();

    std::thread::scope(|scope| {
        for t in 0..8usize {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..20 {
                    // Half the threads hammer one shared query (same
                    // target -> same shard, cache-hit heavy); the rest
                    // rotate through different targets.
                    let qi = if t % 2 == 0 { 0 } else { (t + round) % queries.len() };
                    let (tin, tout) = queries[qi];
                    let got = codes(engine, tin, tout);
                    assert_eq!(got, expected[qi], "thread {t} round {round} diverged");
                }
            });
        }
    });

    // No lock was poisoned: the engine still answers afterwards.
    for (i, &(tin, tout)) in queries.iter().enumerate() {
        assert_eq!(codes(&engine, tin, tout), expected[i]);
    }
}

#[test]
fn query_batch_is_byte_identical_to_serial_loop() {
    let api = api();
    let a = ty(&api, "c.A");
    let b = ty(&api, "c.B");
    let c = ty(&api, "c.C");
    let d = ty(&api, "c.D");
    let e = ty(&api, "c.E");
    let engine = Prospector::new(api);

    // Repeat pairs so the batch exceeds any worker count and reuses
    // cached fields mid-flight.
    let mut queries = Vec::new();
    for _ in 0..5 {
        queries.extend_from_slice(&[(a, e), (b, d), (c, d), (a, b), (d, e), (a, d)]);
    }

    let serial: Vec<Vec<String>> =
        queries.iter().map(|&(tin, tout)| codes(&engine, tin, tout)).collect();

    for threads in [1, 2, 8] {
        let batch = engine.query_batch_threads(&queries, threads);
        assert_eq!(batch.len(), queries.len());
        for (i, entry) in batch.iter().enumerate() {
            assert_eq!((entry.tin, entry.tout), queries[i], "slot order preserved");
            let result = entry.result.as_ref().unwrap();
            let got: Vec<String> = result.suggestions.iter().map(|s| s.code.clone()).collect();
            assert_eq!(got, serial[i], "threads={threads} slot={i}");
        }
    }
}

/// The singleflight satellite: 8 threads issuing the same query
/// concurrently observe pipeline-runs-once semantics — exactly one
/// per-query miss across all threads, everyone else served from the
/// cache (collapsed onto the leader's flight, or hitting the entry the
/// leader published) — and all receive identical suggestion codes.
///
/// The fixture is a chain of binary diamonds (`D0 → … → D13`, two
/// methods per hop) so the leader's pipeline enumerates 2^13 paths and
/// runs for milliseconds: long enough that even a single-CPU scheduler
/// preempts it while followers are queued, which is what actually lands
/// them on the in-progress flight.
#[test]
fn eight_concurrent_identical_queries_run_the_pipeline_once() {
    const DEPTH: usize = 13;
    let mut src = String::from("package w;\n");
    for i in 0..DEPTH {
        let next = i + 1;
        src.push_str(&format!("public class D{i} {{ D{next} a(); D{next} b(); }}\n"));
    }
    src.push_str(&format!("public class D{DEPTH} {{}}\n"));
    let mut loader = ApiLoader::with_prelude();
    loader.add_source("w.api", &src).unwrap();
    let api = loader.finish().unwrap();
    let first = ty(&api, "w.D0");
    let last = ty(&api, &format!("w.D{DEPTH}"));
    let mut engine = Prospector::new(api);

    let collapsed_at = || {
        prospector_obs::snapshot().counter("engine.result_cache.collapsed").unwrap_or(0)
    };
    let collapsed_before = collapsed_at();
    // Each round bumps `max_results` (still far above the 2^13 result
    // set), which changes the result-cache key — so every round races on
    // a cold key without rebuilding the engine. One round is normally
    // enough; the retry absorbs scheduler flukes where the leader
    // finishes before any follower got scheduled at all.
    for round in 0..20 {
        engine.search.max_results = 10_000 + round;
        let barrier = std::sync::Barrier::new(8);
        let results: Vec<prospector_core::QueryResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let engine = &engine;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        engine.query(first, last).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let misses: u64 = results.iter().map(|r| r.stats.result_cache_misses).sum();
        let hits: u64 = results.iter().map(|r| r.stats.result_cache_hits).sum();
        assert_eq!(misses, 1, "exactly one thread runs the pipeline (round {round})");
        assert_eq!(hits, 7, "every other thread is served from the cache (round {round})");

        let reference: Vec<&str> =
            results[0].suggestions.iter().map(|s| s.code.as_str()).collect();
        assert_eq!(reference.len(), 1 << DEPTH, "all diamond combinations enumerated");
        for r in &results {
            let got: Vec<&str> = r.suggestions.iter().map(|s| s.code.as_str()).collect();
            assert_eq!(got, reference, "all threads receive identical suggestion codes");
            assert_eq!(r.truncation, results[0].truncation);
            assert_eq!(r.shortest, results[0].shortest);
        }

        if collapsed_at() > collapsed_before {
            return; // at least one follower provably joined an open flight
        }
    }
    panic!("no round collapsed a single concurrent query onto the leader's flight");
}

#[test]
fn query_batch_propagates_per_query_errors() {
    let api = api();
    let a = ty(&api, "c.A");
    let e = ty(&api, "c.E");
    let void = api.types().void();
    let engine = Prospector::new(api);

    // void as *output* is invalid; the slot fails, the batch survives.
    let batch = engine.query_batch_threads(&[(a, e), (a, void), (a, e)], 2);
    assert!(batch[0].result.is_ok());
    assert!(batch[1].result.is_err());
    assert!(batch[2].result.is_ok());
}
