//! Property tests over randomly generated APIs: search soundness and
//! completeness-within-window, ranking monotonicity, mined-path
//! reachability, and the generalization algorithm against a naive
//! reference implementation.
//!
//! APIs and walks are drawn from seeded deterministic generators —
//! failures reproduce by seed.

use jungloid_apidef::{Api, ElemJungloid, MethodDef, Visibility};
use jungloid_typesys::{Prim, TyId, TypeKind};
use prospector_core::generalize::generalize;
use prospector_core::{
    search, DistanceField, GraphConfig, Jungloid, JungloidGraph, Prospector, SearchConfig,
};
use prospector_obs::SmallRng;

/// Deterministically generates a random API from a seed.
fn random_api(seed: u64, n_classes: usize, n_methods: usize) -> Api {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut api = Api::new();
    api.types_mut().declare("java.lang", "Object", TypeKind::Class).unwrap();
    let mut classes = Vec::new();
    for i in 0..n_classes {
        let pkg = format!("p{}", rng.gen_range(0..3));
        let id = api.declare_class(&pkg, &format!("C{i}")).unwrap();
        if !classes.is_empty() && rng.gen_bool(0.4) {
            let sup = classes[rng.gen_range(0..classes.len())];
            api.types_mut().set_superclass(id, sup).unwrap();
        }
        classes.push(id);
    }
    for m in 0..n_methods {
        let declaring = classes[rng.gen_range(0..classes.len())];
        let is_ctor = rng.gen_bool(0.2);
        let is_static = !is_ctor && rng.gen_bool(0.3);
        let n_params = rng.gen_range(0..=2);
        let params: Vec<TyId> = (0..n_params)
            .map(|_| {
                if rng.gen_bool(0.15) {
                    api.types().prim(Prim::Int)
                } else {
                    classes[rng.gen_range(0..classes.len())]
                }
            })
            .collect();
        let ret = if is_ctor { declaring } else { classes[rng.gen_range(0..classes.len())] };
        let _ = api.add_method(MethodDef {
            name: if is_ctor { "<init>".into() } else { format!("m{m}") },
            declaring,
            params,
            param_names: Vec::new(),
            ret,
            visibility: Visibility::Public,
            is_static,
            is_constructor: is_ctor,
        });
    }
    api
}

fn classes_of(api: &Api) -> Vec<TyId> {
    api.types()
        .decls()
        .filter(|d| d.simple_name.starts_with('C'))
        .map(|d| d.id)
        .collect()
}

/// Forward 0-1 BFS reference for the shortest length.
fn reference_shortest(graph: &JungloidGraph, from: TyId, to: TyId) -> Option<u32> {
    use std::collections::VecDeque;
    let n = graph.node_count();
    let mut dist = vec![u32::MAX; n];
    let fi = graph.index_of(prospector_core::NodeId::Ty(from));
    dist[fi] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(fi);
    while let Some(i) = queue.pop_front() {
        for e in graph.out_edges(graph.node_at(i)) {
            let ti = graph.index_of(e.to);
            let nd = dist[i] + u32::from(!e.elem.is_widen());
            if nd < dist[ti] {
                dist[ti] = nd;
                if e.elem.is_widen() {
                    queue.push_front(ti);
                } else {
                    queue.push_back(ti);
                }
            }
        }
    }
    let t = dist[graph.index_of(prospector_core::NodeId::Ty(to))];
    (t != u32::MAX).then_some(t)
}

#[test]
fn enumeration_sound_and_windowed() {
    for seed in 0..48u64 {
        let api = random_api(seed, 8, 24);
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let classes = classes_of(&api);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        let tin = classes[rng.gen_range(0..classes.len())];
        let tout = classes[rng.gen_range(0..classes.len())];
        if tin == tout {
            continue;
        }

        let field = DistanceField::towards(&graph, tout);
        let outcome = search::enumerate(&graph, &[tin], tout, &field, &SearchConfig::default());

        // m agrees with an independent forward BFS (when any code-bearing
        // path exists; a pure-widening connection reports m=0 but yields
        // no jungloids).
        let reference = reference_shortest(&graph, tin, tout);
        assert_eq!(outcome.shortest, reference, "seed {seed}");

        let m = outcome.shortest.unwrap_or(0);
        let mut seen = Vec::new();
        for j in &outcome.jungloids {
            // Sound: well-typed, correct endpoints.
            j.validate(&api).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(j.source, tin);
            assert_eq!(j.output_ty(&api), tout);
            // Windowed: within m+1 non-widening steps.
            assert!(
                j.steps() >= 1 && j.steps() <= m + 1,
                "seed {seed}: length {} outside [1, {}]",
                j.steps(),
                m + 1
            );
            // Distinct.
            assert!(!seen.contains(j), "seed {seed}: duplicate path");
            seen.push(j.clone());
        }
        // Non-empty whenever a code-bearing path exists within the window.
        if reference.is_some_and(|r| r >= 1) && !outcome.truncation.truncated() {
            assert!(!outcome.jungloids.is_empty(), "seed {seed}");
        }
    }
}

#[test]
fn engine_ranking_monotone_and_deduped() {
    for seed in 0..48u64 {
        let api = random_api(seed, 7, 20);
        let classes = classes_of(&api);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
        let tin = classes[rng.gen_range(0..classes.len())];
        let tout = classes[rng.gen_range(0..classes.len())];
        if tin == tout {
            continue;
        }
        let engine = Prospector::new(api);
        let result = engine.query(tin, tout).unwrap();
        let mut codes = Vec::new();
        let mut prev: Option<prospector_core::RankKey> = None;
        for s in result.suggestions.iter() {
            assert!(!codes.contains(&s.code), "seed {seed}: duplicate code {}", s.code);
            codes.push(s.code.clone());
            if let Some(p) = &prev {
                assert!(p <= &s.key, "seed {seed}: rank order violated");
            }
            prev = Some(s.key.clone());
            // Rendered code reparses.
            jungloid_minijava::parse::parse_expr(&s.code)
                .unwrap_or_else(|e| panic!("seed {seed}: `{}` failed to parse: {e}", s.code));
        }
    }
}

#[test]
fn mined_examples_become_reachable() {
    for seed in 0..48u64 {
        let api = random_api(seed, 8, 24);
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let classes = classes_of(&api);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);

        // Random walk of 1..=3 code steps through the signature graph.
        let start = classes[rng.gen_range(0..classes.len())];
        let mut at = prospector_core::NodeId::Ty(start);
        let mut steps: Vec<ElemJungloid> = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let edges = graph.out_edges(at);
            if edges.is_empty() {
                break;
            }
            let e = edges[rng.gen_range(0..edges.len())];
            steps.push(e.elem);
            at = e.to;
        }
        if steps.is_empty() || steps.iter().all(ElemJungloid::is_widen) {
            continue;
        }
        // End with a downcast to a strict subtype of the walk's output.
        let out_ty = steps.last().unwrap().output_ty(&api);
        let subs = api.types().strict_subtypes(out_ty);
        let Some(&target) = subs.first() else { continue };
        steps.push(ElemJungloid::Downcast { from: out_ty, to: target });

        let j = Jungloid::new(&api, steps[0].input_ty(&api), steps.clone());
        assert!(j.is_ok(), "seed {seed}: constructed example must be well-typed: {:?}", j.err());

        let source = steps[0].input_ty(&api);
        let mut engine = Prospector::new(api);
        engine.add_examples(&[steps.clone()], false).unwrap();
        if source == engine.api().types().void() || source == target {
            continue;
        }
        let result = engine.query(source, target).unwrap();
        // The spliced path is guaranteed to surface only when it fits the
        // m+1 enumeration window (a shorter signature-only path may
        // exist — e.g. a constructor of the cast target).
        let mined_len = steps.iter().filter(|e| !e.is_widen()).count() as u32;
        let window = result.shortest.expect("target now reachable") + 1;
        if mined_len <= window {
            assert!(
                result.suggestions.iter().any(|s| s.jungloid.contains_downcast()),
                "seed {seed}: spliced example (len {mined_len}, window {window}) not reachable: {:?}",
                result.suggestions.iter().map(|s| &s.code).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn generalize_matches_reference() {
    for seed in 0..48u64 {
        let api = random_api(seed, 8, 24);
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let classes = classes_of(&api);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        let count = rng.gen_range(1..6usize);

        // Build `count` random cast-terminated examples.
        let mut examples: Vec<Vec<ElemJungloid>> = Vec::new();
        for _ in 0..count {
            let start = classes[rng.gen_range(0..classes.len())];
            let mut at = prospector_core::NodeId::Ty(start);
            let mut steps = Vec::new();
            for _ in 0..rng.gen_range(1..=3usize) {
                let edges = graph.out_edges(at);
                if edges.is_empty() {
                    break;
                }
                let e = edges[rng.gen_range(0..edges.len())];
                steps.push(e.elem);
                at = e.to;
            }
            if steps.is_empty() {
                continue;
            }
            let out_ty = steps.last().unwrap().output_ty(&api);
            let subs = api.types().strict_subtypes(out_ty);
            if subs.is_empty() {
                continue;
            }
            let target = subs[rng.gen_range(0..subs.len())];
            steps.push(ElemJungloid::Downcast { from: out_ty, to: target });
            examples.push(steps);
        }

        let got = generalize(&examples);

        // Reference: for each example, the shortest suffix of the body
        // such that no differently-cast example shares that body suffix.
        let mut expected: Vec<Vec<ElemJungloid>> = Vec::new();
        for e in &examples {
            let ElemJungloid::Downcast { to, .. } = e[e.len() - 1] else { unreachable!() };
            let body = &e[..e.len() - 1];
            let mut keep = body.len();
            'k: for k in 0..=body.len() {
                for other in &examples {
                    let ElemJungloid::Downcast { to: to2, .. } = other[other.len() - 1] else {
                        unreachable!()
                    };
                    if to2 == to {
                        continue;
                    }
                    let body2 = &other[..other.len() - 1];
                    if body2.len() >= k && body2[body2.len() - k..] == body[body.len() - k..] {
                        continue 'k; // not distinguishing yet
                    }
                }
                keep = k;
                break;
            }
            let suffix = e[e.len() - 1 - keep..].to_vec();
            if !expected.contains(&suffix) {
                expected.push(suffix);
            }
        }
        let mut got_sorted = got.clone();
        let mut expected_sorted = expected.clone();
        got_sorted.sort_by_key(|e| format!("{e:?}"));
        expected_sorted.sort_by_key(|e| format!("{e:?}"));
        assert_eq!(got_sorted, expected_sorted, "seed {seed}");

        // Every generalized example is a suffix of some input and ends in
        // the same cast.
        for g in &got {
            assert!(
                examples.iter().any(|e| e.len() >= g.len() && e[e.len() - g.len()..] == g[..]),
                "seed {seed}: output not a suffix of any input"
            );
        }
    }
}
