//! Heat-map replay determinism.
//!
//! The heat table and workload sketches are process-global, so this file
//! holds exactly ONE `#[test]`: integration-test files are separate
//! binaries and binaries run sequentially, which keeps other tests'
//! queries from bleeding into the counters asserted here. (The sketch
//! and profiler unit tests use local instances; the serve tests tolerate
//! cross-test noise with retries. This is the one place the global
//! tables are pinned exactly.)
//!
//! Pins, for a fixed query batch over a fixed fixture:
//!
//! 1. replaying the batch on a fresh engine reproduces the identical
//!    top-K heat and workload reports (counts AND ordering);
//! 2. enabling heat accounting does not perturb query results — same
//!    suggestions, same pinned DFS expansion counts as a heat-off run.

use jungloid_apidef::{Api, ApiLoader};
use jungloid_typesys::TyId;
use prospector_core::{heat, HeatSnapshot, Prospector, WorkloadSnapshot};

fn api() -> Api {
    let mut loader = ApiLoader::with_prelude();
    loader
        .add_source(
            "t.api",
            r"
            package t;
            public class A { B toB(); C toC(); }
            public class B { C toC(); D toD(); }
            public class C { D toD(); }
            public class D {}
            public class DSub extends D {}
            ",
        )
        .unwrap();
    loader.finish().unwrap()
}

fn fresh_engine() -> Prospector {
    let mut engine = Prospector::new(api());
    // Replay must exercise the full pipeline every time: a result-cache
    // hit replays stored suggestions without touching the graph, and a
    // distance-cache hit skips the BFS contribution — both would make
    // the second replay's heat differ from the first.
    engine.cache_results = false;
    engine
}

fn batch(engine: &Prospector) -> Vec<(TyId, TyId)> {
    let t = |name: &str| engine.api().types().resolve(name).unwrap();
    // Repeats included: popularity counts must reflect them.
    vec![
        (t("t.A"), t("t.D")),
        (t("t.A"), t("t.C")),
        (t("t.B"), t("t.D")),
        (t("t.A"), t("t.D")),
        (t("t.C"), t("t.D")),
        (t("t.A"), t("t.D")),
    ]
}

/// Run the batch sequentially, returning per-query `(codes, expansions)`.
fn replay(engine: &Prospector) -> Vec<(Vec<String>, u64)> {
    batch(engine)
        .into_iter()
        .map(|(tin, tout)| {
            let r = engine.query(tin, tout).unwrap();
            (
                r.suggestions.iter().map(|s| s.code.clone()).collect(),
                r.stats.dfs_expansions,
            )
        })
        .collect()
}

/// Everything in a [`HeatSnapshot`] except the epoch, which legitimately
/// differs between engine instances.
fn heat_key(s: &HeatSnapshot) -> String {
    format!(
        "q={} f={} nt={} et={} ntot={} etot={} types={:?} members={:?} edges={:?}",
        s.queries,
        s.fields,
        s.nodes_touched,
        s.edges_touched,
        s.node_total,
        s.edge_total,
        s.top_types,
        s.top_members,
        s.top_edges,
    )
}

fn workload_key(s: &WorkloadSnapshot) -> String {
    format!(
        "q={} m={} t={} pop={:?} miss={:?} trunc={:?}",
        s.queries, s.cache_misses, s.truncations, s.popularity, s.misses, s.truncated,
    )
}

#[test]
fn fixed_batch_replay_is_deterministic_and_non_perturbing() {
    // Baseline arm: heat OFF. Captures the ground-truth suggestions and
    // the DFS expansion counts the heat arms must reproduce exactly.
    heat::set_enabled(false);
    heat::reset();
    let baseline = replay(&fresh_engine());
    assert!(
        baseline.iter().any(|(codes, _)| !codes.is_empty()),
        "fixture batch must produce suggestions"
    );

    // First heat arm.
    heat::set_enabled(true);
    heat::reset();
    let engine = fresh_engine();
    let first_results = replay(&engine);
    let first_heat = heat_key(&engine.heat_snapshot(10));
    let first_workload = workload_key(&engine.workload_snapshot(10));

    // Heat accounting must be invisible to callers: identical
    // suggestions and identical pinned expansion budgets.
    assert_eq!(first_results, baseline, "heat accounting perturbed query results");

    // Second heat arm: fresh engine, fresh tables, same batch.
    heat::reset();
    let engine = fresh_engine();
    let second_results = replay(&engine);
    let second_heat = heat_key(&engine.heat_snapshot(10));
    let second_workload = workload_key(&engine.workload_snapshot(10));

    assert_eq!(second_results, baseline);
    assert_eq!(second_heat, first_heat, "top-K heat must replay deterministically");
    assert_eq!(
        second_workload, first_workload,
        "workload sketches must replay deterministically"
    );

    // The report is non-empty and accounts for the whole batch: 6
    // queries recorded, every one a pipeline run (cache off).
    let snap = engine.heat_snapshot(10);
    assert_eq!(snap.queries, 6);
    assert!(snap.fields > 0, "BFS field builds must contribute");
    assert!(!snap.top_types.is_empty());
    assert!(!snap.top_edges.is_empty());
    let wl = engine.workload_snapshot(10);
    assert_eq!(wl.queries, 6);
    assert_eq!(wl.cache_misses, 6);
    // (A, D) ran three times and must lead the popularity report.
    let a_to_d = wl
        .popularity
        .first()
        .expect("popularity top-K is non-empty");
    assert_eq!((a_to_d.tin.as_str(), a_to_d.tout.as_str()), ("A", "D"));
    assert_eq!(a_to_d.count, 3);
    assert_eq!(a_to_d.err, 0, "no evictions at this cardinality");
    assert_eq!(a_to_d.estimate, 3, "count-min is exact at this cardinality");

    // Leave the globals quiet for any later process reuse.
    heat::set_enabled(false);
    heat::reset();
}
