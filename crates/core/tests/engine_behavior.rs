//! Behavioral tests of the engine's configuration surface: the search
//! window, result caps, ranking knobs, and cache consistency across graph
//! mutation.

use jungloid_apidef::{Api, ApiLoader, ElemJungloid};
use prospector_core::{Prospector, RankOptions, SearchConfig, TruncationReason};

fn api() -> Api {
    let mut loader = ApiLoader::with_prelude();
    loader
        .add_source(
            "t.api",
            r"
            package t;
            public class A { B toB(); C toC(); }
            public class B { C toC(); D toD(); }
            public class C { D toD(); }
            public class D {}
            public class DSub extends D {}
            ",
        )
        .unwrap();
    loader.finish().unwrap()
}

#[test]
fn extra_steps_widens_the_result_set() {
    let api = api();
    let a = api.types().resolve("t.A").unwrap();
    let d = api.types().resolve("t.D").unwrap();
    let mut engine = Prospector::new(api);

    engine.search = SearchConfig { extra_steps: 0, ..SearchConfig::default() };
    let tight = engine.query(a, d).unwrap().suggestions.len();
    engine.search = SearchConfig { extra_steps: 1, ..SearchConfig::default() };
    let paper = engine.query(a, d).unwrap().suggestions.len();
    engine.search = SearchConfig { extra_steps: 2, ..SearchConfig::default() };
    let wide = engine.query(a, d).unwrap().suggestions.len();
    assert!(tight <= paper && paper <= wide);
    assert!(tight < wide, "window must matter: {tight} vs {wide}");
}

#[test]
fn max_results_truncates_and_reports() {
    let api = api();
    let a = api.types().resolve("t.A").unwrap();
    let d = api.types().resolve("t.D").unwrap();
    let mut engine = Prospector::new(api);
    engine.search = SearchConfig { max_results: 1, ..SearchConfig::default() };
    let result = engine.query(a, d).unwrap();
    assert_eq!(result.truncation, TruncationReason::PathCap);
    assert!(result.truncation.truncated());
    assert_eq!(result.suggestions.len(), 1);

    engine.search = SearchConfig { max_expansions: 1, ..SearchConfig::default() };
    let result = engine.query(a, d).unwrap();
    assert_eq!(result.truncation, TruncationReason::ExpansionCap);
}

#[test]
fn distance_cache_invalidated_by_new_examples() {
    let api = api();
    let b = api.types().resolve("t.B").unwrap();
    let d = api.types().resolve("t.D").unwrap();
    let dsub = api.types().resolve("DSub").unwrap();
    let to_d = api.lookup_instance_method(b, "toD", 0)[0];
    let mut engine = Prospector::new(api);

    // Warm the cache on the (B, DSub) target.
    assert!(engine.query(b, dsub).unwrap().suggestions.is_empty());

    // Splice an example; the cached distance field must be rebuilt, or the
    // new path would be invisible.
    engine
        .add_examples(
            &[vec![
                ElemJungloid::Call {
                    method: to_d,
                    input: Some(jungloid_apidef::InputSlot::Receiver),
                },
                ElemJungloid::Downcast { from: d, to: dsub },
            ]],
            false,
        )
        .unwrap();
    let after = engine.query(b, dsub).unwrap();
    assert_eq!(after.suggestions.len(), 1);
    assert!(after.suggestions[0].code.contains("(DSub)"));
}

/// The result-cache epoch guard: a query cached before a corpus splice
/// must NOT be served afterwards — the splice advances the graph epoch,
/// the stale entry's stamp no longer matches, and the engine both
/// re-runs the pipeline and counts the invalidation.
#[test]
fn result_cache_invalidated_by_graph_epoch_bump() {
    let api = api();
    let b = api.types().resolve("t.B").unwrap();
    let d = api.types().resolve("t.D").unwrap();
    let dsub = api.types().resolve("DSub").unwrap();
    let to_d = api.lookup_instance_method(b, "toD", 0)[0];
    let mut engine = Prospector::new(api);

    // Prime the result cache: empty answer, then a verified hit on it.
    assert!(engine.query(b, dsub).unwrap().suggestions.is_empty());
    let hit = engine.query(b, dsub).unwrap();
    assert_eq!(hit.stats.result_cache_hits, 1, "identical repeat must be cached");
    assert!(hit.suggestions.is_empty());

    let epoch_before = engine.graph().epoch();
    engine
        .add_examples(
            &[vec![
                ElemJungloid::Call {
                    method: to_d,
                    input: Some(jungloid_apidef::InputSlot::Receiver),
                },
                ElemJungloid::Downcast { from: d, to: dsub },
            ]],
            false,
        )
        .unwrap();
    assert_ne!(engine.graph().epoch(), epoch_before, "splice advances the epoch");

    // Same key, new epoch: the stale empty answer must not come back.
    let invalidations_before =
        prospector_obs::snapshot().counter("engine.result_cache.invalidations").unwrap_or(0);
    let after = engine.query(b, dsub).unwrap();
    assert_eq!(after.stats.result_cache_misses, 1, "stale entry must not be served");
    assert_eq!(after.suggestions.len(), 1);
    assert!(after.suggestions[0].code.contains("(DSub)"));
    let invalidations_after =
        prospector_obs::snapshot().counter("engine.result_cache.invalidations").unwrap_or(0);
    assert!(
        invalidations_after > invalidations_before,
        "dropping the stale entry must tick engine.result_cache.invalidations"
    );

    // And the fresh answer is cached in turn.
    let rehit = engine.query(b, dsub).unwrap();
    assert_eq!(rehit.stats.result_cache_hits, 1);
    assert_eq!(rehit.suggestions[0].code, after.suggestions[0].code);
}

#[test]
fn ranking_knobs_change_order_not_set() {
    let api = api();
    let a = api.types().resolve("t.A").unwrap();
    let d = api.types().resolve("t.D").unwrap();
    let mut engine = Prospector::new(api);
    let full: Vec<String> =
        engine.query(a, d).unwrap().suggestions.iter().map(|s| s.code.clone()).collect();
    engine.ranking = RankOptions {
        free_ref_cost: 0,
        free_prim_cost: 0,
        use_crossings: false,
        use_generality: false,
    };
    let bare: Vec<String> =
        engine.query(a, d).unwrap().suggestions.iter().map(|s| s.code.clone()).collect();
    let mut full_sorted = full.clone();
    let mut bare_sorted = bare.clone();
    full_sorted.sort();
    bare_sorted.sort();
    assert_eq!(full_sorted, bare_sorted, "ranking must not add/remove candidates");
}

#[test]
fn assist_prefers_named_variables_and_void_sources_coexist() {
    let mut loader = ApiLoader::with_prelude();
    loader
        .add_source(
            "v.api",
            r"
            package v;
            public class Target {}
            public class Maker { Target make(); static Maker instance(); }
            ",
        )
        .unwrap();
    let api = loader.finish().unwrap();
    let maker = api.types().resolve("Maker").unwrap();
    let target = api.types().resolve("Target").unwrap();
    let engine = Prospector::new(api);
    let result = engine.assist(&[("m", maker)], target).unwrap();
    // Both the variable route and the void route are present.
    assert!(result.suggestions.iter().any(|s| s.code == "m.make()"));
    assert!(result
        .suggestions
        .iter()
        .any(|s| s.code == "Maker.instance().make()" && s.input_var.is_none()));
    // The variable route ranks first (shorter).
    assert_eq!(result.suggestions[0].code, "m.make()");
    assert_eq!(result.suggestions[0].input_var.as_deref(), Some("m"));
}

#[test]
fn duplicate_visible_variables_take_first_name() {
    let api = api();
    let a = api.types().resolve("t.A").unwrap();
    let d = api.types().resolve("t.D").unwrap();
    let engine = Prospector::new(api);
    let result = engine.assist(&[("first", a), ("second", a)], d).unwrap();
    for s in result.suggestions.iter() {
        if s.jungloid.source == a {
            assert_eq!(s.input_var.as_deref(), Some("first"));
        }
    }
}
