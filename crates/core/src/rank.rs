//! The ranking heuristic of §3.2.
//!
//! Primary key: estimated code size — the number of non-widening
//! elementary jungloids, plus an estimate for the code the user must still
//! write to bind each free variable ("Our current implementation assumes
//! that each free variable will require a jungloid of size two").
//! Primitive-typed free variables are literals the user just types, so by
//! default they cost nothing extra (our calibration; configurable).
//!
//! Ties are broken, in order, by:
//!
//! 1. fewer package-boundary crossings (§3.2's `HTMLParser` example);
//! 2. more general concrete output type (§3.2's `XMLEditor` example) —
//!    smaller inheritance depth first;
//! 3. more general intermediate types (smaller depth sum) — this is our
//!    deterministic extension of the same principle to the chain's
//!    interior;
//! 4. step-kind order (field < instance call < static call < constructor
//!    < downcast) — prefers reusing existing objects to constructing new
//!    ones;
//! 5. the rendered code string (total, deterministic order).

use jungloid_apidef::Api;

use crate::path::Jungloid;

/// Ranking knobs; the defaults reproduce the paper, the switches feed the
/// ranking-ablation bench. `Hash` because the engine's result cache keys
/// on the full ranking configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RankOptions {
    /// Estimated jungloid size per reference-typed free variable (paper: 2).
    pub free_ref_cost: u32,
    /// Estimated size per primitive-typed free variable (default 0).
    pub free_prim_cost: u32,
    /// Apply tie-break 1 (package crossings).
    pub use_crossings: bool,
    /// Apply tie-breaks 2–3 (output/intermediate generality).
    pub use_generality: bool,
}

impl Default for RankOptions {
    fn default() -> Self {
        RankOptions { free_ref_cost: 2, free_prim_cost: 0, use_crossings: true, use_generality: true }
    }
}

/// The comparable key; smaller ranks first.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RankKey {
    /// Steps + free-variable estimates.
    pub estimated_size: u32,
    /// Package-boundary crossings (0 when disabled).
    pub crossings: u32,
    /// Inheritance depth of the concrete output type (0 when disabled).
    pub output_depth: u32,
    /// Depth sum over produced intermediate types (0 when disabled).
    pub depth_sum: u32,
    /// Per-step kind codes.
    pub kinds: Vec<u8>,
    /// Rendered code (final deterministic tie-break).
    pub code: String,
}

/// Computes the rank key of one jungloid given its rendered code.
#[must_use]
pub fn rank_key(api: &Api, jungloid: &Jungloid, code: String, opts: &RankOptions) -> RankKey {
    let (refs, prims) = jungloid.free_var_counts(api);
    RankKey {
        estimated_size: jungloid.steps()
            + refs * opts.free_ref_cost
            + prims * opts.free_prim_cost,
        crossings: if opts.use_crossings { jungloid.package_crossings(api) } else { 0 },
        output_depth: if opts.use_generality {
            api.types().depth(jungloid.concrete_output_ty(api))
        } else {
            0
        },
        depth_sum: if opts.use_generality { jungloid.depth_sum(api) } else { 0 },
        kinds: jungloid.kind_seq(api),
        code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::elem::elems_of_method;
    use jungloid_apidef::{Api, ApiLoader, ElemJungloid};
    use jungloid_typesys::TyId;

    /// java.io idiom vs. the lucene HTMLParser detour (§3.2).
    fn io_api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "io.api",
                r"
                package java.io;
                public class Reader {}
                public class InputStream {}
                public class InputStreamReader extends Reader {
                    InputStreamReader(InputStream in);
                }
                public class BufferedReader extends Reader {
                    BufferedReader(Reader in);
                }
                package org.apache.lucene.demo.html;
                public class HTMLParser {
                    HTMLParser(java.io.InputStream in);
                    java.io.BufferedReader getReader();
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn elem_for(api: &Api, class: &str, name: &str, input: TyId) -> ElemJungloid {
        let c = api.types().resolve(class).unwrap();
        let candidates: Vec<_> = api
            .methods_of(c)
            .iter()
            .copied()
            .filter(|&m| {
                let d = api.method(m);
                if name == "<init>" { d.is_constructor } else { d.name == name }
            })
            .collect();
        for m in candidates {
            for e in elems_of_method(api, m) {
                if e.input_ty(api) == input {
                    return e;
                }
            }
        }
        panic!("no elem {class}.{name}");
    }

    #[test]
    fn crossings_break_the_htmlparser_tie() {
        let api = io_api();
        let input = api.types().resolve("InputStream").unwrap();
        let reader = api.types().resolve("Reader").unwrap();
        let isr = api.types().resolve("InputStreamReader").unwrap();

        let idiom = Jungloid::new(
            &api,
            input,
            vec![
                elem_for(&api, "InputStreamReader", "<init>", input),
                ElemJungloid::Widen { from: isr, to: reader },
                elem_for(&api, "BufferedReader", "<init>", reader),
            ],
        )
        .unwrap();
        let htmlparser = api.types().resolve("HTMLParser").unwrap();
        let detour = Jungloid::new(
            &api,
            input,
            vec![
                elem_for(&api, "HTMLParser", "<init>", input),
                elem_for(&api, "HTMLParser", "getReader", htmlparser),
            ],
        )
        .unwrap();

        let opts = RankOptions::default();
        let k_idiom = rank_key(&api, &idiom, "a".into(), &opts);
        let k_detour = rank_key(&api, &detour, "a".into(), &opts);
        assert_eq!(k_idiom.estimated_size, k_detour.estimated_size);
        assert!(k_idiom.crossings < k_detour.crossings);
        assert!(k_idiom < k_detour);

        // Ablation: without the crossing tie-break the detour can win on
        // later keys; the keys must at least stop separating on crossings.
        let no_cross = RankOptions { use_crossings: false, ..RankOptions::default() };
        let k2 = rank_key(&api, &detour, "a".into(), &no_cross);
        assert_eq!(k2.crossings, 0);
    }

    #[test]
    fn free_variables_cost_two() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class In {}
                public class Helper {}
                public class Out {
                    static Out direct(In x, In y, In z);
                    static Out viaHelper(In x, Helper h);
                    static Out plain(In x);
                    static Out sized(In x, int n);
                }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let input = api.types().resolve("In").unwrap();
        let opts = RankOptions::default();
        let key = |name: &str| {
            let e = elem_for(&api, "t.Out", name, input);
            let j = Jungloid::new(&api, input, vec![e]).unwrap();
            rank_key(&api, &j, name.to_owned(), &opts)
        };
        assert_eq!(key("plain").estimated_size, 1);
        // int free variable: free by default (a literal).
        assert_eq!(key("sized").estimated_size, 1);
        // one reference free variable: +2.
        assert_eq!(key("viaHelper").estimated_size, 3);
        // two reference free variables: +4.
        assert_eq!(key("direct").estimated_size, 5);
        assert!(key("plain") < key("viaHelper"));
        assert!(key("viaHelper") < key("direct"));
    }

    #[test]
    fn generality_prefers_supertype_outputs() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "g.api",
                r"
                package g;
                public class Editor {}
                public class XmlEditor extends Editor {}
                public class Site {
                    Editor general();
                    XmlEditor specific();
                }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let site = api.types().resolve("Site").unwrap();
        let editor = api.types().resolve("Editor").unwrap();
        let xml = api.types().resolve("XmlEditor").unwrap();
        let opts = RankOptions::default();
        let general = Jungloid::new(&api, site, vec![elem_for(&api, "g.Site", "general", site)]).unwrap();
        let specific = Jungloid::new(
            &api,
            site,
            vec![
                elem_for(&api, "g.Site", "specific", site),
                ElemJungloid::Widen { from: xml, to: editor },
            ],
        )
        .unwrap();
        let kg = rank_key(&api, &general, "a".into(), &opts);
        let ks = rank_key(&api, &specific, "a".into(), &opts);
        assert_eq!(kg.estimated_size, ks.estimated_size);
        assert!(kg.output_depth < ks.output_depth);
        assert!(kg < ks);
        // Ablation: with generality off, the code string decides.
        let off = RankOptions { use_generality: false, ..RankOptions::default() };
        let kg2 = rank_key(&api, &general, "b".into(), &off);
        let ks2 = rank_key(&api, &specific, "a".into(), &off);
        assert!(ks2 < kg2);
    }

    #[test]
    fn code_string_is_last_resort() {
        let api = io_api();
        let input = api.types().resolve("InputStream").unwrap();
        let e = elem_for(&api, "InputStreamReader", "<init>", input);
        let j = Jungloid::new(&api, input, vec![e]).unwrap();
        let opts = RankOptions::default();
        let k1 = rank_key(&api, &j, "aaa".into(), &opts);
        let k2 = rank_key(&api, &j, "bbb".into(), &opts);
        assert!(k1 < k2);
    }
}
