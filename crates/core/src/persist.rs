//! Persistence: serialize an API + jungloid graph to disk and back.
//!
//! §5 reports the graph representation occupying 8 MB on disk and 24 MB in
//! memory, loading in 1.5 s; the `perf_section5` bench reproduces those
//! measurements against this module's JSON encoding (the dependency-free
//! [`prospector_obs::Json`] value type).

use std::path::{Path, PathBuf};

use jungloid_apidef::Api;
use prospector_obs::json::{Json, JsonError};

use crate::graph::JungloidGraph;

/// The on-disk bundle.
#[derive(Debug)]
pub struct PersistedIndex {
    /// The API model.
    pub api: Api,
    /// The jungloid graph built from it.
    pub graph: JungloidGraph,
}

/// A file-level persistence failure, preserving *which* file and — for
/// decode failures — which key or section of the document was at fault
/// (the wrapped [`JsonError`] carries the failing key's message).
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file was read but its JSON did not decode as an index.
    Decode {
        /// The file involved.
        path: PathBuf,
        /// The decode failure, naming the offending key/section.
        source: JsonError,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            PersistError::Decode { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Decode { source, .. } => Some(source),
        }
    }
}

/// Serializes to a JSON string.
#[must_use]
pub fn to_json(api: &Api, graph: &JungloidGraph) -> String {
    Json::obj(vec![("api", api.to_json()), ("graph", graph.to_json())]).to_text()
}

/// Deserializes from a JSON string.
///
/// # Errors
///
/// Fails on malformed input, missing keys, or a graph that references
/// members the bundled API does not declare.
pub fn from_json(text: &str) -> Result<PersistedIndex, JsonError> {
    let doc = Json::parse(text)?;
    let api = Api::from_json(doc.want("api")?)?;
    let graph = JungloidGraph::from_json(doc.want("graph")?, &api)?;
    Ok(PersistedIndex { api, graph })
}

/// Writes the bundle to a file.
///
/// # Errors
///
/// [`PersistError::Io`] on write failure.
pub fn save_file(path: &Path, api: &Api, graph: &JungloidGraph) -> Result<(), PersistError> {
    std::fs::write(path, to_json(api, graph))
        .map_err(|source| PersistError::Io { path: path.to_owned(), source })
}

/// Reads a bundle from a file.
///
/// # Errors
///
/// [`PersistError::Io`] if the file cannot be read;
/// [`PersistError::Decode`] — naming the failing key — if it does not
/// decode.
pub fn load_file(path: &Path) -> Result<PersistedIndex, PersistError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| PersistError::Io { path: path.to_owned(), source })?;
    from_json(&text).map_err(|source| PersistError::Decode { path: path.to_owned(), source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Prospector;
    use crate::graph::GraphConfig;
    use jungloid_apidef::ApiLoader;

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); }
                public class B { static B fuse(A a, B b); }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_answers() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let text = to_json(&api, &graph);
        let loaded = from_json(&text).unwrap();
        assert_eq!(loaded.graph.edge_count(), graph.edge_count());
        assert_eq!(loaded.graph.node_count(), graph.node_count());

        let a = loaded.api.types().resolve("t.A").unwrap();
        let b = loaded.api.types().resolve("t.B").unwrap();
        let fresh = Prospector::new(api);
        let thawed = Prospector::from_parts(loaded.api, loaded.graph);
        let r1 = fresh.query(a, b).unwrap();
        let r2 = thawed.query(a, b).unwrap();
        let codes1: Vec<&str> = r1.suggestions.iter().map(|s| s.code.as_str()).collect();
        let codes2: Vec<&str> = r2.suggestions.iter().map(|s| s.code.as_str()).collect();
        assert_eq!(codes1, codes2);
    }

    #[test]
    fn file_round_trip() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let dir = std::env::temp_dir().join("prospector-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        save_file(&path, &api, &graph).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.graph.edge_count(), graph.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{}").is_err());
    }

    #[test]
    fn load_errors_are_typed_and_name_the_failure() {
        let dir = std::env::temp_dir().join("prospector-persist-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        match load_file(&missing) {
            Err(PersistError::Io { path, .. }) => assert_eq!(path, missing),
            other => panic!("expected Io error, got {other:?}"),
        }
        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "{\"api\": 3}").unwrap();
        match load_file(&garbled) {
            Err(PersistError::Decode { path, source }) => {
                assert_eq!(path, garbled);
                // The wrapped JsonError names the offending key (the first
                // thing `Api::from_json` asks the non-object for).
                assert!(source.to_string().contains("missing key `types`"), "unhelpful: {source}");
            }
            other => panic!("expected Decode error, got {other:?}"),
        }
        std::fs::remove_file(&garbled).ok();
    }
}
