//! Persistence: serialize an API + jungloid graph to disk and back.
//!
//! §5 reports the graph representation occupying 8 MB on disk and 24 MB in
//! memory, loading in 1.5 s; the `perf_section5` bench reproduces those
//! measurements against this module's JSON encoding (the dependency-free
//! [`prospector_obs::Json`] value type).

use std::path::Path;

use jungloid_apidef::Api;
use prospector_obs::json::{Json, JsonError};

use crate::graph::JungloidGraph;

/// The on-disk bundle.
#[derive(Debug)]
pub struct PersistedIndex {
    /// The API model.
    pub api: Api,
    /// The jungloid graph built from it.
    pub graph: JungloidGraph,
}

/// Serializes to a JSON string.
#[must_use]
pub fn to_json(api: &Api, graph: &JungloidGraph) -> String {
    Json::obj(vec![("api", api.to_json()), ("graph", graph.to_json())]).to_text()
}

/// Deserializes from a JSON string.
///
/// # Errors
///
/// Fails on malformed input, missing keys, or a graph that references
/// members the bundled API does not declare.
pub fn from_json(text: &str) -> Result<PersistedIndex, JsonError> {
    let doc = Json::parse(text)?;
    let api = Api::from_json(doc.want("api")?)?;
    let graph = JungloidGraph::from_json(doc.want("graph")?, &api)?;
    Ok(PersistedIndex { api, graph })
}

/// Writes the bundle to a file.
///
/// # Errors
///
/// I/O errors.
pub fn save_file(path: &Path, api: &Api, graph: &JungloidGraph) -> std::io::Result<()> {
    std::fs::write(path, to_json(api, graph))
}

/// Reads a bundle from a file.
///
/// # Errors
///
/// I/O and deserialization errors.
pub fn load_file(path: &Path) -> std::io::Result<PersistedIndex> {
    let text = std::fs::read_to_string(path)?;
    from_json(&text).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Prospector;
    use crate::graph::GraphConfig;
    use jungloid_apidef::ApiLoader;

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); }
                public class B { static B fuse(A a, B b); }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_answers() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let text = to_json(&api, &graph);
        let loaded = from_json(&text).unwrap();
        assert_eq!(loaded.graph.edge_count(), graph.edge_count());
        assert_eq!(loaded.graph.node_count(), graph.node_count());

        let a = loaded.api.types().resolve("t.A").unwrap();
        let b = loaded.api.types().resolve("t.B").unwrap();
        let fresh = Prospector::new(api);
        let thawed = Prospector::from_parts(loaded.api, loaded.graph);
        let r1 = fresh.query(a, b).unwrap();
        let r2 = thawed.query(a, b).unwrap();
        let codes1: Vec<&str> = r1.suggestions.iter().map(|s| s.code.as_str()).collect();
        let codes2: Vec<&str> = r2.suggestions.iter().map(|s| s.code.as_str()).collect();
        assert_eq!(codes1, codes2);
    }

    #[test]
    fn file_round_trip() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let dir = std::env::temp_dir().join("prospector-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        save_file(&path, &api, &graph).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.graph.edge_count(), graph.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{}").is_err());
    }
}
