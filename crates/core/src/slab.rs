//! Backing storage for zero-copy snapshots: aligned buffers, borrowed
//! slab views, and packed jungloid-element sequences.
//!
//! The `.pspk` format v2 lays its hot sections out as 8-byte-aligned
//! little-endian arrays so a loader can validate checksums once and then
//! *borrow* `&[u32]`/`&[u8]` views straight out of one buffer — no
//! per-element deserialization. Three pieces make that safe:
//!
//! * [`SnapshotBuf`] — the one buffer the whole snapshot lives in. Either
//!   an owned allocation whose base address is 8-byte aligned (backed by
//!   a `Vec<u64>`, so the alignment is a type-system fact, not a hope),
//!   or a read-only memory mapping obtained through a raw `mmap(2)`
//!   syscall (std-only, Linux/x86-64; everywhere else the owned read is
//!   the portable fallback). Page alignment ≥ 8 covers the mapped case.
//! * [`Slab<T>`] — a typed array that is either an owned `Vec<T>` or a
//!   `(buffer, offset, length)` view into an [`Arc<SnapshotBuf>`].
//!   Alignment and bounds are checked **once at construction**; after
//!   that [`Slab::as_slice`] is a pointer cast. Only [`Plain`] element
//!   types (`u8`, `u32` — every bit pattern valid, no padding) can be
//!   viewed this way, and only on little-endian targets, where the
//!   on-disk and in-memory representations coincide. Big-endian builds
//!   get `None` from [`Slab::borrowed`] and decode into owned storage.
//! * [`ElemSeq`] — the CSR's per-edge jungloid elements, either owned
//!   `Vec<ElemJungloid>` or the on-disk packed form (one `[u32; 4]` quad
//!   per element) decoded on access. Decoding a quad is a handful of
//!   register ops; storing them packed is what lets the biggest CSR
//!   array stay borrowed.

use std::marker::PhantomData;
use std::path::Path;
use std::sync::Arc;

use jungloid_apidef::{ElemJungloid, FieldId, InputSlot, MethodId};
use jungloid_typesys::TyId;

/// The single allocation (or mapping) a zero-copy snapshot borrows from.
///
/// The base address is always at least 8-byte aligned: owned storage is a
/// `Vec<u64>`, mappings are page-aligned. Section offsets inside the
/// buffer therefore only need to be 8-byte multiples for every `u32`/`u64`
/// view to be properly aligned.
pub struct SnapshotBuf {
    inner: BufInner,
}

enum BufInner {
    /// `words` owns `len` meaningful bytes (the tail of the last word is
    /// zero padding).
    Owned { words: Vec<u64>, len: usize },
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped { ptr: *const u8, len: usize },
}

// SAFETY: the mapped variant is a private read-only mapping that nothing
// mutates; the owned variant is a Vec. Shared references hand out `&[u8]`
// only.
unsafe impl Send for SnapshotBuf {}
unsafe impl Sync for SnapshotBuf {}

impl std::fmt::Debug for SnapshotBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotBuf")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl SnapshotBuf {
    fn owned_with_len(len: usize) -> SnapshotBuf {
        let words = vec![0u64; len.div_ceil(8)];
        SnapshotBuf { inner: BufInner::Owned { words, len } }
    }

    /// Copies `bytes` into fresh 8-byte-aligned owned storage.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> SnapshotBuf {
        let mut buf = Self::owned_with_len(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        buf
    }

    /// Reads a whole file into 8-byte-aligned owned storage (the portable
    /// loading path).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn read_file(path: &Path) -> std::io::Result<SnapshotBuf> {
        use std::io::Read as _;
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large for memory")
        })?;
        let mut buf = Self::owned_with_len(len);
        file.read_exact(buf.as_mut_slice())?;
        buf
            .check_eof(&mut file)
            .map_err(|_| std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file grew while being read",
            ))?;
        Ok(buf)
    }

    fn check_eof(&self, file: &mut std::fs::File) -> Result<(), ()> {
        use std::io::Read as _;
        let mut probe = [0u8; 1];
        match file.read(&mut probe) {
            Ok(0) => Ok(()),
            _ => Err(()),
        }
    }

    /// Memory-maps a whole file read-only where the raw-syscall wrapper
    /// is available, falling back to [`SnapshotBuf::read_file`] anywhere
    /// else (or if the mapping fails). The returned flag says whether the
    /// buffer is actually a mapping.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure from the fallback read.
    pub fn map_file(path: &Path) -> std::io::Result<(SnapshotBuf, bool)> {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            if let Some(buf) = Self::try_map(path) {
                return Ok((buf, true));
            }
        }
        Ok((Self::read_file(path)?, false))
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn try_map(path: &Path) -> Option<SnapshotBuf> {
        use std::os::fd::AsRawFd as _;
        let file = std::fs::File::open(path).ok()?;
        let len = usize::try_from(file.metadata().ok()?.len()).ok()?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; the owned path
            // represents an empty buffer fine.
            return None;
        }
        // SAFETY: read-only private mapping of an open fd; the pointer is
        // owned by the returned SnapshotBuf, which munmaps on drop. The
        // fd can be closed immediately after — the mapping keeps the file
        // alive.
        let ptr = unsafe { sys::mmap_readonly(file.as_raw_fd(), len) }?;
        Some(SnapshotBuf { inner: BufInner::Mapped { ptr, len } })
    }

    /// The buffer's bytes. The base pointer is at least 8-byte aligned.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            BufInner::Owned { words, len } => {
                // SAFETY: the Vec owns at least `len` initialized bytes
                // (constructors zero-fill, then overwrite).
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            BufInner::Mapped { ptr, len } => {
                // SAFETY: the mapping is `len` bytes, read-only, and live
                // until drop.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.inner {
            BufInner::Owned { words, len } => {
                // SAFETY: as in `as_slice`, plus exclusive access.
                unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), *len) }
            }
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            BufInner::Mapped { .. } => unreachable!("mapped buffers are never mutated"),
        }
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            BufInner::Owned { len, .. } => *len,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            BufInner::Mapped { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the buffer is an actual memory mapping (vs owned storage).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            BufInner::Owned { .. } => false,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            BufInner::Mapped { .. } => true,
        }
    }
}

impl Drop for SnapshotBuf {
    fn drop(&mut self) {
        match &self.inner {
            BufInner::Owned { .. } => {}
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            BufInner::Mapped { ptr, len } => {
                // SAFETY: exactly the region mmap returned, unmapped once.
                unsafe { sys::munmap(*ptr, *len) };
            }
        }
    }
}

/// Raw `mmap(2)` / `munmap(2)` syscall wrappers — std-only, no libc.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Maps `len` bytes of `fd` read-only/private. `None` on failure.
    ///
    /// # Safety
    ///
    /// `fd` must be an open, readable file descriptor and `len` no larger
    /// than the file. The caller owns the returned mapping and must
    /// `munmap` it exactly once.
    pub unsafe fn mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
        let ret: isize;
        // SAFETY: plain syscall; the kernel validates every argument and
        // reports failure through the return value.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP as isize => ret,
                in("rdi") 0usize,          // addr: let the kernel pick
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,           // offset
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        // Errors come back as -errno in the top page of the address space.
        if (-4095..0).contains(&ret) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`mmap_readonly`].
    ///
    /// # Safety
    ///
    /// `(ptr, len)` must be exactly one live mapping from
    /// [`mmap_readonly`].
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let ret: isize;
        // SAFETY: as above.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP as isize => ret,
                in("rdi") ptr,
                in("rsi") len,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        debug_assert_eq!(ret, 0, "munmap of a live mapping cannot fail");
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
}

/// Element types a [`Slab`] may view directly out of a byte buffer:
/// every bit pattern is a valid value and the type has no padding, so a
/// pointer cast from checked-aligned bytes is sound.
pub trait Plain: Copy + PartialEq + std::fmt::Debug + sealed::Sealed + 'static {}

impl Plain for u8 {}
impl Plain for u32 {}

/// A typed array backed either by an owned `Vec<T>` or by a borrowed
/// range of an [`Arc<SnapshotBuf>`] (zero-copy). Cloning a borrowed slab
/// is an `Arc` bump.
#[derive(Clone)]
pub struct Slab<T: Plain> {
    inner: SlabInner<T>,
}

#[derive(Clone)]
enum SlabInner<T: Plain> {
    Owned(Vec<T>),
    Borrowed {
        buf: Arc<SnapshotBuf>,
        /// Byte offset of the first element; `align_of::<T>()`-aligned.
        off: usize,
        /// Element (not byte) count.
        len: usize,
        _marker: PhantomData<T>,
    },
}

impl<T: Plain> Slab<T> {
    /// Wraps an owned vector.
    #[must_use]
    pub fn from_vec(v: Vec<T>) -> Slab<T> {
        Slab { inner: SlabInner::Owned(v) }
    }

    /// Borrows `len` elements starting `byte_off` bytes into `buf` —
    /// the zero-copy constructor. Returns `None` (caller falls back to
    /// owned decoding) when the range is out of bounds, the offset is
    /// misaligned for `T`, or the target is big-endian (the on-disk
    /// representation is little-endian).
    #[must_use]
    pub fn borrowed(buf: &Arc<SnapshotBuf>, byte_off: usize, len: usize) -> Option<Slab<T>> {
        if cfg!(target_endian = "big") {
            return None;
        }
        let byte_len = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_off.checked_add(byte_len)?;
        if end > buf.len() || !byte_off.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Slab {
            inner: SlabInner::Borrowed {
                buf: Arc::clone(buf),
                off: byte_off,
                len,
                _marker: PhantomData,
            },
        })
    }

    /// The elements, however they are stored.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            SlabInner::Owned(v) => v,
            SlabInner::Borrowed { buf, off, len, .. } => {
                // SAFETY: construction checked bounds and alignment; `T`
                // is `Plain` (every bit pattern valid); the buffer lives
                // as long as `self` via the Arc.
                unsafe {
                    std::slice::from_raw_parts(
                        buf.as_slice().as_ptr().add(*off).cast::<T>(),
                        *len,
                    )
                }
            }
        }
    }

    /// Whether this slab borrows from a snapshot buffer (vs owning).
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        matches!(self.inner, SlabInner::Borrowed { .. })
    }
}

impl<T: Plain> std::ops::Deref for Slab<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Plain> Default for Slab<T> {
    fn default() -> Self {
        Slab::from_vec(Vec::new())
    }
}

impl<T: Plain> PartialEq for Slab<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Plain> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Slab({} x {}", self.len(), std::any::type_name::<T>())?;
        if self.is_borrowed() {
            write!(f, ", borrowed")?;
        }
        write!(f, ")")
    }
}

// --- Packed jungloid elements -------------------------------------------

/// Quad tag: field access.
const TAG_FIELD: u32 = 0;
/// Quad tag: method call.
const TAG_CALL: u32 = 1;
/// Quad tag: widening conversion.
const TAG_WIDEN: u32 = 2;
/// Quad tag: downcast.
const TAG_DOWNCAST: u32 = 3;

/// Packs one element as the on-disk `[tag, a, b, c]` quad (format v2's
/// CSR element encoding). Unused fields are zero.
#[must_use]
pub fn encode_quad(elem: ElemJungloid) -> [u32; 4] {
    let idx = |i: usize| u32::try_from(i).expect("arena index fits u32");
    match elem {
        ElemJungloid::FieldAccess { field } => [TAG_FIELD, idx(field.index()), 0, 0],
        ElemJungloid::Call { method, input } => {
            let (kind, arg) = match input {
                None => (0, 0),
                Some(InputSlot::Receiver) => (1, 0),
                Some(InputSlot::Arg(i)) => (2, idx(i)),
            };
            [TAG_CALL, idx(method.index()), kind, arg]
        }
        ElemJungloid::Widen { from, to } => [TAG_WIDEN, idx(from.index()), idx(to.index()), 0],
        ElemJungloid::Downcast { from, to } => {
            [TAG_DOWNCAST, idx(from.index()), idx(to.index()), 0]
        }
    }
}

/// Decodes one `[tag, a, b, c]` quad. `None` on a malformed quad (bad
/// tag, bad input kind, or nonzero bits in an unused field) — the loader
/// validates every quad once up front so access-path decoding
/// ([`ElemSeq::get`]) can treat `None` as unreachable.
#[must_use]
pub fn decode_quad(quad: [u32; 4]) -> Option<ElemJungloid> {
    let [tag, a, b, c] = quad;
    match tag {
        TAG_FIELD => {
            if b != 0 || c != 0 {
                return None;
            }
            Some(ElemJungloid::FieldAccess { field: FieldId::from_index(a as usize) })
        }
        TAG_CALL => {
            let input = match b {
                0 if c == 0 => None,
                1 if c == 0 => Some(InputSlot::Receiver),
                2 => Some(InputSlot::Arg(c as usize)),
                _ => return None,
            };
            Some(ElemJungloid::Call { method: MethodId::from_index(a as usize), input })
        }
        TAG_WIDEN if c == 0 => Some(ElemJungloid::Widen {
            from: TyId::from_index(a as usize),
            to: TyId::from_index(b as usize),
        }),
        TAG_DOWNCAST if c == 0 => Some(ElemJungloid::Downcast {
            from: TyId::from_index(a as usize),
            to: TyId::from_index(b as usize),
        }),
        _ => None,
    }
}

/// The CSR's per-edge jungloid elements: owned structs, or the on-disk
/// packed quads decoded on access. [`ElemSeq::get`] returns by value
/// (`ElemJungloid` is `Copy`) so search loops are storage-agnostic.
#[derive(Clone)]
pub enum ElemSeq {
    /// Materialized elements (graphs built in-process, or big-endian
    /// fallback decode).
    Owned(Vec<ElemJungloid>),
    /// Borrowed `[u32; 4]` quads, one per element, pre-validated by the
    /// loader.
    Packed(Slab<u32>),
}

impl ElemSeq {
    /// Wraps pre-validated packed quads (`4 × count` words).
    ///
    /// # Panics
    ///
    /// Panics if the word count is not a multiple of 4. Quad *content*
    /// validity is the loader's responsibility.
    #[must_use]
    pub fn packed(words: Slab<u32>) -> ElemSeq {
        assert!(words.len().is_multiple_of(4), "packed elem storage must be whole quads");
        ElemSeq::Packed(words)
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ElemSeq::Owned(v) => v.len(),
            ElemSeq::Packed(words) => words.len() / 4,
        }
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element at `i`, decoded if packed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds (like slice indexing would).
    #[must_use]
    pub fn get(&self, i: usize) -> ElemJungloid {
        match self {
            ElemSeq::Owned(v) => v[i],
            ElemSeq::Packed(words) => {
                let w = &words.as_slice()[i * 4..i * 4 + 4];
                decode_quad([w[0], w[1], w[2], w[3]])
                    .expect("packed quads are validated at load")
            }
        }
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = ElemJungloid> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Whether the packed representation backs this sequence.
    #[must_use]
    pub fn is_packed(&self) -> bool {
        matches!(self, ElemSeq::Packed(_))
    }
}

impl Default for ElemSeq {
    fn default() -> Self {
        ElemSeq::Owned(Vec::new())
    }
}

impl PartialEq for ElemSeq {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl std::fmt::Debug for ElemSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_buf_is_aligned_and_round_trips() {
        let bytes: Vec<u8> = (0..=41).collect();
        let buf = SnapshotBuf::from_bytes(&bytes);
        assert_eq!(buf.as_slice(), &bytes[..]);
        assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0, "base must be 8-aligned");
        assert!(!buf.is_mapped());
        assert!(!buf.is_empty());
    }

    #[test]
    fn map_file_reads_back_identical_bytes() {
        let dir = std::env::temp_dir().join("prospector-slab-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("map.bin");
        let bytes: Vec<u8> = (0u16..3000).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &bytes).expect("write");
        let (buf, mapped) = SnapshotBuf::map_file(&path).expect("map");
        assert_eq!(buf.as_slice(), &bytes[..]);
        assert_eq!(buf.is_mapped(), mapped);
        assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(mapped, "the raw mmap path must engage on linux/x86-64");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn borrowed_slab_views_the_buffer_without_copying() {
        let words: Vec<u32> = vec![7, 11, 13, 17];
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let buf = Arc::new(SnapshotBuf::from_bytes(&bytes));
        let slab = Slab::<u32>::borrowed(&buf, 0, 4).expect("aligned in-bounds view");
        if cfg!(target_endian = "little") {
            assert_eq!(slab.as_slice(), &words[..]);
            assert!(slab.is_borrowed());
            assert_eq!(
                slab.as_slice().as_ptr().cast::<u8>(),
                buf.as_slice().as_ptr(),
                "a borrowed slab must point into the buffer itself"
            );
        }
    }

    #[test]
    fn borrowed_slab_rejects_misalignment_and_overflow() {
        let buf = Arc::new(SnapshotBuf::from_bytes(&[0u8; 16]));
        assert!(Slab::<u32>::borrowed(&buf, 2, 1).is_none(), "misaligned offset");
        assert!(Slab::<u32>::borrowed(&buf, 8, 3).is_none(), "past the end");
        assert!(Slab::<u32>::borrowed(&buf, 0, usize::MAX).is_none(), "length overflow");
        assert!(Slab::<u8>::borrowed(&buf, 3, 13).is_some(), "u8 views need no alignment");
    }

    #[test]
    fn quads_round_trip_every_element_shape() {
        let elems = [
            ElemJungloid::FieldAccess { field: FieldId::from_index(5) },
            ElemJungloid::Call { method: MethodId::from_index(9), input: None },
            ElemJungloid::Call {
                method: MethodId::from_index(2),
                input: Some(InputSlot::Receiver),
            },
            ElemJungloid::Call {
                method: MethodId::from_index(3),
                input: Some(InputSlot::Arg(1)),
            },
            ElemJungloid::Widen { from: TyId::from_index(4), to: TyId::from_index(7) },
            ElemJungloid::Downcast { from: TyId::from_index(7), to: TyId::from_index(4) },
        ];
        for e in elems {
            assert_eq!(decode_quad(encode_quad(e)), Some(e));
        }
    }

    #[test]
    fn malformed_quads_are_rejected_not_misread() {
        assert_eq!(decode_quad([4, 0, 0, 0]), None, "unknown tag");
        assert_eq!(decode_quad([0, 1, 2, 0]), None, "field with junk in b");
        assert_eq!(decode_quad([1, 0, 3, 0]), None, "call with bad input kind");
        assert_eq!(decode_quad([1, 0, 1, 5]), None, "receiver call with junk arg");
        assert_eq!(decode_quad([2, 1, 2, 9]), None, "widen with junk in c");
    }

    #[test]
    fn packed_and_owned_elem_seqs_compare_equal() {
        let elems = vec![
            ElemJungloid::Widen { from: TyId::from_index(1), to: TyId::from_index(2) },
            ElemJungloid::Call { method: MethodId::from_index(0), input: Some(InputSlot::Receiver) },
        ];
        let mut words = Vec::new();
        for &e in &elems {
            words.extend_from_slice(&encode_quad(e));
        }
        let packed = ElemSeq::packed(Slab::from_vec(words));
        let owned = ElemSeq::Owned(elems.clone());
        assert_eq!(packed, owned);
        assert_eq!(packed.len(), 2);
        assert_eq!(packed.get(1), elems[1]);
        assert_eq!(packed.iter().collect::<Vec<_>>(), elems);
    }
}
