//! Graphviz (DOT) rendering of jungloid-graph fragments — the library
//! form of the paper's Figures 1, 3, and 6.
//!
//! Whole-graph renderings are useless at API scale, so rendering is
//! neighborhood-based: pick root types, walk a bounded number of hops,
//! and emit the induced subgraph. Widening edges are dotted (they have no
//! syntax), downcasts are red, and mined typestate nodes are dashed —
//! matching the visual language of the paper's figures.

use std::fmt::Write as _;

use jungloid_apidef::Api;

use crate::graph::{JungloidGraph, NodeId};

/// Rendering options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DotOptions {
    /// How many hops out from the roots to include.
    pub hops: usize,
    /// Cap on rendered nodes (keeps hub types readable).
    pub max_nodes: usize,
    /// Include widening edges.
    pub show_widening: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions { hops: 1, max_nodes: 60, show_widening: true }
    }
}

/// Renders the neighborhood of `roots` as a DOT digraph.
///
/// Nodes unreachable within `options.hops` hops of a root are omitted;
/// edges are emitted only between included nodes.
#[must_use]
pub fn neighborhood(
    api: &Api,
    graph: &JungloidGraph,
    roots: &[NodeId],
    options: &DotOptions,
) -> String {
    let mut included: Vec<NodeId> = Vec::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &r in roots {
        if !included.contains(&r) {
            included.push(r);
            frontier.push(r);
        }
    }
    for _ in 0..options.hops {
        let mut next = Vec::new();
        for &node in &frontier {
            for e in graph.out_edges(node) {
                if included.len() >= options.max_nodes {
                    break;
                }
                if !included.contains(&e.to) {
                    included.push(e.to);
                    next.push(e.to);
                }
            }
        }
        frontier = next;
    }

    let mut out = String::new();
    let _ = writeln!(out, "digraph jungloids {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for &node in &included {
        let (label, style) = match node {
            NodeId::Ty(t) => (api.types().display_simple(t), ""),
            NodeId::Mined(i) => (
                format!("{}-{}", api.types().display_simple(graph.base_ty(node)), i + 1),
                ", style=dashed",
            ),
        };
        let _ = writeln!(out, "  \"{}\" [label=\"{}\"{}];", node_id(node), label, style);
    }
    for &node in &included {
        for e in graph.out_edges(node) {
            if !included.contains(&e.to) {
                continue;
            }
            if e.elem.is_widen() {
                if !options.show_widening {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [style=dotted, arrowhead=empty];",
                    node_id(node),
                    node_id(e.to)
                );
            } else {
                let color = if e.elem.is_downcast() { ", color=red" } else { "" };
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}\"{color}];",
                    node_id(node),
                    node_id(e.to),
                    e.elem.label(api).replace('"', "'")
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn node_id(node: NodeId) -> String {
    match node {
        NodeId::Ty(t) => format!("t{}", t.index()),
        NodeId::Mined(i) => format!("m{i}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use jungloid_apidef::ApiLoader;

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); }
                public class B extends A { C toC(); }
                public class C {}
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    #[test]
    fn renders_nodes_and_edges() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = api.types().resolve("t.A").unwrap();
        let dot = neighborhood(&api, &graph, &[NodeId::Ty(a)], &DotOptions::default());
        assert!(dot.starts_with("digraph jungloids {"));
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("label=\"B\""));
        assert!(dot.contains("A.toB"));
        // One hop: C (two hops away) is not included.
        assert!(!dot.contains("label=\"C\""));
    }

    #[test]
    fn hops_expand_the_neighborhood() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = api.types().resolve("t.A").unwrap();
        let dot = neighborhood(
            &api,
            &graph,
            &[NodeId::Ty(a)],
            &DotOptions { hops: 2, ..DotOptions::default() },
        );
        assert!(dot.contains("label=\"C\""));
    }

    #[test]
    fn widening_edges_are_dotted_and_optional() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let b = api.types().resolve("t.B").unwrap();
        let with = neighborhood(&api, &graph, &[NodeId::Ty(b)], &DotOptions::default());
        assert!(with.contains("style=dotted"));
        let without = neighborhood(
            &api,
            &graph,
            &[NodeId::Ty(b)],
            &DotOptions { show_widening: false, ..DotOptions::default() },
        );
        assert!(!without.contains("style=dotted"));
    }

    #[test]
    fn mined_nodes_dashed_and_downcasts_red() {
        let mut api = api();
        let _ = &mut api;
        let a = api.types().resolve("t.A").unwrap();
        let b = api.types().resolve("t.B").unwrap();
        let to_b = api.lookup_instance_method(a, "toB", 0)[0];
        let mut graph = JungloidGraph::from_api(&api, GraphConfig::default());
        graph
            .add_example(
                &api,
                &[
                    jungloid_apidef::ElemJungloid::Call {
                        method: to_b,
                        input: Some(jungloid_apidef::InputSlot::Receiver),
                    },
                    jungloid_apidef::ElemJungloid::Widen { from: b, to: a },
                    jungloid_apidef::ElemJungloid::Downcast { from: a, to: b },
                ],
            )
            .unwrap();
        let dot = neighborhood(
            &api,
            &graph,
            &[NodeId::Ty(a)],
            &DotOptions { hops: 3, ..DotOptions::default() },
        );
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
    }

    #[test]
    fn max_nodes_caps_output() {
        let api = api();
        let graph = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = api.types().resolve("t.A").unwrap();
        let dot = neighborhood(
            &api,
            &graph,
            &[NodeId::Ty(a)],
            &DotOptions { hops: 5, max_nodes: 1, ..DotOptions::default() },
        );
        // Only the root survives.
        assert_eq!(dot.matches("shape=box").count(), 1);
        assert!(dot.contains("label=\"A\""));
    }
}
