//! Query composition (§2.2): building complete, multi-statement solutions
//! out of several jungloid queries.
//!
//! A single jungloid covers code with one input and one output; methods
//! with more inputs leave *free variables*. The paper's workflow is
//! manual: the user sees `DocumentProviderRegistry dpreg; // free
//! variable` and issues a follow-up query for that type. This module
//! automates the loop: for every free variable of a chosen suggestion it
//! runs the same context query (visible variables + `void`), takes the
//! best answer, and splices its statements in front — recursively, until
//! everything is bound or no query has an answer.
//!
//! The result is exactly the finished §2.2 block:
//!
//! ```text
//! IEditorInput editorInput = ep.getEditorInput();
//! DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();
//! IDocumentProvider dp = documentProviderRegistry.getDocumentProvider(editorInput);
//! ```

use jungloid_minijava::ast::{Expr, Stmt};
use jungloid_minijava::print::stmt_to_string;
use jungloid_typesys::TyId;

use crate::engine::Prospector;
use crate::path::Jungloid;
use crate::synth::{synthesize_statements_pooled, ty_to_type_name, NamePool};

/// Composition limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComposeConfig {
    /// Maximum recursion depth through free variables (paper scenarios
    /// need 1; deeper chains are legal).
    pub max_depth: usize,
    /// Maximum total statements (backstop against pathological graphs).
    pub max_statements: usize,
}

impl Default for ComposeConfig {
    fn default() -> Self {
        ComposeConfig { max_depth: 3, max_statements: 40 }
    }
}

/// A fully (or maximally) composed solution.
#[derive(Clone, Debug)]
pub struct Composition {
    /// The statement sequence, ready to insert.
    pub statements: Vec<Stmt>,
    /// The variable holding the final result.
    pub result_var: String,
    /// Static type of the result.
    pub result_ty: TyId,
    /// Free variables that could not be bound by any follow-up query
    /// (`(name, type)`), still declared in `statements`.
    pub unresolved: Vec<(String, TyId)>,
}

impl Composition {
    /// Whether every free variable was bound.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.unresolved.is_empty()
    }

    /// Renders the statements, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        self.statements.iter().map(stmt_to_string).collect::<Vec<_>>().join("\n")
    }
}

/// Composes a full solution for `jungloid`, binding its free variables
/// with follow-up context queries over `visible`.
///
/// Returns `None` only if the jungloid is empty.
#[must_use]
pub fn compose(
    engine: &Prospector,
    jungloid: &Jungloid,
    input_name: Option<&str>,
    visible: &[(&str, TyId)],
    config: &ComposeConfig,
) -> Option<Composition> {
    let api = engine.api();
    let mut pool = NamePool::new();
    for (name, _) in visible {
        pool.reserve(name);
    }
    let mut statements = Vec::new();
    let mut unresolved = Vec::new();
    let result_var = compose_into(
        engine,
        jungloid,
        input_name,
        visible,
        config,
        config.max_depth,
        &mut pool,
        &mut statements,
        &mut unresolved,
    )?;
    let _ = api;
    Some(Composition {
        statements,
        result_var,
        result_ty: jungloid.output_ty(engine.api()),
        unresolved,
    })
}

/// Recursive worker: appends the statements computing `jungloid` (with
/// free variables bound where possible) and returns the result variable.
#[allow(clippy::too_many_arguments)]
fn compose_into(
    engine: &Prospector,
    jungloid: &Jungloid,
    input_name: Option<&str>,
    visible: &[(&str, TyId)],
    config: &ComposeConfig,
    depth: usize,
    pool: &mut NamePool,
    statements: &mut Vec<Stmt>,
    unresolved: &mut Vec<(String, TyId)>,
) -> Option<String> {
    let api = engine.api();
    let (stmts, snippet) = synthesize_statements_pooled(api, jungloid, input_name, pool);
    let mut result_var = None;
    for stmt in stmts {
        if statements.len() >= config.max_statements {
            return result_var;
        }
        match stmt {
            // A free-variable declaration: try to bind it.
            Stmt::Local { ty, name, init: None } => {
                let free_ty = snippet
                    .free_vars
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, t)| *t)
                    .unwrap_or_else(|| {
                        api.types().resolve(&ty.parts.join(".")).expect("synthesized type resolves")
                    });
                let bound = (depth > 0)
                    .then(|| engine.assist(visible, free_ty).ok())
                    .flatten()
                    .and_then(|result| result.suggestions.first().cloned());
                match bound {
                    Some(best) => {
                        let sub_input = best.input_var.clone();
                        let sub_var = compose_into(
                            engine,
                            &best.jungloid,
                            sub_input.as_deref(),
                            visible,
                            config,
                            depth - 1,
                            pool,
                            statements,
                            unresolved,
                        );
                        match sub_var {
                            Some(sub) => {
                                // The main snippet refers to the free
                                // variable's name. If the sub-result is the
                                // most recent declaration, rename it in
                                // place; otherwise rebind.
                                match statements.last_mut() {
                                    Some(Stmt::Local { name: last, .. }) if *last == sub => {
                                        last.clone_from(&name);
                                    }
                                    _ => statements.push(Stmt::Local {
                                        ty: ty_to_type_name(api, free_ty),
                                        name: name.clone(),
                                        init: Some(Expr::var(&sub)),
                                    }),
                                }
                            }
                            None => {
                                unresolved.push((name.clone(), free_ty));
                                statements.push(Stmt::Local { ty, name, init: None });
                            }
                        }
                    }
                    None => {
                        unresolved.push((name.clone(), free_ty));
                        statements.push(Stmt::Local { ty, name, init: None });
                    }
                }
            }
            Stmt::Local { ty, name, init } => {
                result_var = Some(name.clone());
                statements.push(Stmt::Local { ty, name, init });
            }
            other => statements.push(other),
        }
    }
    result_var.or_else(|| input_name.map(str::to_owned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::ApiLoader;

    fn engine() -> Prospector {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "ui.api",
                r"
                package ui;
                public interface IEditorInput {}
                public interface IEditorPart { IEditorInput getEditorInput(); }
                public interface IDocumentProvider {}
                public class DocumentProviderRegistry {
                    static DocumentProviderRegistry getDefault();
                    IDocumentProvider getDocumentProvider(IEditorInput input);
                }
                public class Orphan {
                    IDocumentProvider viaMystery(Mystery m);
                }
                public class Mystery {}
                ",
            )
            .unwrap();
        Prospector::new(loader.finish().unwrap())
    }

    #[test]
    fn section_2_2_composition_is_automatic() {
        let engine = engine();
        let api = engine.api();
        let part = api.types().resolve("IEditorPart").unwrap();
        let provider = api.types().resolve("IDocumentProvider").unwrap();
        let result = engine.query(part, provider).unwrap();
        let best = result
            .suggestions
            .iter()
            .find(|s| s.code.contains("getEditorInput"))
            .expect("registry route present");

        let composed = compose(
            &engine,
            &best.jungloid,
            Some("ep"),
            &[("ep", part)],
            &ComposeConfig::default(),
        )
        .expect("composes");
        assert!(composed.is_complete(), "unresolved: {:?}", composed.unresolved);
        let text = composed.render();
        assert!(text.contains("IEditorInput editorInput = ep.getEditorInput();"), "{text}");
        assert!(
            text.contains(
                "DocumentProviderRegistry documentProviderRegistry = DocumentProviderRegistry.getDefault();"
            ) || text.contains("= documentProviderRegistry2;"),
            "{text}"
        );
        assert!(text.contains("getDocumentProvider(editorInput)"), "{text}");
        // The whole block parses as MiniJava statements.
        let wrapped = format!("class T {{ void m() {{\n{text}\n}} }}");
        jungloid_minijava::parse::parse_unit("composed.mj", &wrapped).unwrap();
    }

    #[test]
    fn unresolvable_free_variables_reported() {
        let engine = engine();
        let api = engine.api();
        let orphan = api.types().resolve("Orphan").unwrap();
        let provider = api.types().resolve("IDocumentProvider").unwrap();
        let result = engine.query(orphan, provider).unwrap();
        let best = result
            .suggestions
            .iter()
            .find(|s| s.code.contains("viaMystery"))
            .expect("mystery route present");
        let composed = compose(
            &engine,
            &best.jungloid,
            Some("o"),
            &[("o", orphan)],
            &ComposeConfig::default(),
        )
        .expect("composes");
        // Mystery has no producers anywhere: left unresolved, still
        // declared.
        assert!(!composed.is_complete());
        assert_eq!(composed.unresolved.len(), 1);
        assert!(composed.render().contains("Mystery m;"));
    }

    #[test]
    fn depth_zero_binds_nothing() {
        let engine = engine();
        let api = engine.api();
        let part = api.types().resolve("IEditorPart").unwrap();
        let provider = api.types().resolve("IDocumentProvider").unwrap();
        let result = engine.query(part, provider).unwrap();
        let best = result
            .suggestions
            .iter()
            .find(|s| s.code.contains("getEditorInput"))
            .unwrap();
        let composed = compose(
            &engine,
            &best.jungloid,
            Some("ep"),
            &[("ep", part)],
            &ComposeConfig { max_depth: 0, ..ComposeConfig::default() },
        )
        .unwrap();
        assert!(!composed.is_complete());
    }

    #[test]
    fn result_metadata_is_consistent() {
        let engine = engine();
        let api = engine.api();
        let part = api.types().resolve("IEditorPart").unwrap();
        let provider = api.types().resolve("IDocumentProvider").unwrap();
        let result = engine.query(part, provider).unwrap();
        let best = result.suggestions.first().unwrap();
        let composed =
            compose(&engine, &best.jungloid, Some("ep"), &[("ep", part)], &ComposeConfig::default())
                .unwrap();
        assert_eq!(composed.result_ty, provider);
        // The result variable is declared by the last statement.
        let last = stmt_to_string(composed.statements.last().unwrap());
        assert!(last.contains(&composed.result_var), "{last}");
    }
}
