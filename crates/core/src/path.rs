//! Jungloids as values: a source type plus a chain of elementary
//! jungloids (§2.1 Definitions 3–4).

use jungloid_apidef::{Api, ElemJungloid};
use jungloid_typesys::TyId;

/// A jungloid: a well-typed composition of elementary jungloids from
/// `source` to [`Jungloid::output_ty`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Jungloid {
    /// The input type `tin` (possibly `void`).
    pub source: TyId,
    /// The composed elementary jungloids, input-to-output order.
    pub elems: Vec<ElemJungloid>,
}

impl Jungloid {
    /// Creates a jungloid, validating well-typedness.
    ///
    /// # Errors
    ///
    /// Returns a description of the first ill-typed composition, or of a
    /// widening/downcast step whose endpoints are not in the subtype
    /// relation.
    pub fn new(api: &Api, source: TyId, elems: Vec<ElemJungloid>) -> Result<Self, String> {
        let j = Jungloid { source, elems };
        j.validate(api)?;
        Ok(j)
    }

    /// Checks Definition 3: each elementary jungloid's input type equals
    /// its predecessor's output type, widenings go up the hierarchy, and
    /// downcasts go down.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, api: &Api) -> Result<(), String> {
        let mut current = self.source;
        for e in &self.elems {
            let expect = e.input_ty(api);
            if expect != current {
                return Err(format!(
                    "step {} expects {} but receives {}",
                    e.label(api),
                    api.types().display(expect),
                    api.types().display(current)
                ));
            }
            match *e {
                ElemJungloid::Widen { from, to }
                    if (!api.types().is_subtype(from, to) || from == to) => {
                        return Err(format!(
                            "invalid widening {} -> {}",
                            api.types().display(from),
                            api.types().display(to)
                        ));
                    }
                ElemJungloid::Downcast { from, to }
                    if (!api.types().is_subtype(to, from) || from == to) => {
                        return Err(format!(
                            "invalid downcast {} -> {}",
                            api.types().display(from),
                            api.types().display(to)
                        ));
                    }
                _ => {}
            }
            current = e.output_ty(api);
        }
        Ok(())
    }

    /// Length per §3.2: the number of elementary jungloids, *not counting
    /// widenings* ("Widening has no syntax, so it does not increase code
    /// size or complexity").
    #[must_use]
    pub fn steps(&self) -> u32 {
        u32::try_from(self.elems.iter().filter(|e| !e.is_widen()).count()).expect("path length")
    }

    /// The output type `tout'` of the composition (equals `source` for the
    /// empty jungloid).
    #[must_use]
    pub fn output_ty(&self, api: &Api) -> TyId {
        self.elems.last().map_or(self.source, |e| e.output_ty(api))
    }

    /// The output type before any trailing widenings — the type the code
    /// *actually* produces. Used by the generality tie-break of §3.2: a
    /// jungloid that returns `XMLEditor` and widens it to the requested
    /// `IEditorPart` is more specific than one returning `IEditorPart`
    /// directly, and ranks below it.
    #[must_use]
    pub fn concrete_output_ty(&self, api: &Api) -> TyId {
        for e in self.elems.iter().rev() {
            if !e.is_widen() {
                return e.output_ty(api);
            }
        }
        self.source
    }

    /// Total `(reference, primitive)` free-variable counts across all
    /// steps.
    #[must_use]
    pub fn free_var_counts(&self, api: &Api) -> (u32, u32) {
        let mut refs = 0;
        let mut prims = 0;
        for e in &self.elems {
            let (r, p) = e.free_var_counts(api);
            refs += r;
            prims += p;
        }
        (refs, prims)
    }

    /// Whether any step is a downcast (i.e. the jungloid needed mining).
    #[must_use]
    pub fn contains_downcast(&self) -> bool {
        self.elems.iter().any(ElemJungloid::is_downcast)
    }

    /// Number of package boundaries crossed along the object chain
    /// (§3.2's refinement: "jungloids that cross many Java package
    /// boundaries are less likely to be useful").
    ///
    /// Counted over the sequence of types produced along the chain
    /// (ignoring widenings and the `void` source): each adjacent pair
    /// living in different packages is one crossing.
    #[must_use]
    pub fn package_crossings(&self, api: &Api) -> u32 {
        let mut crossings = 0;
        let mut prev = api.types().package_of(self.source);
        for e in &self.elems {
            if e.is_widen() {
                continue;
            }
            let here = api.types().package_of(e.output_ty(api));
            if let (Some(a), Some(b)) = (prev, here) {
                if a != b {
                    crossings += 1;
                }
            }
            prev = here;
        }
        crossings
    }

    /// A stable per-step kind code used as a deterministic tie-break:
    /// field access 0, instance call 1, static call 2, constructor 3,
    /// downcast 4 (widenings skipped).
    #[must_use]
    pub fn kind_seq(&self, api: &Api) -> Vec<u8> {
        self.elems
            .iter()
            .filter_map(|e| match *e {
                ElemJungloid::FieldAccess { .. } => Some(0),
                ElemJungloid::Call { method, .. } => {
                    let def = api.method(method);
                    if def.is_constructor {
                        Some(3)
                    } else if def.is_static {
                        Some(2)
                    } else {
                        Some(1)
                    }
                }
                ElemJungloid::Widen { .. } => None,
                ElemJungloid::Downcast { .. } => Some(4),
            })
            .collect()
    }

    /// Sum of inheritance depths of the intermediate and final produced
    /// types; the secondary generality tie-break (a chain through more
    /// general types is preferred).
    #[must_use]
    pub fn depth_sum(&self, api: &Api) -> u32 {
        self.elems
            .iter()
            .filter(|e| !e.is_widen())
            .map(|e| api.types().depth(e.output_ty(api)))
            .sum()
    }

    /// Compact arrow notation for diagnostics, e.g.
    /// `IFile -[JavaCore.createCompilationUnitFrom]-> ICompilationUnit ...`.
    #[must_use]
    pub fn describe(&self, api: &Api) -> String {
        let mut s = api.types().display_simple(self.source);
        for e in &self.elems {
            s.push_str(&format!(
                " -[{}]-> {}",
                e.label(api),
                api.types().display_simple(e.output_ty(api))
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::{ApiLoader, InputSlot};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package p1;
                public class A { B toB(); }
                package p2;
                public class B extends A {
                    static B merge(A first, A second, int flags);
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    #[test]
    fn validation_accepts_well_typed() {
        let api = api();
        let a = api.types().resolve("A").unwrap();
        let b = api.types().resolve("B").unwrap();
        let to_b = api.lookup_instance_method(a, "toB", 0)[0];
        let j = Jungloid::new(
            &api,
            a,
            vec![
                ElemJungloid::Call { method: to_b, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: a },
            ],
        )
        .unwrap();
        assert_eq!(j.steps(), 1);
        assert_eq!(j.output_ty(&api), a);
        assert_eq!(j.concrete_output_ty(&api), b);
    }

    #[test]
    fn validation_rejects_bad_chain() {
        let api = api();
        let a = api.types().resolve("A").unwrap();
        let b = api.types().resolve("B").unwrap();
        let to_b = api.lookup_instance_method(a, "toB", 0)[0];
        // toB outputs B; feeding it into toB again requires A upcast first.
        let err = Jungloid::new(
            &api,
            b,
            vec![ElemJungloid::Call { method: to_b, input: Some(InputSlot::Receiver) }],
        )
        .unwrap_err();
        assert!(err.contains("expects"));
    }

    #[test]
    fn validation_rejects_sideways_widen_and_cast() {
        let api = api();
        let a = api.types().resolve("A").unwrap();
        let b = api.types().resolve("B").unwrap();
        // widen must go up: B -> A ok, A -> B not.
        assert!(Jungloid::new(&api, a, vec![ElemJungloid::Widen { from: a, to: b }]).is_err());
        // downcast must go down: A -> B ok, B -> A not.
        assert!(Jungloid::new(&api, b, vec![ElemJungloid::Downcast { from: b, to: a }]).is_err());
        assert!(Jungloid::new(&api, a, vec![ElemJungloid::Downcast { from: a, to: b }]).is_ok());
    }

    #[test]
    fn free_vars_accumulate() {
        let api = api();
        let a = api.types().resolve("A").unwrap();
        let b = api.types().resolve("B").unwrap();
        let merge = api.lookup_static_method(b, "merge", 3)[0];
        let j = Jungloid::new(
            &api,
            a,
            vec![ElemJungloid::Call { method: merge, input: Some(InputSlot::Arg(0)) }],
        )
        .unwrap();
        // `second` (reference) and `flags` (int) are free.
        assert_eq!(j.free_var_counts(&api), (1, 1));
    }

    #[test]
    fn crossings_counted_over_packages() {
        let api = api();
        let a = api.types().resolve("A").unwrap(); // p1
        let b = api.types().resolve("B").unwrap(); // p2
        let to_b = api.lookup_instance_method(a, "toB", 0)[0];
        let j = Jungloid::new(
            &api,
            a,
            vec![ElemJungloid::Call { method: to_b, input: Some(InputSlot::Receiver) }],
        )
        .unwrap();
        // A (p1) -> B (p2): one crossing.
        assert_eq!(j.package_crossings(&api), 1);
        // Widening doesn't add crossings.
        let j2 = Jungloid::new(
            &api,
            a,
            vec![
                ElemJungloid::Call { method: to_b, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: a },
            ],
        )
        .unwrap();
        assert_eq!(j2.package_crossings(&api), 1);
    }

    #[test]
    fn kind_seq_and_describe() {
        let api = api();
        let a = api.types().resolve("A").unwrap();
        let b = api.types().resolve("B").unwrap();
        let to_b = api.lookup_instance_method(a, "toB", 0)[0];
        let merge = api.lookup_static_method(b, "merge", 3)[0];
        let j = Jungloid::new(
            &api,
            a,
            vec![
                ElemJungloid::Call { method: to_b, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: a },
                ElemJungloid::Call { method: merge, input: Some(InputSlot::Arg(1)) },
            ],
        )
        .unwrap();
        assert_eq!(j.kind_seq(&api), vec![1, 2]);
        let desc = j.describe(&api);
        assert!(desc.starts_with("A -[A.toB]-> B"));
        assert!(desc.contains("B.merge"));
        assert!(!j.contains_downcast());
    }
}
