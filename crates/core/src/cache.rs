//! An N-way sharded cache with least-recently-used eviction.
//!
//! The engine keys distance fields by query target; a single global lock
//! would serialize every concurrent query on cache lookups even though
//! the fields themselves are immutable once built. Sharding by key hash
//! gives concurrent queries on different targets independent locks, and
//! values are built *outside* the shard lock so even same-shard misses
//! never hold a lock across an `O(nodes + edges)` build.
//!
//! Eviction is true LRU per shard: every hit stamps the entry with a
//! monotonically increasing shard tick, and when a shard overflows its
//! capacity the entry with the oldest stamp is removed. With per-shard
//! capacities in the tens, the eviction scan is a handful of loads —
//! no intrusive list needed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What one [`ShardedLru::get_or_insert_with`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the value was already present (the builder did not run).
    pub hit: bool,
    /// How many entries were evicted to make room (0 or 1).
    pub evicted: usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Shard tick at last touch; smallest = least recently used.
    last_used: u64,
}

#[derive(Debug)]
struct Shard<K, V> {
    entries: HashMap<K, Entry<V>>,
    tick: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard { entries: HashMap::new(), tick: 0 }
    }
}

impl<K: Hash + Eq + Copy, V: Clone> Shard<K, V> {
    fn touch(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Inserts (bumping recency) and evicts the LRU entry if over `cap`.
    fn insert(&mut self, key: K, value: V, cap: usize) -> usize {
        self.tick += 1;
        self.entries.insert(key, Entry { value, last_used: self.tick });
        let mut evicted = 0;
        while self.entries.len() > cap {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("overfull shard has a victim");
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A sharded LRU map from `K` to `V`.
///
/// Values are cloned out on access, so `V` is typically an `Arc`.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_cap: usize,
}

impl<K: Hash + Eq + Copy, V: Clone> ShardedLru<K, V> {
    /// A cache of `shards` shards holding at most `capacity` entries in
    /// total (rounded up to a multiple of the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(capacity > 0, "at least one entry");
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: capacity.div_ceil(shards),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        // splitmix64 finalizer: spreads low-entropy hashes across shards.
        let mut h = hasher.finish();
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, bumping its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("cache shard poisoned").touch(key)
    }

    /// Returns the cached value for `key`, or runs `build` and caches its
    /// result. `build` runs with no lock held, so a slow build never
    /// blocks other keys; two racing builders for the same key both run,
    /// and the last insert wins (the values are interchangeable).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, build: F) -> (V, CacheOutcome) {
        let shard = self.shard(&key);
        if let Some(value) = shard.lock().expect("cache shard poisoned").touch(&key) {
            return (value, CacheOutcome { hit: true, evicted: 0 });
        }
        let value = build();
        let evicted =
            shard.lock().expect("cache shard poisoned").insert(key, value.clone(), self.shard_cap);
        (value, CacheOutcome { hit: false, evicted })
    }

    /// Inserts `key` (bumping recency), evicting the per-shard LRU entry
    /// if the shard overflows. Returns how many entries were evicted.
    pub fn insert(&self, key: K, value: V) -> usize {
        self.shard(&key).lock().expect("cache shard poisoned").insert(key, value, self.shard_cap)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .entries
            .remove(key)
            .map(|e| e.value)
    }

    /// Drops every entry (used when the keyed data is invalidated).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").entries.clear();
        }
    }

    /// Entries currently cached, across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").entries.len()).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What one flight is doing.
#[derive(Debug)]
enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; waiters share this value.
    Done(V),
    /// The leader dropped its lease without completing (panic or early
    /// return); waiters must retry and elect a new leader.
    Abandoned,
}

/// One in-progress computation that concurrent lookups of the same key
/// attach to instead of recomputing.
#[derive(Debug)]
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
    /// Callers currently blocked on this flight (observability/tests).
    waiters: AtomicUsize,
}

/// The obligation a [`SingleflightCache::lookup`] miss hands its caller:
/// compute the value and [`FlightLease::complete`] it, waking every
/// waiter. Dropping the lease without completing marks the flight
/// abandoned, so waiters retry instead of hanging — a panicking leader
/// never strands its followers.
#[derive(Debug)]
pub struct FlightLease<'a, K: Hash + Eq + Copy, V: Clone> {
    cache: &'a SingleflightCache<K, V>,
    key: K,
    epoch: u64,
    completed: bool,
}

impl<K: Hash + Eq + Copy, V: Clone> FlightLease<'_, K, V> {
    /// Publishes `value` under the lease's key and epoch: inserts it into
    /// the LRU, then resolves the flight so every waiter receives a clone.
    /// Returns how many LRU entries were evicted to make room.
    pub fn complete(mut self, value: V) -> usize {
        self.completed = true;
        // LRU first, flight second: a lookup that finds the inflight map
        // empty is then guaranteed to see the value in the LRU (its
        // double-check runs under the inflight lock).
        let evicted = self.cache.lru.insert(self.key, (self.epoch, value.clone()));
        let flight = self.cache.inflight.lock().expect("inflight map poisoned").remove(&self.key);
        if let Some(flight) = flight {
            *flight.state.lock().expect("flight poisoned") = FlightState::Done(value);
            flight.cv.notify_all();
        }
        evicted
    }
}

impl<K: Hash + Eq + Copy, V: Clone> Drop for FlightLease<'_, K, V> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let flight = self.cache.inflight.lock().expect("inflight map poisoned").remove(&self.key);
        if let Some(flight) = flight {
            *flight.state.lock().expect("flight poisoned") = FlightState::Abandoned;
            flight.cv.notify_all();
        }
    }
}

/// What one [`SingleflightCache::lookup`] produced.
#[derive(Debug)]
pub enum Lookup<'a, K: Hash + Eq + Copy, V: Clone> {
    /// A fresh (same-epoch) value was already cached.
    Hit(V),
    /// A concurrent leader computed the value while this caller waited —
    /// the call collapsed onto an in-progress flight.
    Shared(V),
    /// This caller is the leader: compute the value and
    /// [`FlightLease::complete`] it.
    Miss(FlightLease<'a, K, V>),
}

/// An epoch-stamped sharded LRU with singleflight collapsing.
///
/// Every cached value is stamped with the **epoch** of the data it was
/// derived from; a lookup presents the current epoch and a stamp mismatch
/// drops the entry instead of returning it, so a stale value can never be
/// served no matter how the underlying data mutated.
///
/// **Singleflight:** when several callers miss on the same key at once,
/// exactly one (the *leader*, handed a [`FlightLease`]) runs the
/// computation; the rest block on the flight's condvar and receive a
/// clone of the leader's value ([`Lookup::Shared`]). `V` is typically an
/// `Arc`, so "clone" is a refcount bump and N concurrent identical
/// queries cost one pipeline run plus N-1 pointer copies.
#[derive(Debug)]
pub struct SingleflightCache<K: Hash + Eq + Copy, V: Clone> {
    lru: ShardedLru<K, (u64, V)>,
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K: Hash + Eq + Copy, V: Clone> SingleflightCache<K, V> {
    /// A cache of `shards` LRU shards holding at most `capacity` entries
    /// in total.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        SingleflightCache { lru: ShardedLru::new(shards, capacity), inflight: Mutex::new(HashMap::new()) }
    }

    /// Checks the stale-or-fresh state of `key` against the LRU only
    /// (no flight interaction). `Some(value)` iff a same-`epoch` entry is
    /// cached; a stale entry is dropped and counts as the returned
    /// `invalidated` flag.
    fn lru_probe(&self, key: &K, epoch: u64, invalidated: &mut bool) -> Option<V> {
        let (stamp, value) = self.lru.get(key)?;
        if stamp == epoch {
            return Some(value);
        }
        // Built against an older graph: drop it rather than serve it.
        self.lru.remove(key);
        *invalidated = true;
        None
    }

    /// Looks up `key` at `epoch`. The second return is whether a *stale*
    /// entry (wrong epoch) was found and dropped along the way.
    pub fn lookup(&self, key: K, epoch: u64) -> (Lookup<'_, K, V>, bool) {
        let mut invalidated = false;
        loop {
            if let Some(value) = self.lru_probe(&key, epoch, &mut invalidated) {
                return (Lookup::Hit(value), invalidated);
            }
            let flight = {
                let mut inflight = self.inflight.lock().expect("inflight map poisoned");
                match inflight.get(&key) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        // No flight. A just-finished leader removes its
                        // flight *after* filling the LRU, so re-probe under
                        // the inflight lock before claiming leadership —
                        // otherwise two pipeline runs could slip through
                        // the complete()-to-remove window.
                        if let Some(value) = self.lru_probe(&key, epoch, &mut invalidated) {
                            return (Lookup::Hit(value), invalidated);
                        }
                        inflight.insert(
                            key,
                            Arc::new(Flight {
                                state: Mutex::new(FlightState::Pending),
                                cv: Condvar::new(),
                                waiters: AtomicUsize::new(0),
                            }),
                        );
                        return (
                            Lookup::Miss(FlightLease { cache: self, key, epoch, completed: false }),
                            invalidated,
                        );
                    }
                }
            };
            flight.waiters.fetch_add(1, Ordering::SeqCst);
            let mut state = flight.state.lock().expect("flight poisoned");
            while matches!(*state, FlightState::Pending) {
                state = flight.cv.wait(state).expect("flight poisoned");
            }
            let outcome = match &*state {
                FlightState::Done(value) => Some(value.clone()),
                FlightState::Abandoned => None,
                FlightState::Pending => unreachable!("wait loop exits only on resolution"),
            };
            drop(state);
            flight.waiters.fetch_sub(1, Ordering::SeqCst);
            match outcome {
                Some(value) => return (Lookup::Shared(value), invalidated),
                // Leader bailed: go around and elect a new one.
                None => continue,
            }
        }
    }

    /// Entries currently cached (excludes in-progress flights).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds no completed entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Drops every cached entry (in-progress flights are unaffected).
    pub fn clear(&self) {
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_recently_used_entry_is_the_one_evicted() {
        // One shard so the eviction order is fully observable.
        let cache: ShardedLru<u32, u32> = ShardedLru::new(1, 3);
        for k in [1, 2, 3] {
            let (_, out) = cache.get_or_insert_with(k, || k * 10);
            assert!(!out.hit);
            assert_eq!(out.evicted, 0);
        }
        // Recency now 1 < 2 < 3. Touch 1: recency 2 < 3 < 1.
        assert_eq!(cache.get(&1), Some(10));
        // Inserting a fourth entry must evict 2 — the least recently
        // used — not 1 (insertion-oldest) and not an arbitrary entry.
        let (_, out) = cache.get_or_insert_with(4, || 40);
        assert_eq!(out.evicted, 1);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(10), "recently touched entry kept");
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.get(&4), Some(40));
    }

    #[test]
    fn hits_report_hit_and_do_not_rebuild() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 8);
        let (v, out) = cache.get_or_insert_with(7, || 70);
        assert_eq!((v, out.hit), (70, false));
        let (v, out) = cache.get_or_insert_with(7, || unreachable!("must not rebuild"));
        assert_eq!((v, out.hit), (70, true));
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 64);
        for k in 0..32 {
            let _ = cache.get_or_insert_with(k, || k);
        }
        assert_eq!(cache.len(), 32);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&0), None);
    }

    #[test]
    fn capacity_bounds_total_size_across_shards() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 16);
        for k in 0..1000 {
            let _ = cache.get_or_insert_with(k, || k);
        }
        // Per-shard cap is 4; hashing spreads keys, so the total stays at
        // or below shards * per-shard cap.
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
    }

    #[test]
    fn concurrent_mixed_keys_stay_consistent() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(8, 64);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = (t * 7 + i) % 40;
                        let (v, _) = cache.get_or_insert_with(k, || k * 2);
                        assert_eq!(v, k * 2);
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 8);
        assert_eq!(cache.insert(1, 10), 0);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.remove(&1), Some(10));
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.remove(&1), None);
    }

    #[test]
    fn singleflight_hit_after_complete_and_epoch_mismatch_invalidates() {
        let cache: SingleflightCache<u32, Arc<u32>> = SingleflightCache::new(4, 8);
        let (lookup, invalidated) = cache.lookup(7, 1);
        assert!(!invalidated);
        let Lookup::Miss(lease) = lookup else { panic!("empty cache must miss") };
        assert_eq!(lease.complete(Arc::new(70)), 0);
        assert_eq!(cache.len(), 1);

        // Same epoch: a plain hit.
        let (lookup, invalidated) = cache.lookup(7, 1);
        assert!(!invalidated);
        let Lookup::Hit(v) = lookup else { panic!("same-epoch lookup must hit") };
        assert_eq!(*v, 70);

        // Newer epoch: the stamped entry is stale — dropped, not served.
        let (lookup, invalidated) = cache.lookup(7, 2);
        assert!(invalidated, "stale entry must be counted as invalidated");
        let Lookup::Miss(lease) = lookup else { panic!("stale entry must not be served") };
        lease.complete(Arc::new(71));
        let (lookup, _) = cache.lookup(7, 2);
        let Lookup::Hit(v) = lookup else { panic!("re-completed entry must hit") };
        assert_eq!(*v, 71);
    }

    /// Deterministic collapse: the leader holds its flight open until all
    /// 7 followers are provably blocked on it (the flight's waiter count
    /// is observable from inside the module), so every follower *must*
    /// come back as `Shared` — no scheduling luck involved.
    #[test]
    fn singleflight_collapses_concurrent_lookups_onto_one_leader() {
        let cache: SingleflightCache<u32, Arc<u32>> = SingleflightCache::new(4, 8);
        let (lookup, _) = cache.lookup(9, 1);
        let Lookup::Miss(lease) = lookup else { panic!("first lookup leads") };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..7)
                .map(|_| {
                    let cache = &cache;
                    scope.spawn(move || match cache.lookup(9, 1) {
                        (Lookup::Shared(v), _) => *v,
                        (other, _) => panic!("follower got {other:?}, expected Shared"),
                    })
                })
                .collect();
            // Wait for every follower to be parked on the flight before
            // completing it.
            loop {
                let waiters = cache
                    .inflight
                    .lock()
                    .unwrap()
                    .get(&9)
                    .map_or(0, |f| f.waiters.load(Ordering::SeqCst));
                if waiters == 7 {
                    break;
                }
                std::thread::yield_now();
            }
            lease.complete(Arc::new(90));
            for h in handles {
                assert_eq!(h.join().unwrap(), 90);
            }
        });
        assert!(cache.inflight.lock().unwrap().is_empty(), "flight cleaned up");
        assert_eq!(cache.len(), 1);
    }

    /// A leader that drops its lease without completing (panic, early
    /// return) must not strand waiters: they retry and one becomes the
    /// new leader.
    #[test]
    fn abandoned_flight_elects_a_new_leader() {
        let cache: SingleflightCache<u32, Arc<u32>> = SingleflightCache::new(4, 8);
        let (lookup, _) = cache.lookup(3, 1);
        let Lookup::Miss(lease) = lookup else { panic!("first lookup leads") };
        std::thread::scope(|scope| {
            let follower = {
                let cache = &cache;
                scope.spawn(move || match cache.lookup(3, 1) {
                    (Lookup::Miss(lease), _) => {
                        lease.complete(Arc::new(30));
                        "promoted"
                    }
                    (Lookup::Shared(_), _) => "shared",
                    (Lookup::Hit(_), _) => "hit",
                })
            };
            loop {
                let waiters = cache
                    .inflight
                    .lock()
                    .unwrap()
                    .get(&3)
                    .map_or(0, |f| f.waiters.load(Ordering::SeqCst));
                if waiters == 1 {
                    break;
                }
                std::thread::yield_now();
            }
            drop(lease); // abandon without completing
            assert_eq!(follower.join().unwrap(), "promoted");
        });
        let (lookup, _) = cache.lookup(3, 1);
        let Lookup::Hit(v) = lookup else { panic!("promoted leader's value cached") };
        assert_eq!(*v, 30);
    }
}
