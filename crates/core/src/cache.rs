//! An N-way sharded cache with least-recently-used eviction.
//!
//! The engine keys distance fields by query target; a single global lock
//! would serialize every concurrent query on cache lookups even though
//! the fields themselves are immutable once built. Sharding by key hash
//! gives concurrent queries on different targets independent locks, and
//! values are built *outside* the shard lock so even same-shard misses
//! never hold a lock across an `O(nodes + edges)` build.
//!
//! Eviction is true LRU per shard: every hit stamps the entry with a
//! monotonically increasing shard tick, and when a shard overflows its
//! capacity the entry with the oldest stamp is removed. With per-shard
//! capacities in the tens, the eviction scan is a handful of loads —
//! no intrusive list needed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// What one [`ShardedLru::get_or_insert_with`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the value was already present (the builder did not run).
    pub hit: bool,
    /// How many entries were evicted to make room (0 or 1).
    pub evicted: usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Shard tick at last touch; smallest = least recently used.
    last_used: u64,
}

#[derive(Debug)]
struct Shard<K, V> {
    entries: HashMap<K, Entry<V>>,
    tick: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard { entries: HashMap::new(), tick: 0 }
    }
}

impl<K: Hash + Eq + Copy, V: Clone> Shard<K, V> {
    fn touch(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Inserts (bumping recency) and evicts the LRU entry if over `cap`.
    fn insert(&mut self, key: K, value: V, cap: usize) -> usize {
        self.tick += 1;
        self.entries.insert(key, Entry { value, last_used: self.tick });
        let mut evicted = 0;
        while self.entries.len() > cap {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("overfull shard has a victim");
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A sharded LRU map from `K` to `V`.
///
/// Values are cloned out on access, so `V` is typically an `Arc`.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_cap: usize,
}

impl<K: Hash + Eq + Copy, V: Clone> ShardedLru<K, V> {
    /// A cache of `shards` shards holding at most `capacity` entries in
    /// total (rounded up to a multiple of the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(capacity > 0, "at least one entry");
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: capacity.div_ceil(shards),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        // splitmix64 finalizer: spreads low-entropy hashes across shards.
        let mut h = hasher.finish();
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, bumping its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("cache shard poisoned").touch(key)
    }

    /// Returns the cached value for `key`, or runs `build` and caches its
    /// result. `build` runs with no lock held, so a slow build never
    /// blocks other keys; two racing builders for the same key both run,
    /// and the last insert wins (the values are interchangeable).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, build: F) -> (V, CacheOutcome) {
        let shard = self.shard(&key);
        if let Some(value) = shard.lock().expect("cache shard poisoned").touch(&key) {
            return (value, CacheOutcome { hit: true, evicted: 0 });
        }
        let value = build();
        let evicted =
            shard.lock().expect("cache shard poisoned").insert(key, value.clone(), self.shard_cap);
        (value, CacheOutcome { hit: false, evicted })
    }

    /// Drops every entry (used when the keyed data is invalidated).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").entries.clear();
        }
    }

    /// Entries currently cached, across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").entries.len()).sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_recently_used_entry_is_the_one_evicted() {
        // One shard so the eviction order is fully observable.
        let cache: ShardedLru<u32, u32> = ShardedLru::new(1, 3);
        for k in [1, 2, 3] {
            let (_, out) = cache.get_or_insert_with(k, || k * 10);
            assert!(!out.hit);
            assert_eq!(out.evicted, 0);
        }
        // Recency now 1 < 2 < 3. Touch 1: recency 2 < 3 < 1.
        assert_eq!(cache.get(&1), Some(10));
        // Inserting a fourth entry must evict 2 — the least recently
        // used — not 1 (insertion-oldest) and not an arbitrary entry.
        let (_, out) = cache.get_or_insert_with(4, || 40);
        assert_eq!(out.evicted, 1);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(10), "recently touched entry kept");
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.get(&4), Some(40));
    }

    #[test]
    fn hits_report_hit_and_do_not_rebuild() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 8);
        let (v, out) = cache.get_or_insert_with(7, || 70);
        assert_eq!((v, out.hit), (70, false));
        let (v, out) = cache.get_or_insert_with(7, || unreachable!("must not rebuild"));
        assert_eq!((v, out.hit), (70, true));
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 64);
        for k in 0..32 {
            let _ = cache.get_or_insert_with(k, || k);
        }
        assert_eq!(cache.len(), 32);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&0), None);
    }

    #[test]
    fn capacity_bounds_total_size_across_shards() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(4, 16);
        for k in 0..1000 {
            let _ = cache.get_or_insert_with(k, || k);
        }
        // Per-shard cap is 4; hashing spreads keys, so the total stays at
        // or below shards * per-shard cap.
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
    }

    #[test]
    fn concurrent_mixed_keys_stay_consistent() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(8, 64);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200 {
                        let k = (t * 7 + i) % 40;
                        let (v, _) = cache.get_or_insert_with(k, || k * 2);
                        assert_eq!(v, k * 2);
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }
}
