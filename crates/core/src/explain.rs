//! Step-by-step explanations of synthesized jungloids.
//!
//! The paper's user study found that programmers "found examples hard to
//! understand" when adapted by hand; Prospector's advantage is that a
//! jungloid is a simple chain. This module renders that chain as an
//! annotated table — one row per elementary jungloid with its §2.1 kind,
//! the types it converts between, and the free variables it introduces —
//! used by documentation, the CLI, and tests that want readable failures.

use std::fmt::Write as _;

use jungloid_apidef::{Api, ElemJungloid};
use jungloid_typesys::TyId;

use crate::path::Jungloid;

/// One explained step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// 1-based position among the non-widening steps (widenings get 0).
    pub index: usize,
    /// §2.1 kind name: `field access`, `static call`, `constructor`,
    /// `instance call`, `widening`, `downcast`.
    pub kind: &'static str,
    /// Short label, e.g. `JavaCore.createCompilationUnitFrom`.
    pub label: String,
    /// Input type.
    pub from: TyId,
    /// Output type.
    pub to: TyId,
    /// Free-variable types the step introduces.
    pub free_vars: Vec<TyId>,
}

/// Explains each elementary jungloid of `jungloid` in order.
#[must_use]
pub fn explain(api: &Api, jungloid: &Jungloid) -> Vec<Step> {
    let mut out = Vec::new();
    let mut index = 0;
    for elem in &jungloid.elems {
        let kind = match elem {
            ElemJungloid::FieldAccess { .. } => "field access",
            ElemJungloid::Call { method, .. } => {
                let def = api.method(*method);
                if def.is_constructor {
                    "constructor"
                } else if def.is_static {
                    "static call"
                } else {
                    "instance call"
                }
            }
            ElemJungloid::Widen { .. } => "widening",
            ElemJungloid::Downcast { .. } => "downcast",
        };
        if !elem.is_widen() {
            index += 1;
        }
        out.push(Step {
            index: if elem.is_widen() { 0 } else { index },
            kind,
            label: elem.label(api),
            from: elem.input_ty(api),
            to: elem.output_ty(api),
            free_vars: elem.free_var_types(api),
        });
    }
    out
}

/// Renders the explanation as an aligned text table.
#[must_use]
pub fn format_explanation(api: &Api, jungloid: &Jungloid) -> String {
    let steps = explain(api, jungloid);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "jungloid: {} -> {}  ({} steps{})",
        api.types().display_simple(jungloid.source),
        api.types().display_simple(jungloid.output_ty(api)),
        jungloid.steps(),
        if jungloid.contains_downcast() { ", mined" } else { "" }
    );
    for s in steps {
        let idx = if s.index == 0 { "  ".to_owned() } else { format!("{:>2}", s.index) };
        let _ = write!(
            out,
            "{idx}. {:<13} {:<40} {} -> {}",
            s.kind,
            s.label,
            api.types().display_simple(s.from),
            api.types().display_simple(s.to)
        );
        if !s.free_vars.is_empty() {
            let frees: Vec<String> =
                s.free_vars.iter().map(|&t| api.types().display_simple(t)).collect();
            let _ = write!(out, "   (free: {})", frees.join(", "));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::ApiLoader;

    #[test]
    fn explains_the_intro_example() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "jdt.api",
                r"
                package e;
                public interface IFile {}
                public interface ICompilationUnit {}
                public class JavaCore {
                    static ICompilationUnit createCompilationUnitFrom(IFile file);
                }
                public class ASTNode {}
                public class CompilationUnit extends ASTNode {}
                public class AST {
                    static CompilationUnit parseCompilationUnit(ICompilationUnit unit, boolean resolve);
                }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let engine = crate::Prospector::new(api);
        let result = engine.query(ifile, ast).unwrap();
        let j = &result.suggestions[0].jungloid;

        let steps = explain(engine.api(), j);
        assert_eq!(steps.len(), 3); // two statics + widening
        assert_eq!(steps[0].kind, "static call");
        assert_eq!(steps[1].kind, "static call");
        assert_eq!(steps[2].kind, "widening");
        assert_eq!(steps[1].free_vars.len(), 1); // the boolean

        let text = format_explanation(engine.api(), j);
        assert!(text.contains("IFile -> ASTNode"));
        assert!(text.contains("JavaCore.createCompilationUnitFrom"));
        assert!(text.contains("(free: boolean)"));
        assert!(text.contains("widening"));
    }

    #[test]
    fn mined_jungloids_flagged() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "s.api",
                r"
                package s;
                public interface ISel { Object first(); }
                public interface IStructured extends ISel {}
                public class Event { ISel sel(); }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let event = api.types().resolve("Event").unwrap();
        let isel = api.types().resolve("ISel").unwrap();
        let istructured = api.types().resolve("IStructured").unwrap();
        let m = api.lookup_instance_method(event, "sel", 0)[0];
        let j = Jungloid::new(
            &api,
            event,
            vec![
                ElemJungloid::Call { method: m, input: Some(jungloid_apidef::InputSlot::Receiver) },
                ElemJungloid::Downcast { from: isel, to: istructured },
            ],
        )
        .unwrap();
        let text = format_explanation(&api, &j);
        assert!(text.contains(", mined"));
        assert!(text.contains("downcast"));
    }
}
