//! The signature graph (§3.1) and its refinement with mined examples, the
//! jungloid graph (§4.2).
//!
//! Nodes are reference types (plus `void`); edges are non-downcast
//! elementary jungloids derived from the API's signatures. Every jungloid
//! supported by the API is a path in this graph, so synthesis is graph
//! search.
//!
//! Downcast edges are deliberately absent from the signature graph: adding
//! `(T) x : Object → T` for every `T` would represent mostly inviable
//! jungloids and, being short, they would crowd the top ranks (§4.1,
//! Figure 3). Instead, [`JungloidGraph::add_example`] splices in a path per
//! *mined* example jungloid, introducing a fresh node for every
//! intermediate object. Those fresh "typestate" nodes (the paper cites
//! Strom & Yemini) ensure the example lends viability only to jungloids
//! that reproduce its call sequence — Figure 6's `Object-1` node.

use std::sync::atomic::{AtomicU64, Ordering};

use jungloid_apidef::elem::{elem_of_field, elems_of_method};
use jungloid_apidef::{Api, ElemJungloid, Visibility};
use jungloid_typesys::TyId;
use prospector_obs::json::{decode_err, Json, JsonError};

use crate::slab::{ElemSeq, Slab};

/// Process-global epoch source. Every graph *state* — a freshly built
/// graph, a loaded snapshot, or the state after any mutation — gets a
/// distinct epoch, so an epoch-stamped cache entry from one state can
/// never match another. Monotone and process-wide: two different graphs
/// never share an epoch either, which keeps stamps valid even if an
/// engine is rebuilt in place.
static GRAPH_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    GRAPH_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A node: an API type or a fresh mined (typestate) node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The node for an interned type.
    Ty(TyId),
    /// The `i`-th fresh node introduced by mined examples.
    Mined(u32),
}

/// An out-edge: an elementary jungloid and its destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The elementary jungloid this edge represents.
    pub elem: ElemJungloid,
    /// Destination node.
    pub to: NodeId,
}

/// Construction options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[derive(Default)]
pub struct GraphConfig {
    /// Include `protected` members. The paper's implementation supports
    /// public members only and loses one Table 1 query to that (§7); this
    /// switch implements the fix it proposes.
    pub include_protected: bool,
    /// The §4.3 extension: exclude signature edges that consume an
    /// `Object`- or `String`-typed *parameter* slot — the call sites the
    /// paper observes are "usually not any Object or String" — so that
    /// only parameter-mined examples
    /// ([`Prospector::add_param_examples`](crate::Prospector::add_param_examples))
    /// drive values into such parameters. Off by default (the paper left
    /// this untested).
    pub restrict_weak_params: bool,
}


/// Per-kind composition of a jungloid graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Total nodes.
    pub nodes: usize,
    /// Mined typestate nodes.
    pub mined_nodes: usize,
    /// Spliced example paths.
    pub examples: usize,
    /// Field-access edges.
    pub field_edges: usize,
    /// Instance-call edges.
    pub instance_edges: usize,
    /// Static-call edges.
    pub static_edges: usize,
    /// Constructor edges.
    pub constructor_edges: usize,
    /// Widening edges.
    pub widening_edges: usize,
    /// Downcast edges (only from mined paths, unless naive downcasts were
    /// added).
    pub downcast_edges: usize,
}

impl GraphStats {
    /// Total edges.
    #[must_use]
    pub fn total_edges(&self) -> usize {
        self.field_edges
            + self.instance_edges
            + self.static_edges
            + self.constructor_edges
            + self.widening_edges
            + self.downcast_edges
    }
}

/// Frozen compressed-sparse-row (CSR) mirror of the adjacency — the
/// query hot path's view of the graph.
///
/// The `Vec<Vec<_>>` adjacency on [`JungloidGraph`] is the *builder*
/// representation: cheap to append to while signatures and mined examples
/// are spliced in, but every node hop during search costs a pointer chase
/// into a separately allocated edge list. The CSR mirror packs all edges
/// into contiguous arrays indexed by dense node index — `off[n]..off[n+1]`
/// spans node `n`'s edges — in structure-of-arrays form so the 0-1 BFS
/// touches only `(from, cost)` and the DFS touches only
/// `(to, cost, elem)`.
///
/// Invariant: the CSR is rebuilt at the end of every mutating operation
/// ([`JungloidGraph::from_api`], [`JungloidGraph::from_json`],
/// [`JungloidGraph::add_example`],
/// [`JungloidGraph::with_naive_downcasts`]), so it always reflects the
/// list adjacency, with per-node edge order preserved. The engine relies
/// on this when `add_examples` / `add_param_examples` grow the graph.
///
/// Each array is a [`Slab`]: either owned (built in memory) or borrowed
/// straight out of a format-v2 snapshot buffer ([`SnapshotBuf`]), in
/// which case loading the graph copies no edge data at all. The
/// elementary jungloids are an [`ElemSeq`]: owned structs when built,
/// or the snapshot's packed 4×`u32` quads decoded on access.
#[derive(Clone, Debug, Default)]
pub struct CsrAdjacency {
    /// Forward offsets; `len = node_count + 1`.
    fwd_off: Slab<u32>,
    /// Destination dense index per forward edge.
    fwd_to: Slab<u32>,
    /// Elementary jungloid per forward edge.
    fwd_elem: ElemSeq,
    /// Step cost per forward edge (0 for widening).
    fwd_cost: Slab<u8>,
    /// Reverse offsets; `len = node_count + 1`.
    rev_off: Slab<u32>,
    /// Source dense index per reverse edge.
    rev_from: Slab<u32>,
    /// Step cost per reverse edge.
    rev_cost: Slab<u8>,
}

impl CsrAdjacency {
    fn build(graph: &JungloidGraph) -> Self {
        let n = graph.node_count();
        let edges = u32::try_from(graph.edge_count).expect("edge arena fits u32");
        let mut fwd_off = Vec::with_capacity(n + 1);
        let mut fwd_to = Vec::with_capacity(edges as usize);
        let mut fwd_elem = Vec::with_capacity(edges as usize);
        let mut fwd_cost = Vec::with_capacity(edges as usize);
        let mut rev_off = Vec::with_capacity(n + 1);
        let mut rev_from = Vec::with_capacity(edges as usize);
        let mut rev_cost = Vec::with_capacity(edges as usize);
        fwd_off.push(0);
        for row in &graph.out {
            for e in row {
                fwd_to.push(u32::try_from(graph.index_of(e.to)).expect("node fits u32"));
                fwd_elem.push(e.elem);
                fwd_cost.push(u8::from(!e.elem.is_widen()));
            }
            fwd_off.push(u32::try_from(fwd_to.len()).expect("edge arena fits u32"));
        }
        rev_off.push(0);
        for row in &graph.rev {
            for &(from, cost) in row {
                rev_from.push(u32::try_from(graph.index_of(from)).expect("node fits u32"));
                rev_cost.push(cost);
            }
            rev_off.push(u32::try_from(rev_from.len()).expect("edge arena fits u32"));
        }
        CsrAdjacency {
            fwd_off: Slab::from_vec(fwd_off),
            fwd_to: Slab::from_vec(fwd_to),
            fwd_elem: ElemSeq::Owned(fwd_elem),
            fwd_cost: Slab::from_vec(fwd_cost),
            rev_off: Slab::from_vec(rev_off),
            rev_from: Slab::from_vec(rev_from),
            rev_cost: Slab::from_vec(rev_cost),
        }
    }

    /// Node count covered by this layout.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.fwd_off.len().saturating_sub(1)
    }

    /// Edge count (forward == reverse).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.fwd_to.len()
    }

    /// Index range of `node`'s forward edges within the flat arrays.
    #[must_use]
    pub fn out_range(&self, node: usize) -> std::ops::Range<usize> {
        self.fwd_off[node] as usize..self.fwd_off[node + 1] as usize
    }

    /// Forward offset array (`len = node_count + 1`); `off[n]..off[n+1]`
    /// spans node `n`'s edges in the flat forward arrays.
    #[must_use]
    pub fn out_offsets(&self) -> &[u32] {
        &self.fwd_off
    }

    /// Reverse offset array (`len = node_count + 1`), mirroring
    /// [`CsrAdjacency::out_offsets`] for the in-edge arrays.
    #[must_use]
    pub fn in_offsets(&self) -> &[u32] {
        &self.rev_off
    }

    /// Reassembles a CSR from stored flat arrays (the `prospector-store`
    /// snapshot loader), validating structure so a corrupt file can never
    /// produce an index-out-of-bounds panic on the query hot path:
    /// offsets must start at zero, grow monotonically, and end at the
    /// edge count; forward and reverse edge counts must agree; every
    /// dense index must be in range; and each stored cost must equal the
    /// cost [`CsrAdjacency::build`] derives from its elementary jungloid.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] naming the violated invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn from_arrays(
        fwd_off: Vec<u32>,
        fwd_to: Vec<u32>,
        fwd_elem: Vec<ElemJungloid>,
        fwd_cost: Vec<u8>,
        rev_off: Vec<u32>,
        rev_from: Vec<u32>,
        rev_cost: Vec<u8>,
    ) -> Result<CsrAdjacency, SnapshotError> {
        CsrAdjacency::from_slabs(
            Slab::from_vec(fwd_off),
            Slab::from_vec(fwd_to),
            ElemSeq::Owned(fwd_elem),
            Slab::from_vec(fwd_cost),
            Slab::from_vec(rev_off),
            Slab::from_vec(rev_from),
            Slab::from_vec(rev_cost),
        )
    }

    /// [`CsrAdjacency::from_arrays`] over slab-backed storage: the arrays
    /// may borrow directly from a snapshot buffer (the format-v2 zero-copy
    /// load) or be owned, and the same structural validation runs either
    /// way. Elementary jungloids are consulted through the [`ElemSeq`]
    /// accessor, so packed quads are decoded exactly once here and then
    /// again lazily on the hot path.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] naming the violated invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn from_slabs(
        fwd_off: Slab<u32>,
        fwd_to: Slab<u32>,
        fwd_elem: ElemSeq,
        fwd_cost: Slab<u8>,
        rev_off: Slab<u32>,
        rev_from: Slab<u32>,
        rev_cost: Slab<u8>,
    ) -> Result<CsrAdjacency, SnapshotError> {
        let fail = |detail: String| Err(SnapshotError { detail });
        if fwd_off.is_empty() || rev_off.len() != fwd_off.len() {
            return fail(format!(
                "offset arrays must be non-empty and equal-length (fwd {}, rev {})",
                fwd_off.len(),
                rev_off.len()
            ));
        }
        let node_count = fwd_off.len() - 1;
        let edge_count = fwd_to.len();
        if fwd_elem.len() != edge_count || fwd_cost.len() != edge_count {
            return fail(format!(
                "forward arrays disagree on edge count ({edge_count} to, {} elem, {} cost)",
                fwd_elem.len(),
                fwd_cost.len()
            ));
        }
        if rev_from.len() != edge_count || rev_cost.len() != edge_count {
            return fail(format!(
                "reverse arrays hold {} edges, forward {edge_count}",
                rev_from.len()
            ));
        }
        for (name, off, flat_len) in
            [("forward", &fwd_off, fwd_to.len()), ("reverse", &rev_off, rev_from.len())]
        {
            if off[0] != 0 {
                return fail(format!("{name} offsets must start at 0"));
            }
            if off.windows(2).any(|w| w[0] > w[1]) {
                return fail(format!("{name} offsets must be monotone"));
            }
            if off[node_count] as usize != flat_len {
                return fail(format!(
                    "{name} offsets end at {} but {flat_len} edges are stored",
                    off[node_count]
                ));
            }
        }
        let bound = u32::try_from(node_count)
            .map_err(|_| SnapshotError { detail: "node count exceeds u32".to_owned() })?;
        if let Some(&bad) = fwd_to.iter().chain(rev_from.iter()).find(|&&n| n >= bound) {
            return fail(format!("edge endpoint {bad} out of range ({node_count} nodes)"));
        }
        for (i, elem) in fwd_elem.iter().enumerate() {
            if fwd_cost[i] != u8::from(!elem.is_widen()) {
                return fail(format!("forward edge {i} cost disagrees with its jungloid kind"));
            }
        }
        if let Some(&bad) = rev_cost.iter().find(|&&c| c > 1) {
            return fail(format!("reverse edge cost {bad} out of range (0-1 BFS costs)"));
        }
        Ok(CsrAdjacency { fwd_off, fwd_to, fwd_elem, fwd_cost, rev_off, rev_from, rev_cost })
    }

    /// Destination dense indices, all nodes' edges concatenated.
    #[must_use]
    pub fn out_to(&self) -> &[u32] {
        &self.fwd_to
    }

    /// Elementary jungloids, parallel to [`CsrAdjacency::out_to`]. An
    /// [`ElemSeq`]: owned structs or packed snapshot quads decoded per
    /// access — index with [`ElemSeq::get`].
    #[must_use]
    pub fn out_elem(&self) -> &ElemSeq {
        &self.fwd_elem
    }

    /// True if any array borrows from a snapshot buffer rather than
    /// owning its storage (the format-v2 zero-copy load path).
    #[must_use]
    pub fn is_borrowed(&self) -> bool {
        self.fwd_off.is_borrowed()
            || self.fwd_to.is_borrowed()
            || self.fwd_cost.is_borrowed()
            || self.rev_off.is_borrowed()
            || self.rev_from.is_borrowed()
            || self.rev_cost.is_borrowed()
            || self.fwd_elem.is_packed()
    }

    /// Step costs, parallel to [`CsrAdjacency::out_to`].
    #[must_use]
    pub fn out_cost(&self) -> &[u8] {
        &self.fwd_cost
    }

    /// Index range of `node`'s reverse edges within the flat arrays.
    #[must_use]
    pub fn in_range(&self, node: usize) -> std::ops::Range<usize> {
        self.rev_off[node] as usize..self.rev_off[node + 1] as usize
    }

    /// Source dense indices, all nodes' in-edges concatenated.
    #[must_use]
    pub fn in_from(&self) -> &[u32] {
        &self.rev_from
    }

    /// Step costs, parallel to [`CsrAdjacency::in_from`].
    #[must_use]
    pub fn in_cost(&self) -> &[u8] {
        &self.rev_cost
    }

    /// In-memory footprint of the flat arrays in bytes. Packed jungloid
    /// quads occupy 16 bytes each in the snapshot buffer; owned ones the
    /// in-memory struct size.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let elem = if self.fwd_elem.is_packed() { 16 } else { std::mem::size_of::<ElemJungloid>() };
        (self.fwd_off.len() + self.rev_off.len()) * 4
            + self.fwd_to.len() * (4 + 1)
            + self.fwd_elem.len() * elem
            + self.rev_from.len() * (4 + 1)
    }
}

/// A structurally invalid stored graph snapshot (binary `.pspk` sections
/// that decoded cleanly but describe an impossible graph).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError {
    /// Explanation of the violated invariant.
    pub detail: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid graph snapshot: {}", self.detail)
    }
}

impl std::error::Error for SnapshotError {}

/// An invalid mined example.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExampleError {
    /// Explanation.
    pub detail: String,
}

impl std::fmt::Display for ExampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid example jungloid: {}", self.detail)
    }
}

impl std::error::Error for ExampleError {}

/// The jungloid graph: signature edges plus mined example paths.
#[derive(Clone, Debug)]
pub struct JungloidGraph {
    config: GraphConfig,
    /// Number of type-backed nodes (= type-table size at build time).
    ty_count: u32,
    /// Base type of each mined node (the static type at that program
    /// point; used for display and ranking).
    mined_base: Vec<TyId>,
    /// Out-edges, indexed by dense node index (types first, then mined).
    /// Empty while the graph is *frozen* (snapshot-loaded and unmutated);
    /// see [`JungloidGraph::thaw`].
    out: Vec<Vec<Edge>>,
    /// Reverse adjacency for distance-to-target pruning:
    /// `(from, step_cost)` per in-edge. Empty while frozen.
    rev: Vec<Vec<(NodeId, u8)>>,
    /// Whether `out`/`rev` are materialized. Construction from an API or
    /// JSON builds them eagerly; a snapshot load leaves the graph frozen
    /// on the CSR alone and [`JungloidGraph::thaw`] materializes them on
    /// the first mutation.
    lists_ready: bool,
    /// Example step-sequences already added (dedup).
    examples: Vec<Vec<ElemJungloid>>,
    edge_count: usize,
    /// Frozen CSR mirror of `out`/`rev`; rebuilt after every mutation.
    csr: CsrAdjacency,
    /// This graph state's epoch (see [`JungloidGraph::epoch`]). Advanced
    /// on every mutation, fresh on every construction path.
    epoch: u64,
}

impl JungloidGraph {
    /// Builds the signature graph of an API (§3.1): field, call, and
    /// widening edges; no downcasts.
    #[must_use]
    pub fn from_api(api: &Api, config: GraphConfig) -> Self {
        let ty_count = u32::try_from(api.types().len()).expect("type arena fits u32");
        let mut graph = JungloidGraph {
            config,
            ty_count,
            mined_base: Vec::new(),
            out: vec![Vec::new(); ty_count as usize],
            rev: vec![Vec::new(); ty_count as usize],
            lists_ready: true,
            examples: Vec::new(),
            edge_count: 0,
            csr: CsrAdjacency::default(),
            epoch: next_epoch(),
        };
        let visible = |v: Visibility| match v {
            Visibility::Public => true,
            Visibility::Protected => config.include_protected,
            Visibility::Private => false,
        };
        for f in api.field_ids() {
            // Definition 2: the output must be a class type, so
            // primitive-typed fields induce no elementary jungloid.
            if visible(api.field(f).visibility) && api.types().is_reference(api.field(f).ty) {
                let elem = elem_of_field(f);
                graph.push_edge(NodeId::Ty(elem.input_ty(api)), elem, NodeId::Ty(elem.output_ty(api)));
            }
        }
        let weak_tys: Vec<TyId> = if config.restrict_weak_params {
            [api.types().object(), api.types().resolve("java.lang.String").ok()]
                .into_iter()
                .flatten()
                .collect()
        } else {
            Vec::new()
        };
        for m in api.method_ids() {
            if visible(api.method(m).visibility) {
                for elem in elems_of_method(api, m) {
                    // §4.3 restriction: drop edges that feed a weakly
                    // typed parameter slot.
                    if let ElemJungloid::Call { method, input: Some(jungloid_apidef::InputSlot::Arg(i)) } =
                        elem
                    {
                        if weak_tys.contains(&api.method(method).params[i]) {
                            continue;
                        }
                    }
                    graph.push_edge(
                        NodeId::Ty(elem.input_ty(api)),
                        elem,
                        NodeId::Ty(elem.output_ty(api)),
                    );
                }
            }
        }
        // Widening edges along direct supertype links (transitive widening
        // arises by composing them, at zero cost).
        for t in api.types().ids() {
            for sup in api.types().direct_supertypes(t) {
                let elem = ElemJungloid::Widen { from: t, to: sup };
                graph.push_edge(NodeId::Ty(t), elem, NodeId::Ty(sup));
            }
        }
        graph.rebuild_csr();
        prospector_obs::gauge_set("graph.nodes", graph.node_count() as u64);
        prospector_obs::gauge_set("graph.edges", graph.edge_count as u64);
        graph
    }

    /// Restores a graph from a stored snapshot: the CSR arrays verbatim
    /// (already validated by [`CsrAdjacency::from_arrays`] /
    /// [`CsrAdjacency::from_slabs`]) plus the mined node bases and example
    /// step-sequences. The graph comes back *frozen*: queries run on the
    /// CSR alone (which may borrow directly from the snapshot buffer) and
    /// the builder list adjacency stays empty until the first mutation
    /// [`thaw`](JungloidGraph::thaw)s it. No rebuild happens, so a warm
    /// start records no `graph.csr.rebuilds`.
    ///
    /// # Errors
    ///
    /// Fails if the CSR's node count disagrees with
    /// `api.types().len() + mined_base.len()` or a mined base type is out
    /// of range. Elementary jungloids inside `csr` and `examples` must
    /// already be validated against `api` (the store's section decoder
    /// does this).
    pub fn from_snapshot(
        api: &Api,
        config: GraphConfig,
        mined_base: Vec<TyId>,
        examples: Vec<Vec<ElemJungloid>>,
        csr: CsrAdjacency,
    ) -> Result<JungloidGraph, SnapshotError> {
        let ty_count = u32::try_from(api.types().len())
            .map_err(|_| SnapshotError { detail: "type arena exceeds u32".to_owned() })?;
        let node_count = ty_count as usize + mined_base.len();
        if csr.node_count() != node_count {
            return Err(SnapshotError {
                detail: format!(
                    "CSR covers {} nodes but the API and mined bases imply {node_count}",
                    csr.node_count()
                ),
            });
        }
        if let Some(bad) = mined_base.iter().find(|t| t.index() >= ty_count as usize) {
            return Err(SnapshotError {
                detail: format!("mined base type {bad:?} out of range ({ty_count} types)"),
            });
        }
        // The reverse side must be the transpose of the forward side; the
        // cheap certificate is matching per-node in-degrees.
        let mut indegree = vec![0u32; node_count];
        for &to in csr.out_to() {
            indegree[to as usize] += 1;
        }
        for (node, &expected) in indegree.iter().enumerate() {
            if csr.in_range(node).len() != expected as usize {
                return Err(SnapshotError {
                    detail: format!("node {node} in-degree disagrees between CSR sides"),
                });
            }
        }
        let graph = JungloidGraph {
            config,
            ty_count,
            mined_base,
            out: Vec::new(),
            rev: Vec::new(),
            lists_ready: false,
            examples,
            edge_count: csr.edge_count(),
            csr,
            epoch: next_epoch(),
        };
        prospector_obs::gauge_set("graph.nodes", graph.node_count() as u64);
        prospector_obs::gauge_set("graph.edges", graph.edge_count as u64);
        prospector_obs::gauge_set("graph.csr.edges", graph.csr.edge_count() as u64);
        prospector_obs::gauge_set("graph.csr.bytes", graph.csr.approx_bytes() as u64);
        Ok(graph)
    }

    /// The frozen CSR view of the adjacency (always in sync; see
    /// [`CsrAdjacency`]).
    #[must_use]
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    fn rebuild_csr(&mut self) {
        self.csr = CsrAdjacency::build(self);
        prospector_obs::add("graph.csr.rebuilds", 1);
        prospector_obs::gauge_set("graph.csr.edges", self.csr.edge_count() as u64);
        prospector_obs::gauge_set("graph.csr.bytes", self.csr.approx_bytes() as u64);
        // Flight-recorder hook: rebuilds invalidate every cached distance
        // field, so a rebuild mid-trace explains a burst of cache misses.
        prospector_obs::trace::process_event("graph", "csr_rebuild", self.csr.edge_count() as u64);
    }

    /// The configuration the graph was built with.
    #[must_use]
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// The epoch of this graph state. Distinct for every construction
    /// (built, deserialized, snapshot-loaded) and advanced by every
    /// mutation ([`JungloidGraph::add_example`],
    /// [`JungloidGraph::with_naive_downcasts`]), so anything derived from
    /// the graph — cached query results in particular — can stamp itself
    /// with the epoch and detect staleness by comparison alone.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total node count (type nodes + mined nodes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ty_count as usize + self.mined_base.len()
    }

    /// Number of mined (typestate) nodes.
    #[must_use]
    pub fn mined_node_count(&self) -> usize {
        self.mined_base.len()
    }

    /// Total edge count.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The mined example step-sequences spliced into this graph.
    #[must_use]
    pub fn examples(&self) -> &[Vec<ElemJungloid>] {
        &self.examples
    }

    /// Dense index of a node.
    #[must_use]
    pub fn index_of(&self, node: NodeId) -> usize {
        match node {
            NodeId::Ty(t) => t.index(),
            NodeId::Mined(i) => self.ty_count as usize + i as usize,
        }
    }

    /// The node at a dense index.
    #[must_use]
    pub fn node_at(&self, index: usize) -> NodeId {
        if index < self.ty_count as usize {
            NodeId::Ty(TyId::from_index(index))
        } else {
            NodeId::Mined(u32::try_from(index - self.ty_count as usize).expect("mined fits u32"))
        }
    }

    /// The underlying type of a node: the type itself, or a mined node's
    /// static ("base") type.
    #[must_use]
    pub fn base_ty(&self, node: NodeId) -> TyId {
        match node {
            NodeId::Ty(t) => t,
            NodeId::Mined(i) => self.mined_base[i as usize],
        }
    }

    /// Out-edges of a node, derived from the CSR (which is always in sync
    /// with the graph state — rebuilt after every mutation, verbatim after
    /// a snapshot load). Returned by value so frozen (zero-copy loaded)
    /// and thawed graphs answer identically.
    #[must_use]
    pub fn out_edges(&self, node: NodeId) -> Vec<Edge> {
        let idx = self.index_of(node);
        self.csr
            .out_range(idx)
            .map(|flat| Edge {
                elem: self.csr.out_elem().get(flat),
                to: self.node_at(self.csr.out_to()[flat] as usize),
            })
            .collect()
    }

    /// In-edges of a node as `(from, step_cost)` pairs, derived from the
    /// CSR like [`JungloidGraph::out_edges`].
    #[must_use]
    pub fn in_edges(&self, node: NodeId) -> Vec<(NodeId, u8)> {
        let idx = self.index_of(node);
        self.csr
            .in_range(idx)
            .map(|flat| (self.node_at(self.csr.in_from()[flat] as usize), self.csr.in_cost()[flat]))
            .collect()
    }

    /// Materializes the builder list adjacency from the CSR if the graph
    /// is frozen (snapshot-loaded). Mutation paths call this before
    /// appending edges; queries never need it. Idempotent; does not
    /// advance the epoch (the graph state is unchanged).
    fn thaw(&mut self) {
        if self.lists_ready {
            return;
        }
        let node_count = self.node_count();
        let mut out = vec![Vec::new(); node_count];
        let mut rev = vec![Vec::new(); node_count];
        for (node, row) in out.iter_mut().enumerate() {
            for flat in self.csr.out_range(node) {
                row.push(Edge {
                    elem: self.csr.out_elem().get(flat),
                    to: self.node_at(self.csr.out_to()[flat] as usize),
                });
            }
        }
        for (node, row) in rev.iter_mut().enumerate() {
            for flat in self.csr.in_range(node) {
                row.push((
                    self.node_at(self.csr.in_from()[flat] as usize),
                    self.csr.in_cost()[flat],
                ));
            }
        }
        self.out = out;
        self.rev = rev;
        self.lists_ready = true;
    }

    fn push_edge(&mut self, from: NodeId, elem: ElemJungloid, to: NodeId) {
        debug_assert!(self.lists_ready, "push_edge on a frozen graph; thaw first");
        let cost = u8::from(!elem.is_widen());
        let fi = self.index_of(from);
        self.out[fi].push(Edge { elem, to });
        let ti = self.index_of(to);
        self.rev[ti].push((from, cost));
        self.edge_count += 1;
    }

    fn fresh_mined(&mut self, base: TyId) -> NodeId {
        debug_assert!(self.lists_ready, "fresh_mined on a frozen graph; thaw first");
        let id = u32::try_from(self.mined_base.len()).expect("mined arena fits u32");
        self.mined_base.push(base);
        self.out.push(Vec::new());
        self.rev.push(Vec::new());
        NodeId::Mined(id)
    }

    /// Splices a mined example jungloid into the graph (§4.2, Figure 6).
    ///
    /// The path starts at the existing node for the example's input type,
    /// runs through fresh mined nodes for every intermediate object, and
    /// its final step lands on the existing node for the final output type
    /// (for a downcast-terminated example, the cast's target).
    ///
    /// Returns `false` (and adds nothing) if an identical step sequence was
    /// already spliced in.
    ///
    /// # Errors
    ///
    /// The steps must be non-empty and well-typed (each step's input type
    /// equal to its predecessor's output type).
    pub fn add_example(&mut self, api: &Api, steps: &[ElemJungloid]) -> Result<bool, ExampleError> {
        if steps.is_empty() {
            return Err(ExampleError { detail: "empty step sequence".to_owned() });
        }
        for pair in steps.windows(2) {
            let out_ty = pair[0].output_ty(api);
            let in_ty = pair[1].input_ty(api);
            if out_ty != in_ty {
                return Err(ExampleError {
                    detail: format!(
                        "ill-typed composition: {} outputs {} but {} expects {}",
                        pair[0].label(api),
                        api.types().display(out_ty),
                        pair[1].label(api),
                        api.types().display(in_ty)
                    ),
                });
            }
        }
        for step in steps {
            match *step {
                ElemJungloid::Widen { from, to }
                    if from == to || !api.types().is_subtype(from, to) =>
                {
                    return Err(ExampleError {
                        detail: format!(
                            "invalid widening {} -> {}",
                            api.types().display(from),
                            api.types().display(to)
                        ),
                    })
                }
                ElemJungloid::Downcast { from, to }
                    if from == to || !api.types().is_subtype(to, from) =>
                {
                    return Err(ExampleError {
                        detail: format!(
                            "invalid downcast {} -> {}",
                            api.types().display(from),
                            api.types().display(to)
                        ),
                    })
                }
                _ => {}
            }
        }
        if self.examples.iter().any(|e| e == steps) {
            return Ok(false);
        }
        self.thaw();
        let mut from = NodeId::Ty(steps[0].input_ty(api));
        for (i, &elem) in steps.iter().enumerate() {
            let to = if i + 1 == steps.len() {
                NodeId::Ty(elem.output_ty(api))
            } else {
                self.fresh_mined(elem.output_ty(api))
            };
            self.push_edge(from, elem, to);
            from = to;
        }
        self.examples.push(steps.to_vec());
        self.rebuild_csr();
        self.epoch = next_epoch();
        prospector_obs::add("graph.examples_spliced", 1);
        Ok(true)
    }

    /// Adds *all downcast elementary jungloids* to a copy of this graph:
    /// `(U) x : T → U` for every declared `U <: T`. This is the naive
    /// strategy of §4.1 / Figure 3, reproduced for the mining-ablation
    /// experiment; it is intentionally terrible.
    #[must_use]
    pub fn with_naive_downcasts(&self, api: &Api) -> JungloidGraph {
        let mut g = self.clone();
        g.thaw();
        for t in api.types().ids() {
            if !api.types().is_reference(t) || t == api.types().null() {
                continue;
            }
            for sub in api.types().strict_subtypes(t) {
                let elem = ElemJungloid::Downcast { from: t, to: sub };
                g.push_edge(NodeId::Ty(t), elem, NodeId::Ty(sub));
            }
        }
        g.rebuild_csr();
        g.epoch = next_epoch();
        g
    }

    /// Per-kind edge statistics (the §3.1/§4.2 composition of the graph).
    #[must_use]
    pub fn stats(&self, api: &Api) -> GraphStats {
        let mut stats = GraphStats {
            nodes: self.node_count(),
            mined_nodes: self.mined_node_count(),
            examples: self.examples.len(),
            ..GraphStats::default()
        };
        for idx in 0..self.node_count() {
            for e in self.out_edges(self.node_at(idx)) {
                match e.elem {
                    ElemJungloid::FieldAccess { .. } => stats.field_edges += 1,
                    ElemJungloid::Call { method, .. } => {
                        let def = api.method(method);
                        if def.is_constructor {
                            stats.constructor_edges += 1;
                        } else if def.is_static {
                            stats.static_edges += 1;
                        } else {
                            stats.instance_edges += 1;
                        }
                    }
                    ElemJungloid::Widen { .. } => stats.widening_edges += 1,
                    ElemJungloid::Downcast { .. } => stats.downcast_edges += 1,
                }
            }
        }
        stats
    }

    /// Rough in-memory footprint in bytes (list adjacency, when
    /// materialized, plus the CSR mirror), for the §5 size report. A
    /// frozen graph carries no list adjacency at all.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let lists = if self.lists_ready {
            let edge = std::mem::size_of::<Edge>();
            let rev = std::mem::size_of::<(NodeId, u8)>();
            let node = 2 * std::mem::size_of::<Vec<Edge>>();
            self.edge_count * (edge + rev) + self.node_count() * node
        } else {
            0
        };
        lists + self.mined_base.len() * 4 + self.csr.approx_bytes()
    }

    /// Serializes the graph — config, mined nodes, examples, and the full
    /// out-adjacency — to JSON. Nodes are encoded by dense index (type
    /// nodes first, then mined nodes), matching
    /// [`JungloidGraph::index_of`]; the reverse adjacency is rebuilt on
    /// load.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let adjacency: Vec<Json> = (0..self.node_count())
            .map(|node| {
                Json::Arr(
                    self.csr
                        .out_range(node)
                        .map(|flat| {
                            Json::obj(vec![
                                ("e", self.csr.out_elem().get(flat).to_json()),
                                ("to", Json::num_u(u64::from(self.csr.out_to()[flat]))),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("include_protected", Json::Bool(self.config.include_protected)),
                    ("restrict_weak_params", Json::Bool(self.config.restrict_weak_params)),
                ]),
            ),
            ("ty_count", Json::num_u(u64::from(self.ty_count))),
            (
                "mined_base",
                Json::Arr(self.mined_base.iter().map(|t| Json::num_u(t.index() as u64)).collect()),
            ),
            (
                "examples",
                Json::Arr(
                    self.examples
                        .iter()
                        .map(|steps| Json::Arr(steps.iter().map(ElemJungloid::to_json).collect()))
                        .collect(),
                ),
            ),
            ("adjacency", Json::Arr(adjacency)),
        ])
    }

    /// Deserializes a graph persisted by [`JungloidGraph::to_json`],
    /// validating every node index and member reference against `api`.
    ///
    /// # Errors
    ///
    /// Fails if the document is malformed, was built over a different
    /// number of types than `api` declares, or refers to out-of-range
    /// nodes or members.
    pub fn from_json(doc: &Json, api: &Api) -> Result<Self, JsonError> {
        let config_doc = doc.want("config")?;
        let config = GraphConfig {
            include_protected: config_doc
                .want("include_protected")?
                .as_bool()
                .ok_or_else(|| decode_err("include_protected must be a bool"))?,
            restrict_weak_params: config_doc
                .want("restrict_weak_params")?
                .as_bool()
                .ok_or_else(|| decode_err("restrict_weak_params must be a bool"))?,
        };
        let ty_count =
            doc.want("ty_count")?.as_u64().ok_or_else(|| decode_err("ty_count must be an integer"))?;
        if ty_count != api.types().len() as u64 {
            return Err(decode_err(format!(
                "graph was built over {ty_count} types but the API declares {}",
                api.types().len()
            )));
        }
        let ty_count = u32::try_from(ty_count).map_err(|_| decode_err("ty_count too large"))?;
        let mined_base = doc
            .want("mined_base")?
            .as_arr()
            .ok_or_else(|| decode_err("mined_base must be an array"))?
            .iter()
            .map(|v| {
                let i = v
                    .as_u64()
                    .ok_or_else(|| decode_err("mined_base entries must be integers"))?;
                let i = usize::try_from(i).map_err(|_| decode_err("mined base out of range"))?;
                if i < api.types().len() {
                    Ok(TyId::from_index(i))
                } else {
                    Err(decode_err(format!("mined base type {i} out of range")))
                }
            })
            .collect::<Result<Vec<TyId>, JsonError>>()?;
        let mut examples = Vec::new();
        for steps_doc in
            doc.want("examples")?.as_arr().ok_or_else(|| decode_err("examples must be an array"))?
        {
            let steps = steps_doc
                .as_arr()
                .ok_or_else(|| decode_err("each example must be an array"))?
                .iter()
                .map(|v| ElemJungloid::from_json(v, api))
                .collect::<Result<Vec<_>, JsonError>>()?;
            examples.push(steps);
        }
        let node_count = ty_count as usize + mined_base.len();
        let adjacency = doc
            .want("adjacency")?
            .as_arr()
            .ok_or_else(|| decode_err("adjacency must be an array"))?;
        if adjacency.len() != node_count {
            return Err(decode_err(format!(
                "adjacency lists {} nodes, expected {node_count}",
                adjacency.len()
            )));
        }
        let mut graph = JungloidGraph {
            config,
            ty_count,
            mined_base,
            out: vec![Vec::new(); node_count],
            rev: vec![Vec::new(); node_count],
            lists_ready: true,
            examples,
            edge_count: 0,
            csr: CsrAdjacency::default(),
            epoch: next_epoch(),
        };
        for (from_idx, edges_doc) in adjacency.iter().enumerate() {
            let from = graph.node_at(from_idx);
            for edge_doc in
                edges_doc.as_arr().ok_or_else(|| decode_err("adjacency rows must be arrays"))?
            {
                let elem = ElemJungloid::from_json(edge_doc.want("e")?, api)?;
                let to_idx = edge_doc
                    .want("to")?
                    .as_u64()
                    .ok_or_else(|| decode_err("edge target must be an integer"))?;
                let to_idx =
                    usize::try_from(to_idx).map_err(|_| decode_err("edge target too large"))?;
                if to_idx >= node_count {
                    return Err(decode_err(format!("edge target {to_idx} out of range")));
                }
                let to = graph.node_at(to_idx);
                graph.push_edge(from, elem, to);
            }
        }
        graph.rebuild_csr();
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::{ApiLoader, InputSlot};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); }
                public class B extends A {}
                public class C {
                    C(A a);
                    static B make(A a, B b);
                    protected B prot();
                    private B priv();
                    static C instance();
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn ty(api: &Api, name: &str) -> TyId {
        api.types().resolve(name).unwrap()
    }

    #[test]
    fn signature_edges_present() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let c = ty(&api, "t.C");

        // a.toB(): A -> B
        let out_a = g.out_edges(NodeId::Ty(a));
        assert!(out_a.iter().any(|e| e.to == NodeId::Ty(b) && !e.elem.is_widen()));
        // new C(a): A -> C
        assert!(out_a.iter().any(|e| e.to == NodeId::Ty(c)));
        // C.make consumes either A or B.
        assert!(g.out_edges(NodeId::Ty(b)).iter().any(|e| e.to == NodeId::Ty(b)));
        // static C.instance(): void -> C
        let void = api.types().void();
        assert!(g.out_edges(NodeId::Ty(void)).iter().any(|e| e.to == NodeId::Ty(c)));
    }

    #[test]
    fn widening_edges_follow_hierarchy() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let widens: Vec<_> =
            g.out_edges(NodeId::Ty(b)).into_iter().filter(|e| e.elem.is_widen()).collect();
        assert_eq!(widens.len(), 1);
        assert_eq!(widens[0].to, NodeId::Ty(a));
        assert!(g.out_edges(NodeId::Ty(a)).iter().any(|e| e.elem.is_widen() && e.to == NodeId::Ty(obj)));
    }

    #[test]
    fn no_downcast_edges_in_signature_graph() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        for idx in 0..g.node_count() {
            for e in g.out_edges(g.node_at(idx)) {
                assert!(!e.elem.is_downcast());
            }
        }
    }

    #[test]
    fn visibility_filtering() {
        let api = api();
        let c = ty(&api, "t.C");
        let count_from_c = |g: &JungloidGraph| {
            g.out_edges(NodeId::Ty(c)).iter().filter(|e| !e.elem.is_widen()).count()
        };
        let public_only = JungloidGraph::from_api(&api, GraphConfig::default());
        let with_protected = JungloidGraph::from_api(
            &api,
            GraphConfig { include_protected: true, ..GraphConfig::default() },
        );
        // `prot()` appears only with include_protected; `priv()` never.
        assert_eq!(count_from_c(&public_only) + 1, count_from_c(&with_protected));
    }

    #[test]
    fn reverse_edges_mirror_forward() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let mut fwd = 0;
        let mut rev = 0;
        for idx in 0..g.node_count() {
            let n = g.node_at(idx);
            fwd += g.out_edges(n).len();
            rev += g.in_edges(n).len();
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, g.edge_count());
    }

    #[test]
    fn add_example_creates_typestate_path() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        // a.toB() widened to Object, then cast back down to B:
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            ElemJungloid::Widen { from: b, to: obj },
            ElemJungloid::Downcast { from: obj, to: b },
        ];
        assert!(g.add_example(&api, &steps).unwrap());
        assert_eq!(g.mined_node_count(), 2);
        // Duplicate insert is a no-op.
        assert!(!g.add_example(&api, &steps).unwrap());
        assert_eq!(g.mined_node_count(), 2);

        // The path enters at A and its last edge lands on the real B node.
        let first: Vec<_> = g
            .out_edges(NodeId::Ty(a))
            .into_iter()
            .filter(|e| matches!(e.to, NodeId::Mined(_)))
            .collect();
        assert_eq!(first.len(), 1);
        let mid = first[0].to;
        assert_eq!(g.base_ty(mid), b);
        let second = g.out_edges(mid)[0];
        assert!(second.elem.is_widen());
        let last = g.out_edges(second.to)[0];
        assert!(last.elem.is_downcast());
        assert_eq!(last.to, NodeId::Ty(b));
    }

    #[test]
    fn ill_typed_example_rejected() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let c = ty(&api, "t.C");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            // B is not C: composition is ill-typed.
            ElemJungloid::Downcast { from: c, to: c },
        ];
        assert!(g.add_example(&api, &steps).is_err());
        assert!(g.add_example(&api, &[]).is_err());
    }

    #[test]
    fn naive_downcasts_explode() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let naive = g.with_naive_downcasts(&api);
        // Every declared type gains a downcast edge from Object (and more).
        assert!(naive.edge_count() > g.edge_count() + 4);
        let obj = api.types().object().unwrap();
        let b = ty(&api, "t.B");
        assert!(naive
            .out_edges(NodeId::Ty(obj))
            .iter()
            .any(|e| e.elem.is_downcast() && e.to == NodeId::Ty(b)));
    }

    #[test]
    fn stats_count_per_kind() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let stats = g.stats(&api);
        assert_eq!(stats.total_edges(), g.edge_count());
        assert_eq!(stats.downcast_edges, 0);
        assert!(stats.widening_edges > 0);
        assert!(stats.instance_edges > 0);
        assert!(stats.constructor_edges > 0);
        assert!(stats.static_edges > 0);

        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Downcast { from: b, to: b }, // placeholder replaced below
            ],
        )
        .err(); // invalid (b -> b); ensure stats unaffected by failed add
        let before = g.stats(&api);
        assert_eq!(before.downcast_edges, 0);
    }

    #[test]
    fn json_round_trip_preserves_graph() {
        let api = api();
        let mut g = JungloidGraph::from_api(
            &api,
            GraphConfig { include_protected: true, ..GraphConfig::default() },
        );
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: obj },
                ElemJungloid::Downcast { from: obj, to: b },
            ],
        )
        .unwrap();

        let doc = g.to_json();
        let back = JungloidGraph::from_json(&doc, &api).unwrap();
        assert_eq!(back.config(), g.config());
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.mined_node_count(), g.mined_node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.examples(), g.examples());
        for idx in 0..g.node_count() {
            let n = g.node_at(idx);
            assert_eq!(back.out_edges(n), g.out_edges(n));
            // The reverse adjacency is rebuilt node-by-node on load, so
            // only its per-node *contents* are preserved, not the order.
            let mut rev1 = back.in_edges(n);
            let mut rev2 = g.in_edges(n);
            rev1.sort_unstable();
            rev2.sort_unstable();
            assert_eq!(rev1, rev2);
            assert_eq!(back.base_ty(n), g.base_ty(n));
        }
        // The serialized text survives a parse round trip too.
        assert_eq!(back.to_json(), doc);
        let text = doc.to_text();
        assert_eq!(prospector_obs::Json::parse(&text).unwrap(), doc);

        // Tampered documents are rejected, not mis-loaded.
        assert!(JungloidGraph::from_json(&Json::obj(vec![]), &api).is_err());
        let Json::Obj(mut pairs) = doc else { unreachable!() };
        pairs.retain(|(k, _)| k != "adjacency");
        assert!(JungloidGraph::from_json(&Json::Obj(pairs), &api).is_err());
    }

    /// The CSR mirror must agree with the list adjacency edge-for-edge,
    /// in the same per-node order (search result order depends on it).
    fn assert_csr_mirrors_lists(g: &JungloidGraph) {
        let csr = g.csr();
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for idx in 0..g.node_count() {
            let node = g.node_at(idx);
            let out = g.out_edges(node);
            let range = csr.out_range(idx);
            assert_eq!(range.len(), out.len());
            for (k, e) in out.iter().enumerate() {
                let flat = range.start + k;
                assert_eq!(csr.out_to()[flat] as usize, g.index_of(e.to));
                assert_eq!(csr.out_elem().get(flat), e.elem);
                assert_eq!(csr.out_cost()[flat], u8::from(!e.elem.is_widen()));
            }
            let ins = g.in_edges(node);
            let range = csr.in_range(idx);
            assert_eq!(range.len(), ins.len());
            for (k, &(from, cost)) in ins.iter().enumerate() {
                let flat = range.start + k;
                assert_eq!(csr.in_from()[flat] as usize, g.index_of(from));
                assert_eq!(csr.in_cost()[flat], cost);
            }
        }
    }

    #[test]
    fn csr_mirrors_signature_graph() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        assert_csr_mirrors_lists(&g);
        assert!(g.csr().approx_bytes() > 0);
    }

    #[test]
    fn csr_rebuilt_on_add_example_and_naive_downcasts() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let edges_before = g.csr().edge_count();
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: obj },
                ElemJungloid::Downcast { from: obj, to: b },
            ],
        )
        .unwrap();
        // The mined path's three edges and two fresh nodes are visible in
        // the rebuilt CSR.
        assert_eq!(g.csr().edge_count(), edges_before + 3);
        assert_eq!(g.csr().node_count(), g.node_count());
        assert_csr_mirrors_lists(&g);

        let naive = g.with_naive_downcasts(&api);
        assert_csr_mirrors_lists(&naive);
        assert!(naive.csr().edge_count() > g.csr().edge_count());
    }

    #[test]
    fn csr_round_trips_through_json() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let back = JungloidGraph::from_json(&g.to_json(), &api).unwrap();
        assert_csr_mirrors_lists(&back);
        assert_eq!(back.csr().edge_count(), g.csr().edge_count());
    }

    #[test]
    fn epochs_are_distinct_per_state_and_advance_on_mutation() {
        let api = api();
        let g1 = JungloidGraph::from_api(&api, GraphConfig::default());
        let g2 = JungloidGraph::from_api(&api, GraphConfig::default());
        assert_ne!(g1.epoch(), g2.epoch(), "independent builds get distinct epochs");

        let mut g = g1;
        let before = g.epoch();
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            ElemJungloid::Downcast { from: b, to: b },
        ];
        // A rejected example mutates nothing, so the epoch must not move.
        assert!(g.add_example(&api, &steps).is_err());
        assert_eq!(g.epoch(), before);
        let obj = api.types().object().unwrap();
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            ElemJungloid::Widen { from: b, to: obj },
            ElemJungloid::Downcast { from: obj, to: b },
        ];
        assert!(g.add_example(&api, &steps).unwrap());
        assert_ne!(g.epoch(), before, "splicing an example advances the epoch");
        let spliced = g.epoch();
        // A duplicate splice is a no-op and must not advance it again.
        assert!(!g.add_example(&api, &steps).unwrap());
        assert_eq!(g.epoch(), spliced);

        // Deserialization is a fresh state.
        let back = JungloidGraph::from_json(&g.to_json(), &api).unwrap();
        assert_ne!(back.epoch(), g.epoch());
        // The naive-downcast copy is a different graph too.
        assert_ne!(g.with_naive_downcasts(&api).epoch(), g.epoch());
    }

    #[test]
    fn frozen_snapshot_graph_answers_like_the_original_and_thaws_on_mutation() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            ElemJungloid::Widen { from: b, to: obj },
            ElemJungloid::Downcast { from: obj, to: b },
        ];
        g.add_example(&api, &steps).unwrap();

        let mined_base: Vec<TyId> = (0..g.mined_node_count())
            .map(|i| g.base_ty(NodeId::Mined(u32::try_from(i).unwrap())))
            .collect();
        let mut frozen = JungloidGraph::from_snapshot(
            &api,
            g.config(),
            mined_base,
            g.examples().to_vec(),
            g.csr().clone(),
        )
        .unwrap();
        assert!(!frozen.lists_ready, "snapshot loads stay frozen");
        for idx in 0..g.node_count() {
            let n = g.node_at(idx);
            assert_eq!(frozen.out_edges(n), g.out_edges(n));
            assert_eq!(frozen.in_edges(n), g.in_edges(n));
        }
        // Dedup consults the stored sequences; no thaw needed.
        assert!(!frozen.add_example(&api, &steps).unwrap());
        assert!(!frozen.lists_ready);
        // A genuinely new example thaws the lists and splices as usual.
        let more = vec![ElemJungloid::Widen { from: b, to: a }];
        assert!(frozen.add_example(&api, &more).unwrap());
        assert!(frozen.lists_ready);
        assert_eq!(frozen.edge_count(), g.edge_count() + 1);
        assert_csr_mirrors_lists(&frozen);
    }

    #[test]
    fn node_index_round_trip() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: obj },
                ElemJungloid::Downcast { from: obj, to: b },
            ],
        )
        .unwrap();
        for idx in 0..g.node_count() {
            assert_eq!(g.index_of(g.node_at(idx)), idx);
        }
    }
}
