//! The signature graph (§3.1) and its refinement with mined examples, the
//! jungloid graph (§4.2).
//!
//! Nodes are reference types (plus `void`); edges are non-downcast
//! elementary jungloids derived from the API's signatures. Every jungloid
//! supported by the API is a path in this graph, so synthesis is graph
//! search.
//!
//! Downcast edges are deliberately absent from the signature graph: adding
//! `(T) x : Object → T` for every `T` would represent mostly inviable
//! jungloids and, being short, they would crowd the top ranks (§4.1,
//! Figure 3). Instead, [`JungloidGraph::add_example`] splices in a path per
//! *mined* example jungloid, introducing a fresh node for every
//! intermediate object. Those fresh "typestate" nodes (the paper cites
//! Strom & Yemini) ensure the example lends viability only to jungloids
//! that reproduce its call sequence — Figure 6's `Object-1` node.

use jungloid_apidef::elem::{elem_of_field, elems_of_method};
use jungloid_apidef::{Api, ElemJungloid, Visibility};
use jungloid_typesys::TyId;
use prospector_obs::json::{decode_err, Json, JsonError};

/// A node: an API type or a fresh mined (typestate) node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The node for an interned type.
    Ty(TyId),
    /// The `i`-th fresh node introduced by mined examples.
    Mined(u32),
}

/// An out-edge: an elementary jungloid and its destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The elementary jungloid this edge represents.
    pub elem: ElemJungloid,
    /// Destination node.
    pub to: NodeId,
}

/// Construction options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[derive(Default)]
pub struct GraphConfig {
    /// Include `protected` members. The paper's implementation supports
    /// public members only and loses one Table 1 query to that (§7); this
    /// switch implements the fix it proposes.
    pub include_protected: bool,
    /// The §4.3 extension: exclude signature edges that consume an
    /// `Object`- or `String`-typed *parameter* slot — the call sites the
    /// paper observes are "usually not any Object or String" — so that
    /// only parameter-mined examples
    /// ([`Prospector::add_param_examples`](crate::Prospector::add_param_examples))
    /// drive values into such parameters. Off by default (the paper left
    /// this untested).
    pub restrict_weak_params: bool,
}


/// Per-kind composition of a jungloid graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Total nodes.
    pub nodes: usize,
    /// Mined typestate nodes.
    pub mined_nodes: usize,
    /// Spliced example paths.
    pub examples: usize,
    /// Field-access edges.
    pub field_edges: usize,
    /// Instance-call edges.
    pub instance_edges: usize,
    /// Static-call edges.
    pub static_edges: usize,
    /// Constructor edges.
    pub constructor_edges: usize,
    /// Widening edges.
    pub widening_edges: usize,
    /// Downcast edges (only from mined paths, unless naive downcasts were
    /// added).
    pub downcast_edges: usize,
}

impl GraphStats {
    /// Total edges.
    #[must_use]
    pub fn total_edges(&self) -> usize {
        self.field_edges
            + self.instance_edges
            + self.static_edges
            + self.constructor_edges
            + self.widening_edges
            + self.downcast_edges
    }
}

/// An invalid mined example.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExampleError {
    /// Explanation.
    pub detail: String,
}

impl std::fmt::Display for ExampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid example jungloid: {}", self.detail)
    }
}

impl std::error::Error for ExampleError {}

/// The jungloid graph: signature edges plus mined example paths.
#[derive(Clone, Debug)]
pub struct JungloidGraph {
    config: GraphConfig,
    /// Number of type-backed nodes (= type-table size at build time).
    ty_count: u32,
    /// Base type of each mined node (the static type at that program
    /// point; used for display and ranking).
    mined_base: Vec<TyId>,
    /// Out-edges, indexed by dense node index (types first, then mined).
    out: Vec<Vec<Edge>>,
    /// Reverse adjacency for distance-to-target pruning:
    /// `(from, step_cost)` per in-edge.
    rev: Vec<Vec<(NodeId, u8)>>,
    /// Example step-sequences already added (dedup).
    examples: Vec<Vec<ElemJungloid>>,
    edge_count: usize,
}

impl JungloidGraph {
    /// Builds the signature graph of an API (§3.1): field, call, and
    /// widening edges; no downcasts.
    #[must_use]
    pub fn from_api(api: &Api, config: GraphConfig) -> Self {
        let ty_count = u32::try_from(api.types().len()).expect("type arena fits u32");
        let mut graph = JungloidGraph {
            config,
            ty_count,
            mined_base: Vec::new(),
            out: vec![Vec::new(); ty_count as usize],
            rev: vec![Vec::new(); ty_count as usize],
            examples: Vec::new(),
            edge_count: 0,
        };
        let visible = |v: Visibility| match v {
            Visibility::Public => true,
            Visibility::Protected => config.include_protected,
            Visibility::Private => false,
        };
        for f in api.field_ids() {
            // Definition 2: the output must be a class type, so
            // primitive-typed fields induce no elementary jungloid.
            if visible(api.field(f).visibility) && api.types().is_reference(api.field(f).ty) {
                let elem = elem_of_field(f);
                graph.push_edge(NodeId::Ty(elem.input_ty(api)), elem, NodeId::Ty(elem.output_ty(api)));
            }
        }
        let weak_tys: Vec<TyId> = if config.restrict_weak_params {
            [api.types().object(), api.types().resolve("java.lang.String").ok()]
                .into_iter()
                .flatten()
                .collect()
        } else {
            Vec::new()
        };
        for m in api.method_ids() {
            if visible(api.method(m).visibility) {
                for elem in elems_of_method(api, m) {
                    // §4.3 restriction: drop edges that feed a weakly
                    // typed parameter slot.
                    if let ElemJungloid::Call { method, input: Some(jungloid_apidef::InputSlot::Arg(i)) } =
                        elem
                    {
                        if weak_tys.contains(&api.method(method).params[i]) {
                            continue;
                        }
                    }
                    graph.push_edge(
                        NodeId::Ty(elem.input_ty(api)),
                        elem,
                        NodeId::Ty(elem.output_ty(api)),
                    );
                }
            }
        }
        // Widening edges along direct supertype links (transitive widening
        // arises by composing them, at zero cost).
        for t in api.types().ids() {
            for sup in api.types().direct_supertypes(t) {
                let elem = ElemJungloid::Widen { from: t, to: sup };
                graph.push_edge(NodeId::Ty(t), elem, NodeId::Ty(sup));
            }
        }
        prospector_obs::gauge_set("graph.nodes", graph.node_count() as u64);
        prospector_obs::gauge_set("graph.edges", graph.edge_count as u64);
        graph
    }

    /// The configuration the graph was built with.
    #[must_use]
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Total node count (type nodes + mined nodes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ty_count as usize + self.mined_base.len()
    }

    /// Number of mined (typestate) nodes.
    #[must_use]
    pub fn mined_node_count(&self) -> usize {
        self.mined_base.len()
    }

    /// Total edge count.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The mined example step-sequences spliced into this graph.
    #[must_use]
    pub fn examples(&self) -> &[Vec<ElemJungloid>] {
        &self.examples
    }

    /// Dense index of a node.
    #[must_use]
    pub fn index_of(&self, node: NodeId) -> usize {
        match node {
            NodeId::Ty(t) => t.index(),
            NodeId::Mined(i) => self.ty_count as usize + i as usize,
        }
    }

    /// The node at a dense index.
    #[must_use]
    pub fn node_at(&self, index: usize) -> NodeId {
        if index < self.ty_count as usize {
            NodeId::Ty(TyId::from_index(index))
        } else {
            NodeId::Mined(u32::try_from(index - self.ty_count as usize).expect("mined fits u32"))
        }
    }

    /// The underlying type of a node: the type itself, or a mined node's
    /// static ("base") type.
    #[must_use]
    pub fn base_ty(&self, node: NodeId) -> TyId {
        match node {
            NodeId::Ty(t) => t,
            NodeId::Mined(i) => self.mined_base[i as usize],
        }
    }

    /// Out-edges of a node.
    #[must_use]
    pub fn out_edges(&self, node: NodeId) -> &[Edge] {
        &self.out[self.index_of(node)]
    }

    /// In-edges of a node as `(from, step_cost)` pairs.
    #[must_use]
    pub fn in_edges(&self, node: NodeId) -> &[(NodeId, u8)] {
        &self.rev[self.index_of(node)]
    }

    fn push_edge(&mut self, from: NodeId, elem: ElemJungloid, to: NodeId) {
        let cost = u8::from(!elem.is_widen());
        let fi = self.index_of(from);
        self.out[fi].push(Edge { elem, to });
        let ti = self.index_of(to);
        self.rev[ti].push((from, cost));
        self.edge_count += 1;
    }

    fn fresh_mined(&mut self, base: TyId) -> NodeId {
        let id = u32::try_from(self.mined_base.len()).expect("mined arena fits u32");
        self.mined_base.push(base);
        self.out.push(Vec::new());
        self.rev.push(Vec::new());
        NodeId::Mined(id)
    }

    /// Splices a mined example jungloid into the graph (§4.2, Figure 6).
    ///
    /// The path starts at the existing node for the example's input type,
    /// runs through fresh mined nodes for every intermediate object, and
    /// its final step lands on the existing node for the final output type
    /// (for a downcast-terminated example, the cast's target).
    ///
    /// Returns `false` (and adds nothing) if an identical step sequence was
    /// already spliced in.
    ///
    /// # Errors
    ///
    /// The steps must be non-empty and well-typed (each step's input type
    /// equal to its predecessor's output type).
    pub fn add_example(&mut self, api: &Api, steps: &[ElemJungloid]) -> Result<bool, ExampleError> {
        if steps.is_empty() {
            return Err(ExampleError { detail: "empty step sequence".to_owned() });
        }
        for pair in steps.windows(2) {
            let out_ty = pair[0].output_ty(api);
            let in_ty = pair[1].input_ty(api);
            if out_ty != in_ty {
                return Err(ExampleError {
                    detail: format!(
                        "ill-typed composition: {} outputs {} but {} expects {}",
                        pair[0].label(api),
                        api.types().display(out_ty),
                        pair[1].label(api),
                        api.types().display(in_ty)
                    ),
                });
            }
        }
        for step in steps {
            match *step {
                ElemJungloid::Widen { from, to }
                    if from == to || !api.types().is_subtype(from, to) =>
                {
                    return Err(ExampleError {
                        detail: format!(
                            "invalid widening {} -> {}",
                            api.types().display(from),
                            api.types().display(to)
                        ),
                    })
                }
                ElemJungloid::Downcast { from, to }
                    if from == to || !api.types().is_subtype(to, from) =>
                {
                    return Err(ExampleError {
                        detail: format!(
                            "invalid downcast {} -> {}",
                            api.types().display(from),
                            api.types().display(to)
                        ),
                    })
                }
                _ => {}
            }
        }
        if self.examples.iter().any(|e| e == steps) {
            return Ok(false);
        }
        let mut from = NodeId::Ty(steps[0].input_ty(api));
        for (i, &elem) in steps.iter().enumerate() {
            let to = if i + 1 == steps.len() {
                NodeId::Ty(elem.output_ty(api))
            } else {
                self.fresh_mined(elem.output_ty(api))
            };
            self.push_edge(from, elem, to);
            from = to;
        }
        self.examples.push(steps.to_vec());
        prospector_obs::add("graph.examples_spliced", 1);
        Ok(true)
    }

    /// Adds *all downcast elementary jungloids* to a copy of this graph:
    /// `(U) x : T → U` for every declared `U <: T`. This is the naive
    /// strategy of §4.1 / Figure 3, reproduced for the mining-ablation
    /// experiment; it is intentionally terrible.
    #[must_use]
    pub fn with_naive_downcasts(&self, api: &Api) -> JungloidGraph {
        let mut g = self.clone();
        for t in api.types().ids() {
            if !api.types().is_reference(t) || t == api.types().null() {
                continue;
            }
            for sub in api.types().strict_subtypes(t) {
                let elem = ElemJungloid::Downcast { from: t, to: sub };
                g.push_edge(NodeId::Ty(t), elem, NodeId::Ty(sub));
            }
        }
        g
    }

    /// Per-kind edge statistics (the §3.1/§4.2 composition of the graph).
    #[must_use]
    pub fn stats(&self, api: &Api) -> GraphStats {
        let mut stats = GraphStats {
            nodes: self.node_count(),
            mined_nodes: self.mined_node_count(),
            examples: self.examples.len(),
            ..GraphStats::default()
        };
        for idx in 0..self.node_count() {
            for e in self.out_edges(self.node_at(idx)) {
                match e.elem {
                    ElemJungloid::FieldAccess { .. } => stats.field_edges += 1,
                    ElemJungloid::Call { method, .. } => {
                        let def = api.method(method);
                        if def.is_constructor {
                            stats.constructor_edges += 1;
                        } else if def.is_static {
                            stats.static_edges += 1;
                        } else {
                            stats.instance_edges += 1;
                        }
                    }
                    ElemJungloid::Widen { .. } => stats.widening_edges += 1,
                    ElemJungloid::Downcast { .. } => stats.downcast_edges += 1,
                }
            }
        }
        stats
    }

    /// Rough in-memory footprint in bytes (adjacency only), for the §5
    /// size report.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let edge = std::mem::size_of::<Edge>();
        let rev = std::mem::size_of::<(NodeId, u8)>();
        let node = 2 * std::mem::size_of::<Vec<Edge>>();
        self.edge_count * (edge + rev) + self.node_count() * node + self.mined_base.len() * 4
    }

    /// Serializes the graph — config, mined nodes, examples, and the full
    /// out-adjacency — to JSON. Nodes are encoded by dense index (type
    /// nodes first, then mined nodes), matching
    /// [`JungloidGraph::index_of`]; the reverse adjacency is rebuilt on
    /// load.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let adjacency: Vec<Json> = self
            .out
            .iter()
            .map(|edges| {
                Json::Arr(
                    edges
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("e", e.elem.to_json()),
                                ("to", Json::num_u(self.index_of(e.to) as u64)),
                            ])
                        })
                        .collect(),
                )
            })
            .collect();
        Json::obj(vec![
            (
                "config",
                Json::obj(vec![
                    ("include_protected", Json::Bool(self.config.include_protected)),
                    ("restrict_weak_params", Json::Bool(self.config.restrict_weak_params)),
                ]),
            ),
            ("ty_count", Json::num_u(u64::from(self.ty_count))),
            (
                "mined_base",
                Json::Arr(self.mined_base.iter().map(|t| Json::num_u(t.index() as u64)).collect()),
            ),
            (
                "examples",
                Json::Arr(
                    self.examples
                        .iter()
                        .map(|steps| Json::Arr(steps.iter().map(ElemJungloid::to_json).collect()))
                        .collect(),
                ),
            ),
            ("adjacency", Json::Arr(adjacency)),
        ])
    }

    /// Deserializes a graph persisted by [`JungloidGraph::to_json`],
    /// validating every node index and member reference against `api`.
    ///
    /// # Errors
    ///
    /// Fails if the document is malformed, was built over a different
    /// number of types than `api` declares, or refers to out-of-range
    /// nodes or members.
    pub fn from_json(doc: &Json, api: &Api) -> Result<Self, JsonError> {
        let config_doc = doc.want("config")?;
        let config = GraphConfig {
            include_protected: config_doc
                .want("include_protected")?
                .as_bool()
                .ok_or_else(|| decode_err("include_protected must be a bool"))?,
            restrict_weak_params: config_doc
                .want("restrict_weak_params")?
                .as_bool()
                .ok_or_else(|| decode_err("restrict_weak_params must be a bool"))?,
        };
        let ty_count =
            doc.want("ty_count")?.as_u64().ok_or_else(|| decode_err("ty_count must be an integer"))?;
        if ty_count != api.types().len() as u64 {
            return Err(decode_err(format!(
                "graph was built over {ty_count} types but the API declares {}",
                api.types().len()
            )));
        }
        let ty_count = u32::try_from(ty_count).map_err(|_| decode_err("ty_count too large"))?;
        let mined_base = doc
            .want("mined_base")?
            .as_arr()
            .ok_or_else(|| decode_err("mined_base must be an array"))?
            .iter()
            .map(|v| {
                let i = v
                    .as_u64()
                    .ok_or_else(|| decode_err("mined_base entries must be integers"))?;
                let i = usize::try_from(i).map_err(|_| decode_err("mined base out of range"))?;
                if i < api.types().len() {
                    Ok(TyId::from_index(i))
                } else {
                    Err(decode_err(format!("mined base type {i} out of range")))
                }
            })
            .collect::<Result<Vec<TyId>, JsonError>>()?;
        let mut examples = Vec::new();
        for steps_doc in
            doc.want("examples")?.as_arr().ok_or_else(|| decode_err("examples must be an array"))?
        {
            let steps = steps_doc
                .as_arr()
                .ok_or_else(|| decode_err("each example must be an array"))?
                .iter()
                .map(|v| ElemJungloid::from_json(v, api))
                .collect::<Result<Vec<_>, JsonError>>()?;
            examples.push(steps);
        }
        let node_count = ty_count as usize + mined_base.len();
        let adjacency = doc
            .want("adjacency")?
            .as_arr()
            .ok_or_else(|| decode_err("adjacency must be an array"))?;
        if adjacency.len() != node_count {
            return Err(decode_err(format!(
                "adjacency lists {} nodes, expected {node_count}",
                adjacency.len()
            )));
        }
        let mut graph = JungloidGraph {
            config,
            ty_count,
            mined_base,
            out: vec![Vec::new(); node_count],
            rev: vec![Vec::new(); node_count],
            examples,
            edge_count: 0,
        };
        for (from_idx, edges_doc) in adjacency.iter().enumerate() {
            let from = graph.node_at(from_idx);
            for edge_doc in
                edges_doc.as_arr().ok_or_else(|| decode_err("adjacency rows must be arrays"))?
            {
                let elem = ElemJungloid::from_json(edge_doc.want("e")?, api)?;
                let to_idx = edge_doc
                    .want("to")?
                    .as_u64()
                    .ok_or_else(|| decode_err("edge target must be an integer"))?;
                let to_idx =
                    usize::try_from(to_idx).map_err(|_| decode_err("edge target too large"))?;
                if to_idx >= node_count {
                    return Err(decode_err(format!("edge target {to_idx} out of range")));
                }
                let to = graph.node_at(to_idx);
                graph.push_edge(from, elem, to);
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::{ApiLoader, InputSlot};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package t;
                public class A { B toB(); }
                public class B extends A {}
                public class C {
                    C(A a);
                    static B make(A a, B b);
                    protected B prot();
                    private B priv();
                    static C instance();
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn ty(api: &Api, name: &str) -> TyId {
        api.types().resolve(name).unwrap()
    }

    #[test]
    fn signature_edges_present() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let c = ty(&api, "t.C");

        // a.toB(): A -> B
        let out_a = g.out_edges(NodeId::Ty(a));
        assert!(out_a.iter().any(|e| e.to == NodeId::Ty(b) && !e.elem.is_widen()));
        // new C(a): A -> C
        assert!(out_a.iter().any(|e| e.to == NodeId::Ty(c)));
        // C.make consumes either A or B.
        assert!(g.out_edges(NodeId::Ty(b)).iter().any(|e| e.to == NodeId::Ty(b)));
        // static C.instance(): void -> C
        let void = api.types().void();
        assert!(g.out_edges(NodeId::Ty(void)).iter().any(|e| e.to == NodeId::Ty(c)));
    }

    #[test]
    fn widening_edges_follow_hierarchy() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let widens: Vec<_> =
            g.out_edges(NodeId::Ty(b)).iter().filter(|e| e.elem.is_widen()).collect();
        assert_eq!(widens.len(), 1);
        assert_eq!(widens[0].to, NodeId::Ty(a));
        assert!(g.out_edges(NodeId::Ty(a)).iter().any(|e| e.elem.is_widen() && e.to == NodeId::Ty(obj)));
    }

    #[test]
    fn no_downcast_edges_in_signature_graph() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        for idx in 0..g.node_count() {
            for e in g.out_edges(g.node_at(idx)) {
                assert!(!e.elem.is_downcast());
            }
        }
    }

    #[test]
    fn visibility_filtering() {
        let api = api();
        let c = ty(&api, "t.C");
        let count_from_c = |g: &JungloidGraph| {
            g.out_edges(NodeId::Ty(c)).iter().filter(|e| !e.elem.is_widen()).count()
        };
        let public_only = JungloidGraph::from_api(&api, GraphConfig::default());
        let with_protected = JungloidGraph::from_api(
            &api,
            GraphConfig { include_protected: true, ..GraphConfig::default() },
        );
        // `prot()` appears only with include_protected; `priv()` never.
        assert_eq!(count_from_c(&public_only) + 1, count_from_c(&with_protected));
    }

    #[test]
    fn reverse_edges_mirror_forward() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let mut fwd = 0;
        let mut rev = 0;
        for idx in 0..g.node_count() {
            let n = g.node_at(idx);
            fwd += g.out_edges(n).len();
            rev += g.in_edges(n).len();
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, g.edge_count());
    }

    #[test]
    fn add_example_creates_typestate_path() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        // a.toB() widened to Object, then cast back down to B:
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            ElemJungloid::Widen { from: b, to: obj },
            ElemJungloid::Downcast { from: obj, to: b },
        ];
        assert!(g.add_example(&api, &steps).unwrap());
        assert_eq!(g.mined_node_count(), 2);
        // Duplicate insert is a no-op.
        assert!(!g.add_example(&api, &steps).unwrap());
        assert_eq!(g.mined_node_count(), 2);

        // The path enters at A and its last edge lands on the real B node.
        let first: Vec<_> = g
            .out_edges(NodeId::Ty(a))
            .iter()
            .filter(|e| matches!(e.to, NodeId::Mined(_)))
            .collect();
        assert_eq!(first.len(), 1);
        let mid = first[0].to;
        assert_eq!(g.base_ty(mid), b);
        let second = &g.out_edges(mid)[0];
        assert!(second.elem.is_widen());
        let last = &g.out_edges(second.to)[0];
        assert!(last.elem.is_downcast());
        assert_eq!(last.to, NodeId::Ty(b));
    }

    #[test]
    fn ill_typed_example_rejected() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let c = ty(&api, "t.C");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        let steps = vec![
            ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
            // B is not C: composition is ill-typed.
            ElemJungloid::Downcast { from: c, to: c },
        ];
        assert!(g.add_example(&api, &steps).is_err());
        assert!(g.add_example(&api, &[]).is_err());
    }

    #[test]
    fn naive_downcasts_explode() {
        let api = api();
        let g = JungloidGraph::from_api(&api, GraphConfig::default());
        let naive = g.with_naive_downcasts(&api);
        // Every declared type gains a downcast edge from Object (and more).
        assert!(naive.edge_count() > g.edge_count() + 4);
        let obj = api.types().object().unwrap();
        let b = ty(&api, "t.B");
        assert!(naive
            .out_edges(NodeId::Ty(obj))
            .iter()
            .any(|e| e.elem.is_downcast() && e.to == NodeId::Ty(b)));
    }

    #[test]
    fn stats_count_per_kind() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let stats = g.stats(&api);
        assert_eq!(stats.total_edges(), g.edge_count());
        assert_eq!(stats.downcast_edges, 0);
        assert!(stats.widening_edges > 0);
        assert!(stats.instance_edges > 0);
        assert!(stats.constructor_edges > 0);
        assert!(stats.static_edges > 0);

        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Downcast { from: b, to: b }, // placeholder replaced below
            ],
        )
        .err(); // invalid (b -> b); ensure stats unaffected by failed add
        let before = g.stats(&api);
        assert_eq!(before.downcast_edges, 0);
    }

    #[test]
    fn json_round_trip_preserves_graph() {
        let api = api();
        let mut g = JungloidGraph::from_api(
            &api,
            GraphConfig { include_protected: true, ..GraphConfig::default() },
        );
        let a = ty(&api, "t.A");
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: obj },
                ElemJungloid::Downcast { from: obj, to: b },
            ],
        )
        .unwrap();

        let doc = g.to_json();
        let back = JungloidGraph::from_json(&doc, &api).unwrap();
        assert_eq!(back.config(), g.config());
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.mined_node_count(), g.mined_node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.examples(), g.examples());
        for idx in 0..g.node_count() {
            let n = g.node_at(idx);
            assert_eq!(back.out_edges(n), g.out_edges(n));
            // The reverse adjacency is rebuilt node-by-node on load, so
            // only its per-node *contents* are preserved, not the order.
            let mut rev1 = back.in_edges(n).to_vec();
            let mut rev2 = g.in_edges(n).to_vec();
            rev1.sort_unstable();
            rev2.sort_unstable();
            assert_eq!(rev1, rev2);
            assert_eq!(back.base_ty(n), g.base_ty(n));
        }
        // The serialized text survives a parse round trip too.
        assert_eq!(back.to_json(), doc);
        let text = doc.to_text();
        assert_eq!(prospector_obs::Json::parse(&text).unwrap(), doc);

        // Tampered documents are rejected, not mis-loaded.
        assert!(JungloidGraph::from_json(&Json::obj(vec![]), &api).is_err());
        let Json::Obj(mut pairs) = doc else { unreachable!() };
        pairs.retain(|(k, _)| k != "adjacency");
        assert!(JungloidGraph::from_json(&Json::Obj(pairs), &api).is_err());
    }

    #[test]
    fn node_index_round_trip() {
        let api = api();
        let mut g = JungloidGraph::from_api(&api, GraphConfig::default());
        let a = ty(&api, "t.A");
        let m = api.lookup_instance_method(a, "toB", 0)[0];
        let b = ty(&api, "t.B");
        let obj = api.types().object().unwrap();
        g.add_example(
            &api,
            &[
                ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) },
                ElemJungloid::Widen { from: b, to: obj },
                ElemJungloid::Downcast { from: obj, to: b },
            ],
        )
        .unwrap();
        for idx in 0..g.node_count() {
            assert_eq!(g.index_of(g.node_at(idx)), idx);
        }
    }
}
