//! Generalization of mined example jungloids (§4.2).
//!
//! An extracted example often carries an unnecessary prefix (Figure 5/7):
//! the calls that *establish the typestate* making the final downcast
//! succeed are a suffix. The paper's rule: *"if there are two example
//! jungloids β.a.α.(T) and γ.b.α.(U) where a ≠ b and T ≠ U, then we must
//! retain a.α.(T) and b.α.(U)"* — i.e. keep the shortest suffix that
//! distinguishes an example from every example ending in a *different*
//! cast.
//!
//! The implementation follows the paper's O(n·k) sketch: store the
//! examples in a trie keyed by the *reversed* step sequence (cast first)
//! and cut each example at the first depth where the subtrie's examples
//! all end in the same cast target.

use std::collections::HashMap;

use jungloid_apidef::ElemJungloid;
use jungloid_typesys::TyId;

/// One trie node over reversed pre-terminal step sequences.
#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<ElemJungloid, usize>,
    /// Distinct terminal discriminators of all examples passing through
    /// here.
    targets: Vec<Discriminator>,
}

/// What distinguishes two example terminals.
///
/// Downcasts are compared by *target type* (the paper's `T ≠ U` rule);
/// for the §4.3 extension — examples ending in a call whose
/// `Object`/`String` parameter the example feeds — the whole call
/// elementary is the discriminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Discriminator {
    Cast(TyId),
    Terminal(ElemJungloid),
}

/// Generalizes a set of example jungloids.
///
/// Every input must be a non-empty step sequence; sequences ending in a
/// downcast are generalized, all others are passed through unchanged
/// (extraction only emits cast-terminated examples, but synthetic corpora
/// in tests may not).
///
/// The result is deduplicated and each element is a suffix of some input.
///
/// Note the two behaviours §4.4 analyzes:
///
/// * with a *distinguishing* differently-cast example present, the common
///   part is kept (Figure 7's area II) — precision;
/// * with no conflicting example at all, the suffix shrinks to the bare
///   downcast — the documented overgeneralization when condition (b)
///   fails.
#[must_use]
pub fn generalize(examples: &[Vec<ElemJungloid>]) -> Vec<Vec<ElemJungloid>> {
    generalize_with(examples, |e| match e.last() {
        Some(ElemJungloid::Downcast { to, .. }) => Some(Discriminator::Cast(*to)),
        _ => None,
    })
}

/// Generalization for the §4.3 extension: *every* example's final step is
/// its discriminator — downcasts by target type, terminal calls (methods
/// whose `Object`/`String` parameter the example feeds) by the call
/// itself. "The algorithms would be the same, with methods having Object
/// or String parameters playing the role of downcasts."
///
/// One asymmetry: a call-terminated example never generalizes below one
/// body step. A bare `x.m(·)` suffix would mean "any Object works for
/// `m`" — precisely the imprecision §4.3 sets out to remove — whereas a
/// bare downcast merely restates a signature fact.
#[must_use]
pub fn generalize_terminal(examples: &[Vec<ElemJungloid>]) -> Vec<Vec<ElemJungloid>> {
    generalize_with(examples, |e| match e.last() {
        Some(ElemJungloid::Downcast { to, .. }) => Some(Discriminator::Cast(*to)),
        Some(&last) => Some(Discriminator::Terminal(last)),
        None => None,
    })
}

fn generalize_with(
    examples: &[Vec<ElemJungloid>],
    key_of: impl Fn(&Vec<ElemJungloid>) -> Option<Discriminator>,
) -> Vec<Vec<ElemJungloid>> {
    // Build the trie over reversed bodies (everything before the final
    // terminal), annotating nodes with the discriminators below.
    let mut nodes: Vec<TrieNode> = vec![TrieNode::default()];
    let mut castless = Vec::new();
    let mut cast_examples = Vec::new();
    for e in examples {
        match key_of(e) {
            Some(key) => cast_examples.push((e, key)),
            None => castless.push(e.clone()),
        }
    }
    for (e, target) in &cast_examples {
        let body = &e[..e.len() - 1];
        let mut at = 0usize;
        record_target(&mut nodes[at].targets, *target);
        for step in body.iter().rev() {
            let next = match nodes[at].children.get(step) {
                Some(&n) => n,
                None => {
                    let n = nodes.len();
                    nodes.push(TrieNode::default());
                    nodes[at].children.insert(*step, n);
                    n
                }
            };
            at = next;
            record_target(&mut nodes[at].targets, *target);
        }
    }
    // Cut each example at the first singleton-target depth.
    let mut out: Vec<Vec<ElemJungloid>> = Vec::new();
    let mut trimmed: u64 = 0;
    for (e, target) in &cast_examples {
        let body = &e[..e.len() - 1];
        let mut at = 0usize;
        let mut keep = body.len(); // default: keep everything
        if nodes[at].targets.len() == 1 {
            keep = 0;
        } else {
            for (depth, step) in body.iter().rev().enumerate() {
                at = nodes[at].children[step];
                if nodes[at].targets.len() == 1 {
                    keep = depth + 1;
                    break;
                }
            }
        }
        if matches!(target, Discriminator::Terminal(_)) {
            // Call-terminated examples keep at least one producing step.
            keep = keep.max(1.min(body.len()));
        }
        let suffix: Vec<ElemJungloid> = e[e.len() - 1 - keep..].to_vec();
        if suffix.len() < e.len() {
            trimmed += 1;
        }
        if !out.contains(&suffix) {
            out.push(suffix);
        }
    }
    for e in castless {
        if !out.contains(&e) {
            out.push(e);
        }
    }
    prospector_obs::add("generalize.suffixes_trimmed", trimmed);
    out
}

fn record_target(targets: &mut Vec<Discriminator>, t: Discriminator) {
    if !targets.contains(&t) {
        targets.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::elem::elems_of_method;
    use jungloid_apidef::{Api, ApiLoader, InputSlot};

    /// Figure 7's shape: two chains that converge on a shared suffix but
    /// end in different casts, plus assorted prefixes.
    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "ant.api",
                r"
                package ant;
                public class Project {
                    Object getTargets();
                    Object getTasks();
                }
                public class Target {}
                public class Task {}
                public class Locator {
                    static Project find(String name);
                    Project reload();
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    struct Elems {
        get_targets: ElemJungloid,
        get_tasks: ElemJungloid,
        find: ElemJungloid,
        reload: ElemJungloid,
        cast_target: ElemJungloid,
        cast_task: ElemJungloid,
    }

    fn elems(api: &Api) -> Elems {
        let project = api.types().resolve("Project").unwrap();
        let locator = api.types().resolve("Locator").unwrap();
        let obj = api.types().object().unwrap();
        let target = api.types().resolve("Target").unwrap();
        let task = api.types().resolve("Task").unwrap();
        let m = |c, n: &str| {
            let id = api.lookup_instance_method(c, n, 0).first().copied().unwrap_or_else(|| {
                api.lookup_static_method(c, n, 1)[0]
            });
            elems_of_method(api, id)[0]
        };
        Elems {
            get_targets: m(project, "getTargets"),
            get_tasks: m(project, "getTasks"),
            find: m(locator, "find"),
            reload: ElemJungloid::Call {
                method: api.lookup_instance_method(locator, "reload", 0)[0],
                input: Some(InputSlot::Receiver),
            },
            cast_target: ElemJungloid::Downcast { from: obj, to: target },
            cast_task: ElemJungloid::Downcast { from: obj, to: task },
        }
    }

    #[test]
    fn figure7_shared_suffix_distinguished() {
        let api = api();
        let e = elems(&api);
        // (Target) locator.find(n).getTargets()   — area I = find
        // (Task)   locator.reload().getTasks()
        let ex1 = vec![e.find, e.get_targets, e.cast_target];
        let ex2 = vec![e.reload, e.get_tasks, e.cast_task];
        let g = generalize(&[ex1, ex2]);
        // getTargets vs getTasks already distinguish the casts, so the
        // prefixes (find / reload) are dropped.
        assert_eq!(g.len(), 2);
        assert!(g.contains(&vec![e.get_targets, e.cast_target]));
        assert!(g.contains(&vec![e.get_tasks, e.cast_task]));
    }

    #[test]
    fn identical_suffix_different_cast_keeps_divergence_point() {
        let api = api();
        let e = elems(&api);
        // (Target) find(n).getTargets()  vs  (Task) reload().getTargets():
        // getTargets is shared, so the divergent prior step must be kept.
        let ex1 = vec![e.find, e.get_targets, e.cast_target];
        let ex2 = vec![e.reload, e.get_targets, e.cast_task];
        let g = generalize(&[ex1.clone(), ex2.clone()]);
        assert!(g.contains(&ex1));
        assert!(g.contains(&ex2));
    }

    #[test]
    fn no_conflicts_generalizes_to_bare_cast() {
        let api = api();
        let e = elems(&api);
        let ex = vec![e.find, e.get_targets, e.cast_target];
        let g = generalize(&[ex]);
        assert_eq!(g, vec![vec![e.cast_target]]);
    }

    #[test]
    fn same_cast_examples_do_not_constrain_each_other() {
        let api = api();
        let e = elems(&api);
        let ex1 = vec![e.find, e.get_targets, e.cast_target];
        let ex2 = vec![e.reload, e.get_targets, e.cast_target];
        let g = generalize(&[ex1, ex2]);
        // Both end in (Target): no conflict, so both collapse to the cast.
        assert_eq!(g, vec![vec![e.cast_target]]);
    }

    #[test]
    fn example_that_is_suffix_of_conflicting_example_kept_whole() {
        let api = api();
        let e = elems(&api);
        // Shorter example is a full suffix of the longer, differently-cast
        // one: it can never be distinguished, so it is kept whole.
        let long = vec![e.find, e.get_targets, e.cast_target];
        let short = vec![e.get_targets, e.cast_task];
        let g = generalize(&[long.clone(), short.clone()]);
        assert!(g.contains(&short));
        // The long one is distinguished one step earlier.
        assert!(g.contains(&vec![e.find, e.get_targets, e.cast_target]));
    }

    #[test]
    fn castless_examples_pass_through() {
        let api = api();
        let e = elems(&api);
        let plain = vec![e.find, e.get_targets];
        let g = generalize(std::slice::from_ref(&plain));
        assert_eq!(g, vec![plain]);
    }

    #[test]
    fn output_deduplicated() {
        let api = api();
        let e = elems(&api);
        let ex1 = vec![e.find, e.get_targets, e.cast_target];
        let ex2 = vec![e.reload, e.get_targets, e.cast_target];
        let ex3 = vec![e.get_tasks, e.cast_task];
        let g = generalize(&[ex1, ex2, ex3.clone()]);
        // ex1/ex2 share cast & suffix; dedup leaves getTargets+cast once…
        // actually they collapse to [get_targets, cast] because ex3's
        // differently-cast body diverges at depth 1.
        assert_eq!(g.len(), 2);
        assert!(g.contains(&vec![e.get_targets, e.cast_target]));
        assert!(g.contains(&ex3));
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(generalize(&[]).is_empty());
    }
}
