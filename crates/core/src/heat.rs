//! Workload analytics: the process-global graph heat table and query
//! sketches.
//!
//! Two aggregates, both gated on one [`enabled`] flag (off by default, so
//! the search hot loop pays a single relaxed load per query when nobody
//! is watching):
//!
//! * **Graph heat** — per-edge and per-node traversal counters. The DFS
//!   tallies into dense per-thread arrays on [`SearchScratch`]
//!   (branch-light, allocation-free; pinned by the `heat_overhead`
//!   bench) and [`crate::search::enumerate_with`] folds them into the
//!   global table once per query via [`merge_raw`]. The 0-1 BFS
//!   contributes its reached set once per distance-field *build* (cache
//!   misses only) via [`record_field`] — a single pass over the dense
//!   distance array, keeping the relaxation loop itself untouched.
//! * **Workload sketches** — a count-min sketch plus space-saving top-K
//!   trackers over `(tin, tout)` query keys: overall popularity,
//!   result-cache misses, and truncated queries. Recorded once per
//!   explicit query by the engine.
//!
//! Both are epoch-stamped: a merge or snapshot against a different graph
//! epoch resets the heat table (heat counts are meaningless across graph
//! mutations), exactly like the engine's cache invalidation.
//! [`snapshot`] resolves dense indices back to display names — types via
//! the graph's node table, members and edges via
//! [`ElemJungloid::label`] — only at report time, so the record path
//! never touches a string.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use jungloid_apidef::{Api, ElemJungloid};
use jungloid_typesys::TyId;
use prospector_obs::sketch::{CountMinSketch, SpaceSaving};

use crate::graph::{JungloidGraph, NodeId};

/// Tracked keys per space-saving tracker (popularity / misses /
/// truncated). Real traffic is heavily skewed; 64 slots comfortably hold
/// the head of the distribution.
const TOPK_CAP: usize = 64;

/// Count-min shape: 1024 × 4 bounds the overestimate by `N / 1024` per
/// row with four independent chances to dodge a heavy collision.
const CM_WIDTH: usize = 1024;
const CM_DEPTH: usize = 4;

/// Fixed hash seed: sketches must be deterministic for a fixed replay
/// (the heat-replay test pins top-K output) and mergeable across
/// processes that agree on the constant.
const CM_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn heat accounting and workload sketching on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether traversal heat and query sketches are being recorded.
#[must_use]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global heat table: dense per-node and per-edge traversal counts,
/// epoch-stamped against graph mutation.
struct HeatInner {
    /// Graph epoch these counts belong to (`u64::MAX` = unset).
    epoch: u64,
    nodes: Vec<u64>,
    edges: Vec<u64>,
    /// Queries whose DFS tallies were merged.
    queries: u64,
    /// Distance-field builds whose reached sets were merged.
    fields: u64,
}

fn heat() -> &'static Mutex<HeatInner> {
    static HEAT: OnceLock<Mutex<HeatInner>> = OnceLock::new();
    HEAT.get_or_init(|| {
        Mutex::new(HeatInner {
            epoch: u64::MAX,
            nodes: Vec::new(),
            edges: Vec::new(),
            queries: 0,
            fields: 0,
        })
    })
}

/// Re-point the table at `epoch`, resizing and zeroing as needed.
fn ensure(inner: &mut HeatInner, epoch: u64, node_count: usize, edge_count: usize) {
    if inner.epoch != epoch || inner.nodes.len() != node_count || inner.edges.len() != edge_count {
        inner.epoch = epoch;
        inner.nodes.clear();
        inner.nodes.resize(node_count, 0);
        inner.edges.clear();
        inner.edges.resize(edge_count, 0);
        inner.queries = 0;
        inner.fields = 0;
    }
}

/// Fold one query's DFS tallies into the global table: `touched_*` lists
/// the indices with nonzero counts in the dense `*_heat` arrays. The
/// caller zeroes its tallies afterwards. Allocation-free except when the
/// epoch changes (table resize).
pub fn merge_raw(
    epoch: u64,
    node_count: usize,
    edge_count: usize,
    touched_nodes: &[u32],
    node_heat: &[u32],
    touched_edges: &[u32],
    edge_heat: &[u32],
) {
    let mut inner = heat().lock().unwrap();
    ensure(&mut inner, epoch, node_count, edge_count);
    for &i in touched_nodes {
        let i = i as usize;
        inner.nodes[i] = inner.nodes[i].saturating_add(u64::from(node_heat[i]));
    }
    for &i in touched_edges {
        let i = i as usize;
        inner.edges[i] = inner.edges[i].saturating_add(u64::from(edge_heat[i]));
    }
    inner.queries += 1;
}

/// Fold a freshly built distance field's reached set into the node
/// counts: every node with a finite distance was settled by the 0-1 BFS.
/// Called once per field *build* (i.e. per distance-cache miss), so the
/// `O(nodes)` pass never sits on the per-query path.
pub fn record_field(epoch: u64, dist: &[u32], edge_count: usize) {
    let mut inner = heat().lock().unwrap();
    ensure(&mut inner, epoch, dist.len(), edge_count);
    for (i, &d) in dist.iter().enumerate() {
        if d != u32::MAX {
            inner.nodes[i] = inner.nodes[i].saturating_add(1);
        }
    }
    inner.fields += 1;
}

/// Workload sketches over `(tin, tout)` query keys.
struct WorkloadInner {
    freq: CountMinSketch,
    popularity: SpaceSaving,
    misses: SpaceSaving,
    truncated: SpaceSaving,
    queries: u64,
    cache_misses: u64,
    truncations: u64,
}

fn workload() -> &'static Mutex<WorkloadInner> {
    static WORKLOAD: OnceLock<Mutex<WorkloadInner>> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        Mutex::new(WorkloadInner {
            freq: CountMinSketch::new(CM_WIDTH, CM_DEPTH, CM_SEED),
            popularity: SpaceSaving::new(TOPK_CAP),
            misses: SpaceSaving::new(TOPK_CAP),
            truncated: SpaceSaving::new(TOPK_CAP),
            queries: 0,
            cache_misses: 0,
            truncations: 0,
        })
    })
}

/// Pack a query key: type-arena indices fit u32 by construction.
fn query_key(tin: TyId, tout: TyId) -> u64 {
    ((tin.index() as u64) << 32) | tout.index() as u64
}

/// Record one explicit query into the workload sketches. `miss` means the
/// full pipeline ran (result-cache miss or caching disabled); `truncated`
/// means the search hit a cap. No-op unless [`enabled`]. Allocation-free.
pub fn record_query(tin: TyId, tout: TyId, miss: bool, truncated: bool) {
    if !enabled() {
        return;
    }
    let key = query_key(tin, tout);
    let mut w = workload().lock().unwrap();
    w.freq.record(key, 1);
    w.popularity.record(key, 1);
    w.queries += 1;
    if miss {
        w.misses.record(key, 1);
        w.cache_misses += 1;
    }
    if truncated {
        w.truncated.record(key, 1);
        w.truncations += 1;
    }
}

/// Forget all heat counts and workload sketches (tests and benches).
pub fn reset() {
    let mut inner = heat().lock().unwrap();
    inner.epoch = u64::MAX;
    inner.nodes.clear();
    inner.edges.clear();
    inner.queries = 0;
    inner.fields = 0;
    drop(inner);
    let mut w = workload().lock().unwrap();
    w.freq.reset();
    w.popularity.reset();
    w.misses.reset();
    w.truncated.reset();
    w.queries = 0;
    w.cache_misses = 0;
    w.truncations = 0;
}

/// One hot type or member with its traversal count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeatEntry {
    /// Resolved display name.
    pub label: String,
    /// Accumulated traversal count.
    pub count: u64,
}

/// One hot edge: an elementary jungloid between two resolved nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeatEdge {
    /// Source node's display name.
    pub from: String,
    /// The elementary jungloid's label.
    pub elem: String,
    /// Destination node's display name.
    pub to: String,
    /// Times the DFS examined this edge.
    pub count: u64,
}

/// Top-K view of the heat table with names resolved against the API.
#[derive(Clone, Debug, Default)]
pub struct HeatSnapshot {
    /// Graph epoch the counts belong to.
    pub epoch: u64,
    /// Queries merged into the table.
    pub queries: u64,
    /// Distance-field builds merged into the table.
    pub fields: u64,
    /// Nodes with a nonzero count.
    pub nodes_touched: usize,
    /// Edges with a nonzero count.
    pub edges_touched: usize,
    /// Sum of all node counts.
    pub node_total: u64,
    /// Sum of all edge counts.
    pub edge_total: u64,
    /// Hottest types (node visits + BFS reached sets).
    pub top_types: Vec<HeatEntry>,
    /// Hottest members (edge counts aggregated per field/method).
    pub top_members: Vec<HeatEntry>,
    /// Hottest individual edges.
    pub top_edges: Vec<HeatEdge>,
}

/// Display name for a dense node index.
fn node_label(graph: &JungloidGraph, api: &Api, index: usize) -> String {
    match graph.node_at(index) {
        NodeId::Ty(t) => api.types().display_simple(t),
        NodeId::Mined(i) => {
            let base = api.types().display_simple(graph.base_ty(NodeId::Mined(i)));
            format!("{base}#mined{i}")
        }
    }
}

/// Sort `(count, label)` pairs hottest-first with a total, deterministic
/// order (ties break on the label) and keep the top `k`.
fn top_k_entries(mut entries: Vec<HeatEntry>, k: usize) -> Vec<HeatEntry> {
    entries.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.label.cmp(&b.label)));
    entries.truncate(k);
    entries
}

/// Build a top-K heat report for `graph`. Counts recorded against a
/// different epoch (or a differently sized graph) report as empty rather
/// than lying about a graph that no longer exists.
#[must_use]
pub fn snapshot(graph: &JungloidGraph, api: &Api, k: usize) -> HeatSnapshot {
    let inner = heat().lock().unwrap();
    let mut snap = HeatSnapshot { epoch: graph.epoch(), ..HeatSnapshot::default() };
    if inner.epoch != graph.epoch()
        || inner.nodes.len() != graph.node_count()
        || inner.edges.len() != graph.edge_count()
    {
        return snap;
    }
    snap.queries = inner.queries;
    snap.fields = inner.fields;

    let mut types = Vec::new();
    for (i, &count) in inner.nodes.iter().enumerate() {
        if count == 0 {
            continue;
        }
        snap.nodes_touched += 1;
        snap.node_total += count;
        types.push(HeatEntry { label: node_label(graph, api, i), count });
    }

    let csr = graph.csr();
    let out_to = csr.out_to();
    let out_elem = csr.out_elem();
    let mut members: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut edges = Vec::new();
    for n in 0..graph.node_count() {
        for ei in csr.out_range(n) {
            let count = inner.edges[ei];
            if count == 0 {
                continue;
            }
            snap.edges_touched += 1;
            snap.edge_total += count;
            let elem = out_elem.get(ei);
            let label = elem.label(api);
            if matches!(elem, ElemJungloid::FieldAccess { .. } | ElemJungloid::Call { .. }) {
                *members.entry(label.clone()).or_insert(0) += count;
            }
            edges.push(HeatEdge {
                from: node_label(graph, api, n),
                elem: label,
                to: node_label(graph, api, out_to[ei] as usize),
                count,
            });
        }
    }
    drop(inner);

    snap.top_types = top_k_entries(types, k);
    snap.top_members = top_k_entries(
        members.into_iter().map(|(label, count)| HeatEntry { label, count }).collect(),
        k,
    );
    edges.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then_with(|| a.from.cmp(&b.from))
            .then_with(|| a.elem.cmp(&b.elem))
            .then_with(|| a.to.cmp(&b.to))
    });
    edges.truncate(k);
    snap.top_edges = edges;
    snap
}

/// One tracked `(tin, tout)` key with resolved names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadEntry {
    /// Resolved input type name.
    pub tin: String,
    /// Resolved output type name.
    pub tout: String,
    /// Space-saving count (upper bound on true frequency).
    pub count: u64,
    /// Error inherited from evictions (`count - err` is a lower bound).
    pub err: u64,
    /// Count-min estimate for the same key (independent confirmation).
    pub estimate: u64,
}

/// Top-K view of the workload sketches with names resolved.
#[derive(Clone, Debug, Default)]
pub struct WorkloadSnapshot {
    /// Explicit queries recorded.
    pub queries: u64,
    /// Queries that ran the full pipeline (cache miss or caching off).
    pub cache_misses: u64,
    /// Queries whose search hit a cap.
    pub truncations: u64,
    /// Count-min sketch shape, for the report.
    pub sketch_width: usize,
    /// Count-min rows.
    pub sketch_depth: usize,
    /// Most popular query keys.
    pub popularity: Vec<WorkloadEntry>,
    /// Keys that miss the result cache most.
    pub misses: Vec<WorkloadEntry>,
    /// Keys whose searches truncate most.
    pub truncated: Vec<WorkloadEntry>,
}

/// Resolve a space-saving tracker's top `k` against the API, attaching
/// count-min estimates from `freq`.
fn resolve_top(
    tracker: &SpaceSaving,
    freq: &CountMinSketch,
    api: &Api,
    k: usize,
) -> Vec<WorkloadEntry> {
    tracker
        .top()
        .into_iter()
        .take(k)
        .map(|e| WorkloadEntry {
            tin: api.types().display_simple(TyId::from_index((e.key >> 32) as usize)),
            tout: api.types().display_simple(TyId::from_index((e.key & 0xffff_ffff) as usize)),
            count: e.count,
            err: e.err,
            estimate: freq.estimate(e.key),
        })
        .collect()
}

/// Build a top-K workload report.
#[must_use]
pub fn workload_snapshot(api: &Api, k: usize) -> WorkloadSnapshot {
    let w = workload().lock().unwrap();
    WorkloadSnapshot {
        queries: w.queries,
        cache_misses: w.cache_misses,
        truncations: w.truncations,
        sketch_width: w.freq.width(),
        sketch_depth: w.freq.depth(),
        popularity: resolve_top(&w.popularity, &w.freq, api, k),
        misses: resolve_top(&w.misses, &w.freq, api, k),
        truncated: resolve_top(&w.truncated, &w.freq, api, k),
    }
}
