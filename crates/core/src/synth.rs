//! Code generation: turning a [`Jungloid`] into insertable Java-ish code.
//!
//! Snippets are built as MiniJava ASTs and rendered with the
//! `jungloid-minijava` pretty printer, so everything Prospector suggests is
//! guaranteed to re-parse. Two renderings are provided, matching the
//! paper's two presentations:
//!
//! * a nested expression (`new BufferedReader(new InputStreamReader(in))`),
//!   used in the ranked suggestion list;
//! * a statement sequence with one local per step (§2.2's translation of
//!   the `IEditorPart` example), used when inserting into user code.
//!
//! Free variables become declared-but-unbound locals, exactly like the
//! paper's `DocumentProviderRegistry dpreg; // free variable`, and the
//! user binds them with follow-up queries.

use std::collections::HashMap;

use jungloid_apidef::{Api, ElemJungloid, InputSlot};
use jungloid_minijava::ast::{Expr, Stmt, TypeName};
use jungloid_minijava::print::{expr_to_string, stmt_to_string};
use jungloid_typesys::{Ty, TyId};

use crate::path::Jungloid;

/// A generated code snippet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snippet {
    /// The input variable, if the jungloid consumes one (`None` for
    /// `void`-sourced jungloids).
    pub input: Option<(String, TyId)>,
    /// Free variables the user still has to bind, with generated names.
    pub free_vars: Vec<(String, TyId)>,
    /// The jungloid as one nested expression.
    pub expr: Expr,
    /// Static type of the expression.
    pub result_ty: TyId,
}

impl Snippet {
    /// The nested-expression rendering.
    #[must_use]
    pub fn code(&self) -> String {
        expr_to_string(&self.expr)
    }

    /// Declarations for the free variables (one `T name;` line each).
    #[must_use]
    pub fn free_var_decls(&self, api: &Api) -> Vec<String> {
        self.free_vars
            .iter()
            .map(|(name, ty)| {
                let stmt = Stmt::Local { ty: ty_to_type_name(api, *ty), name: name.clone(), init: None };
                format!("{} // free variable", stmt_to_string(&stmt))
            })
            .collect()
    }

    /// A full insertable block: free-variable declarations followed by a
    /// declaration of `result_var` initialized to the expression.
    #[must_use]
    pub fn render_block(&self, api: &Api, result_var: &str) -> String {
        let mut out = String::new();
        for line in self.free_var_decls(api) {
            out.push_str(&line);
            out.push('\n');
        }
        let stmt = Stmt::Local {
            ty: ty_to_type_name(api, self.result_ty),
            name: result_var.to_owned(),
            init: Some(self.expr.clone()),
        };
        out.push_str(&stmt_to_string(&stmt));
        out
    }
}

/// Converts a type id to a simple-name MiniJava type name.
#[must_use]
pub fn ty_to_type_name(api: &Api, ty: TyId) -> TypeName {
    let mut dims = 0;
    let mut cur = ty;
    while let Ty::Array(elem) = api.types().ty(cur) {
        dims += 1;
        cur = elem;
    }
    TypeName { parts: vec![api.types().display_simple(cur)], dims }
}

/// Allocates readable, collision-free variable names.
///
/// A pool may be shared across several synthesis calls (the composition
/// engine threads one pool through a whole multi-query solution so
/// sub-snippets never shadow each other's variables).
#[derive(Debug, Default)]
pub struct NamePool {
    used: HashMap<String, u32>,
}

impl NamePool {
    /// A fresh, empty pool.
    #[must_use]
    pub fn new() -> Self {
        NamePool::default()
    }

    /// Marks `name` as taken.
    pub fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_owned(), 1);
    }

    /// A fresh name derived from the type's simple name.
    pub fn fresh(&mut self, api: &Api, ty: TyId) -> String {
        self.fresh_hinted(api, ty, None)
    }

    /// Prefers the declared parameter name when the API model knows it.
    pub fn fresh_hinted(&mut self, api: &Api, ty: TyId, hint: Option<&str>) -> String {
        let base = match hint {
            Some(h) => h.to_owned(),
            None => match api.types().ty(ty) {
                Ty::Prim(p) => prim_var_name(p).to_owned(),
                _ => lower_camel(&api.types().display_simple(ty).replace("[]", "s")),
            },
        };
        let n = self.used.entry(base.clone()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base
        } else {
            format!("{base}{n}")
        }
    }
}

/// Fallback names for unnamed primitive free variables (never Java
/// keywords).
fn prim_var_name(p: jungloid_typesys::Prim) -> &'static str {
    use jungloid_typesys::Prim;
    match p {
        Prim::Boolean => "flag",
        Prim::Byte => "b",
        Prim::Char => "ch",
        Prim::Short | Prim::Int | Prim::Long => "n",
        Prim::Float | Prim::Double => "x",
    }
}

fn lower_camel(name: &str) -> String {
    // Strip the Eclipse-style `I` interface prefix for readability:
    // `IEditorPart` -> `editorPart`.
    let stripped = match name.as_bytes() {
        [b'I', second, ..] if second.is_ascii_uppercase() && name.len() > 2 => &name[1..],
        _ => name,
    };
    let mut chars = stripped.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => "v".to_owned(),
    }
}

/// Synthesizes the nested-expression snippet for a jungloid.
///
/// `input_name` names the input object (e.g. the in-scope variable the
/// engine matched); defaults to a name derived from the source type.
///
/// # Panics
///
/// Panics if the jungloid is ill-typed (callers obtain jungloids from the
/// search, which only produces well-typed ones; validate first otherwise).
#[must_use]
pub fn synthesize(api: &Api, jungloid: &Jungloid, input_name: Option<&str>) -> Snippet {
    let mut names = NamePool::default();
    let void = api.types().void();
    let input = if jungloid.source == void {
        None
    } else {
        let name = input_name.map_or_else(|| names.fresh(api, jungloid.source), str::to_owned);
        names.reserve(&name);
        Some((name, jungloid.source))
    };
    let mut free_vars = Vec::new();
    let mut cur: Option<Expr> = input.as_ref().map(|(name, _)| Expr::var(name));
    for elem in &jungloid.elems {
        cur = Some(step_expr(api, *elem, cur, &mut names, &mut free_vars));
    }
    Snippet {
        input,
        free_vars,
        expr: cur.expect("non-empty jungloid"),
        result_ty: jungloid.output_ty(api),
    }
}

/// Synthesizes the statement-sequence rendering (§2.2 style): one local
/// per non-widening step, with free-variable declarations first. Returns
/// the statements and the name of the final result variable.
#[must_use]
pub fn synthesize_statements(
    api: &Api,
    jungloid: &Jungloid,
    input_name: Option<&str>,
) -> (Vec<Stmt>, Snippet) {
    let mut names = NamePool::default();
    synthesize_statements_pooled(api, jungloid, input_name, &mut names)
}

/// Like [`synthesize_statements`], drawing variable names from a shared
/// [`NamePool`] so several snippets can be composed without collisions.
#[must_use]
pub fn synthesize_statements_pooled(
    api: &Api,
    jungloid: &Jungloid,
    input_name: Option<&str>,
    names: &mut NamePool,
) -> (Vec<Stmt>, Snippet) {
    let void = api.types().void();
    let input = if jungloid.source == void {
        None
    } else {
        let name = input_name.map_or_else(|| names.fresh(api, jungloid.source), str::to_owned);
        names.reserve(&name);
        Some((name, jungloid.source))
    };
    let mut free_vars: Vec<(String, TyId)> = Vec::new();
    let mut stmts = Vec::new();
    let mut cur: Option<Expr> = input.as_ref().map(|(name, _)| Expr::var(name));
    let mut last_expr = cur.clone();
    for elem in &jungloid.elems {
        if elem.is_widen() {
            continue;
        }
        let e = step_expr(api, *elem, cur.clone(), names, &mut free_vars);
        let out_ty = elem.output_ty(api);
        let var = names.fresh(api, out_ty);
        stmts.push(Stmt::Local {
            ty: ty_to_type_name(api, out_ty),
            name: var.clone(),
            init: Some(e.clone()),
        });
        cur = Some(Expr::var(&var));
        last_expr = Some(e);
    }
    // Free-variable declarations go first.
    let mut all: Vec<Stmt> = free_vars
        .iter()
        .map(|(name, ty)| Stmt::Local { ty: ty_to_type_name(api, *ty), name: name.clone(), init: None })
        .collect();
    all.extend(stmts);
    let snippet = Snippet {
        input,
        free_vars,
        expr: last_expr.expect("non-empty jungloid"),
        result_ty: jungloid.output_ty(api),
    };
    (all, snippet)
}

fn step_expr(
    api: &Api,
    elem: ElemJungloid,
    cur: Option<Expr>,
    names: &mut NamePool,
    free_vars: &mut Vec<(String, TyId)>,
) -> Expr {
    let mut free = |names: &mut NamePool, ty: TyId, hint: Option<&str>| {
        let name = names.fresh_hinted(api, ty, hint);
        free_vars.push((name.clone(), ty));
        Expr::var(&name)
    };
    match elem {
        ElemJungloid::FieldAccess { field } => {
            let def = api.field(field);
            if def.is_static {
                Expr::Name {
                    parts: vec![api.types().display_simple(def.declaring), def.name.clone()],
                }
            } else {
                Expr::Field {
                    recv: Box::new(cur.expect("instance field needs input")),
                    name: def.name.clone(),
                }
            }
        }
        ElemJungloid::Call { method, input } => {
            let def = api.method(method).clone();
            let mut args = Vec::with_capacity(def.params.len());
            for (i, &p) in def.params.iter().enumerate() {
                if input == Some(InputSlot::Arg(i)) {
                    args.push(cur.clone().expect("arg-consuming call needs input"));
                } else {
                    let hint = def.param_names.get(i).and_then(|n| n.as_deref());
                    args.push(free(names, p, hint));
                }
            }
            if def.is_constructor {
                Expr::New {
                    class: TypeName::simple(&api.types().display_simple(def.declaring)),
                    args,
                }
            } else if def.is_static {
                Expr::Call {
                    recv: Some(Box::new(Expr::var(&api.types().display_simple(def.declaring)))),
                    name: def.name,
                    args,
                }
            } else {
                let recv = if input == Some(InputSlot::Receiver) {
                    cur.expect("receiver-consuming call needs input")
                } else {
                    free(names, def.declaring, None)
                };
                Expr::Call { recv: Some(Box::new(recv)), name: def.name, args }
            }
        }
        ElemJungloid::Widen { .. } => cur.expect("widening needs input"),
        ElemJungloid::Downcast { to, .. } => Expr::Cast {
            ty: ty_to_type_name(api, to),
            expr: Box::new(cur.expect("downcast needs input")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::elem::elems_of_method;
    use jungloid_apidef::ApiLoader;
    use jungloid_minijava::parse::parse_expr;

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "t.api",
                r"
                package io;
                public class InputStream {}
                public class Reader {}
                public class InputStreamReader extends Reader {
                    InputStreamReader(InputStream in);
                }
                public class BufferedReader extends Reader {
                    BufferedReader(Reader in);
                }
                package ui;
                public interface IEditorInput {}
                public interface IEditorPart { IEditorInput getEditorInput(); }
                public interface IDocumentProvider {}
                public class DocumentProviderRegistry {
                    static DocumentProviderRegistry getDefault();
                    IDocumentProvider getDocumentProvider(IEditorInput input);
                }
                public class Layers {
                    static Layers CONNECTION;
                    Layers sub;
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn elem(api: &Api, class: &str, name: &str, input: TyId) -> ElemJungloid {
        let c = api.types().resolve(class).unwrap();
        for &m in api.methods_of(c) {
            let d = api.method(m);
            let matches = if name == "<init>" { d.is_constructor } else { d.name == name };
            if matches {
                for e in elems_of_method(api, m) {
                    if e.input_ty(api) == input {
                        return e;
                    }
                }
            }
        }
        panic!("no elem {class}.{name}")
    }

    #[test]
    fn nested_constructors() {
        let api = api();
        let input = api.types().resolve("InputStream").unwrap();
        let reader = api.types().resolve("Reader").unwrap();
        let isr = api.types().resolve("InputStreamReader").unwrap();
        let j = Jungloid::new(
            &api,
            input,
            vec![
                elem(&api, "InputStreamReader", "<init>", input),
                ElemJungloid::Widen { from: isr, to: reader },
                elem(&api, "BufferedReader", "<init>", reader),
            ],
        )
        .unwrap();
        let s = synthesize(&api, &j, Some("in"));
        assert_eq!(s.code(), "new BufferedReader(new InputStreamReader(in))");
        assert!(s.free_vars.is_empty());
        // Output re-parses.
        parse_expr(&s.code()).unwrap();
    }

    #[test]
    fn free_variable_receiver_like_section_2_2() {
        // §2.2: dpreg.getDocumentProvider(ep.getEditorInput()) with free
        // variable dpreg.
        let api = api();
        let part = api.types().resolve("IEditorPart").unwrap();
        let inp = api.types().resolve("IEditorInput").unwrap();
        let j = Jungloid::new(
            &api,
            part,
            vec![
                elem(&api, "IEditorPart", "getEditorInput", part),
                elem(&api, "DocumentProviderRegistry", "getDocumentProvider", inp),
            ],
        )
        .unwrap();
        let s = synthesize(&api, &j, Some("ep"));
        assert_eq!(s.free_vars.len(), 1);
        let (name, ty) = &s.free_vars[0];
        assert_eq!(*ty, api.types().resolve("DocumentProviderRegistry").unwrap());
        assert_eq!(s.code(), format!("{name}.getDocumentProvider(ep.getEditorInput())"));
        let block = s.render_block(&api, "dp");
        assert!(block.contains("DocumentProviderRegistry documentProviderRegistry; // free variable"));
        assert!(block.ends_with("IDocumentProvider dp = documentProviderRegistry.getDocumentProvider(ep.getEditorInput());"));
    }

    #[test]
    fn void_sourced_static_chain() {
        let api = api();
        let void = api.types().void();
        let j = Jungloid::new(&api, void, vec![elem(&api, "DocumentProviderRegistry", "getDefault", void)])
            .unwrap();
        let s = synthesize(&api, &j, None);
        assert!(s.input.is_none());
        assert_eq!(s.code(), "DocumentProviderRegistry.getDefault()");
    }

    #[test]
    fn static_and_instance_fields() {
        let api = api();
        let layers = api.types().resolve("Layers").unwrap();
        let void = api.types().void();
        let shared = api.lookup_field(layers, "CONNECTION").unwrap();
        let j = Jungloid::new(&api, void, vec![ElemJungloid::FieldAccess { field: shared }]).unwrap();
        assert_eq!(synthesize(&api, &j, None).code(), "Layers.CONNECTION");

        let sub = api.lookup_field(layers, "sub").unwrap();
        let j2 = Jungloid::new(&api, layers, vec![ElemJungloid::FieldAccess { field: sub }]).unwrap();
        assert_eq!(synthesize(&api, &j2, Some("l")).code(), "l.sub");
    }

    #[test]
    fn downcast_rendering_reparses() {
        let api = api();
        let part = api.types().resolve("IEditorPart").unwrap();
        let obj = api.types().object().unwrap();
        let inp_elem = elem(&api, "IEditorPart", "getEditorInput", part);
        let inp = api.types().resolve("IEditorInput").unwrap();
        let j = Jungloid::new(
            &api,
            part,
            vec![
                inp_elem,
                ElemJungloid::Widen { from: inp, to: obj },
                ElemJungloid::Downcast { from: obj, to: inp },
            ],
        )
        .unwrap();
        let s = synthesize(&api, &j, Some("ep"));
        assert_eq!(s.code(), "(IEditorInput) ep.getEditorInput()");
        parse_expr(&s.code()).unwrap();
    }

    #[test]
    fn statement_rendering_one_local_per_step() {
        let api = api();
        let part = api.types().resolve("IEditorPart").unwrap();
        let inp = api.types().resolve("IEditorInput").unwrap();
        let j = Jungloid::new(
            &api,
            part,
            vec![
                elem(&api, "IEditorPart", "getEditorInput", part),
                elem(&api, "DocumentProviderRegistry", "getDocumentProvider", inp),
            ],
        )
        .unwrap();
        let (stmts, snippet) = synthesize_statements(&api, &j, Some("ep"));
        let rendered: Vec<String> =
            stmts.iter().map(jungloid_minijava::print::stmt_to_string).collect();
        assert_eq!(rendered.len(), 3); // free var + 2 steps
        assert_eq!(rendered[0], "DocumentProviderRegistry documentProviderRegistry;");
        assert_eq!(rendered[1], "IEditorInput editorInput = ep.getEditorInput();");
        assert_eq!(
            rendered[2],
            "IDocumentProvider documentProvider = documentProviderRegistry.getDocumentProvider(editorInput);"
        );
        assert_eq!(snippet.result_ty, api.types().resolve("IDocumentProvider").unwrap());
    }

    #[test]
    fn name_collisions_get_numbered() {
        let api = api();
        let reader = api.types().resolve("Reader").unwrap();
        let j = Jungloid::new(
            &api,
            reader,
            vec![elem(&api, "BufferedReader", "<init>", reader)],
        )
        .unwrap();
        // Two snippets in one Names universe would collide; within one
        // snippet, input "reader" and result type BufferedReader differ, so
        // just check numbering kicks in for repeated types.
        let (stmts, _) = synthesize_statements(&api, &j, None);
        let rendered: Vec<String> =
            stmts.iter().map(jungloid_minijava::print::stmt_to_string).collect();
        assert_eq!(rendered, vec!["BufferedReader bufferedReader = new BufferedReader(reader);"]);
    }

    #[test]
    fn interface_prefix_stripped_in_names() {
        assert_eq!(lower_camel("IEditorPart"), "editorPart");
        assert_eq!(lower_camel("Input"), "input");
        assert_eq!(lower_camel("IFile"), "file");
        // Two-letter names starting with I are left alone.
        assert_eq!(lower_camel("IO"), "iO");
    }
}
