//! The Prospector query engine: the paper's tool pipeline (§5) minus the
//! Eclipse GUI.
//!
//! * explicit queries `(tin, tout)` (§2.1);
//! * content-assist queries: only `tout` is known, and the types of the
//!   lexically visible variables plus `void` form the `tin` set, all
//!   searched at once with multiple starting points (§1, §5);
//! * results are ranked (§3.2), rendered as insertable code, and
//!   deduplicated by rendered code.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jungloid_apidef::{Api, ElemJungloid};
use jungloid_typesys::{Ty, TyId};
use prospector_obs::trace::{self, TraceId};

use crate::cache::{Lookup, ShardedLru, SingleflightCache};
use crate::generalize::generalize;
use crate::graph::{ExampleError, GraphConfig, JungloidGraph, NodeId};
use crate::path::Jungloid;
use crate::rank::{rank_key, RankKey, RankOptions};
use crate::search::{
    enumerate_with, DistanceField, SearchConfig, SearchOutcome, SearchScratch, TruncationReason,
};
use crate::synth::{synthesize, Snippet};

/// Cap on cached distance fields. Every distinct query target costs one
/// `O(nodes + edges)` field; without a cap a long-lived engine serving
/// many targets grows without bound. When full, the per-shard
/// least-recently-used target is evicted (real workloads re-query few
/// targets, so the hot set survives).
const DIST_CACHE_CAP: usize = 256;

/// Shard count for the distance-field cache. Concurrent queries on
/// different targets take different shard locks, so batch workers never
/// contend on the cache unless their targets collide.
const DIST_CACHE_SHARDS: usize = 16;

/// Cap on cached query results. A full result (suggestions, snippets,
/// rank keys) is heavier than a distance field, but real traffic is
/// heavily skewed toward a small set of popular `(tin, tout)` intents —
/// 512 entries comfortably covers the hot set while per-shard LRU
/// eviction ages out one-off queries.
const RESULT_CACHE_CAP: usize = 512;

/// Shard count for the query-result cache (same contention argument as
/// [`DIST_CACHE_SHARDS`]).
const RESULT_CACHE_SHARDS: usize = 16;

/// The result cache's key: everything a query's answer depends on besides
/// the graph itself (whose changes are tracked by the epoch stamp on each
/// entry). Both config structs are `Copy` bit-bags, so the key is a cheap
/// `Copy + Hash` value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct QueryKey {
    tin: TyId,
    tout: TyId,
    search: SearchConfig,
    ranking: RankOptions,
}

thread_local! {
    /// Per-thread search scratch: each serial caller and each batch
    /// worker reuses one set of DFS buffers across its queries.
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// A query failure.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// Queries are over reference types only (§2.1 footnote 4); `void` is
    /// additionally allowed as an *input*.
    NotAReferenceType {
        /// Rendering of the offending type.
        ty: String,
        /// Whether it appeared as the query input or output.
        position: &'static str,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotAReferenceType { ty, position } => {
                write!(f, "query {position} type `{ty}` is not a reference type")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One ranked suggestion.
#[derive(Clone, Debug)]
pub struct Suggestion {
    /// The underlying jungloid.
    pub jungloid: Jungloid,
    /// The synthesized snippet (expression + free variables).
    pub snippet: Snippet,
    /// Rendered nested-expression code.
    pub code: String,
    /// The in-scope variable used as input, if any.
    pub input_var: Option<String>,
    /// The rank key this suggestion was ordered by.
    pub key: RankKey,
}

/// Per-query attribution: the hot-path tallies this one query spent,
/// regardless of whether the flight recorder is on. The process-global
/// counters (`engine.dist_cache.*`, `search.*`) aggregate the same
/// quantities across all queries; this is the per-request split that
/// lets a batch line say *which* query missed the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// The query's flight-recorder trace id.
    pub trace_id: u64,
    /// Distance-field cache hits this query scored (0 or 1).
    pub dist_cache_hits: u64,
    /// Distance-field cache misses this query paid for (0 or 1).
    pub dist_cache_misses: u64,
    /// DFS edge expansions charged against `max_expansions`.
    pub dfs_expansions: u64,
    /// 0-1 BFS edge relaxations this query paid to build its distance
    /// field (0 on a cache hit — the field was already built).
    pub bfs_relaxations: u64,
    /// 1 if this result was served from the query-result cache — either a
    /// plain LRU hit or a collapse onto a concurrent identical query. A
    /// served hit pays none of the pipeline costs, so every other counter
    /// in these stats is 0 alongside it.
    pub result_cache_hits: u64,
    /// 1 if this query ran the full pipeline and populated the result
    /// cache. 0 for hits, for [`Prospector::assist`] (uncached), and when
    /// [`Prospector::cache_results`] is off.
    pub result_cache_misses: u64,
}

/// The outcome of one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Ranked suggestions, best first, deduplicated by code. Shared
    /// behind an `Arc` so a result-cache hit (and any other clone) is a
    /// reference-count bump, not a deep copy of every suggestion —
    /// read access is unchanged via deref.
    pub suggestions: Arc<Vec<Suggestion>>,
    /// Shortest path length `m` found (non-widening steps).
    pub shortest: Option<u32>,
    /// Which cap (if any) stopped the enumeration early.
    pub truncation: TruncationReason,
    /// Visible variables that already satisfy `tout` without any code
    /// (their type widens to it). Only populated by
    /// [`Prospector::assist`].
    pub already_available: Vec<String>,
    /// Per-query attribution (trace id, cache split, search budgets).
    pub stats: QueryStats,
}

impl QueryResult {
    /// 1-based rank of the first suggestion satisfying `pred`, if any.
    pub fn rank_where<F: FnMut(&Suggestion) -> bool>(&self, pred: F) -> Option<usize> {
        self.suggestions.iter().position(pred).map(|i| i + 1)
    }
}

/// Point-in-time engine introspection for the serve layer's `/status`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStatus {
    /// The graph epoch every cached result is stamped against; advances
    /// on each successful mutation (splice, param mining, reload).
    pub graph_epoch: u64,
    /// Entries currently held by the full-result cache.
    pub result_cache_entries: u64,
    /// Entries currently held by the distance-field cache.
    pub dist_cache_entries: u64,
}

/// One slot of a [`Prospector::query_batch`] result.
#[derive(Clone, Debug)]
pub struct BatchEntry {
    /// The query's input type.
    pub tin: TyId,
    /// The query's output type.
    pub tout: TyId,
    /// The query's flight-recorder trace id. Ids are preallocated in
    /// input order *before* the fan-out, so the id sequence of a batch
    /// is deterministic under any worker interleaving (and identical
    /// across same-seed runs). Present even when the query errored.
    pub trace_id: TraceId,
    /// The query's outcome, exactly as [`Prospector::query`] would have
    /// returned it.
    pub result: Result<QueryResult, QueryError>,
    /// Wall-clock time this query spent inside its worker.
    pub time: Duration,
}

/// The Prospector engine: an API, its jungloid graph, and cached search
/// state.
#[derive(Debug)]
pub struct Prospector {
    api: Api,
    graph: JungloidGraph,
    /// Path-enumeration limits.
    pub search: SearchConfig,
    /// Ranking heuristic knobs.
    pub ranking: RankOptions,
    /// Whether explicit queries go through the result cache (on by
    /// default). Benches that want to measure the raw pipeline turn this
    /// off; correctness is unaffected either way — a cached hit is pinned
    /// byte-identical to the pipeline's output.
    pub cache_results: bool,
    dist_cache: ShardedLru<TyId, Arc<DistanceField>>,
    /// Full-result cache for explicit `(tin, tout)` queries: epoch-stamped
    /// against graph mutation, singleflight so concurrent identical
    /// queries run the pipeline once and share the `Arc`.
    result_cache: SingleflightCache<QueryKey, Arc<QueryResult>>,
}

impl Prospector {
    /// Builds an engine over the signature graph of `api` (public members
    /// only, no mined examples).
    #[must_use]
    pub fn new(api: Api) -> Self {
        Prospector::with_config(api, GraphConfig::default())
    }

    /// Builds with explicit graph options.
    #[must_use]
    pub fn with_config(api: Api, config: GraphConfig) -> Self {
        let graph = JungloidGraph::from_api(&api, config);
        Prospector::from_parts(api, graph)
    }

    /// Wraps an engine around a pre-built graph (e.g. one loaded from
    /// disk).
    #[must_use]
    pub fn from_parts(api: Api, graph: JungloidGraph) -> Self {
        Prospector {
            api,
            graph,
            search: SearchConfig::default(),
            ranking: RankOptions::default(),
            cache_results: true,
            dist_cache: ShardedLru::new(DIST_CACHE_SHARDS, DIST_CACHE_CAP),
            result_cache: SingleflightCache::new(RESULT_CACHE_SHARDS, RESULT_CACHE_CAP),
        }
    }

    /// The API under query.
    #[must_use]
    pub fn api(&self) -> &Api {
        &self.api
    }

    /// The jungloid graph under query.
    #[must_use]
    pub fn graph(&self) -> &JungloidGraph {
        &self.graph
    }

    /// Point-in-time engine facts for serving introspection (`/status`):
    /// the graph epoch the caches are stamped against and current cache
    /// occupancy. Hit/miss *counters* live in the global metric registry
    /// (`engine.result_cache.hits` etc.); this surfaces the state only
    /// the engine can see.
    #[must_use]
    pub fn status(&self) -> EngineStatus {
        EngineStatus {
            graph_epoch: self.graph.epoch(),
            result_cache_entries: self.result_cache.len() as u64,
            dist_cache_entries: self.dist_cache.len() as u64,
        }
    }

    /// Splices mined example jungloids into the graph, optionally
    /// generalizing them first (§4.2). Returns how many distinct paths
    /// were added.
    ///
    /// Examples that call members the synthesizer may not suggest
    /// (protected members unless `include_protected`, private members
    /// always) are skipped: the corpus could legally call them from its own
    /// package, but the suggestion would not compile in the user's code.
    /// This reproduces the paper's Table 1 failure on
    /// `(AbstractGraphicalEditPart, ConnectionLayer)` — and flipping
    /// [`GraphConfig::include_protected`] implements the fix §7 proposes.
    ///
    /// # Errors
    ///
    /// Propagates [`ExampleError`] for ill-typed examples.
    pub fn add_examples(
        &mut self,
        examples: &[Vec<ElemJungloid>],
        generalize_first: bool,
    ) -> Result<usize, ExampleError> {
        let config = self.graph.config();
        let visible: Vec<Vec<ElemJungloid>> = examples
            .iter()
            .filter(|e| e.iter().all(|elem| self.elem_visible(elem, config)))
            .cloned()
            .collect();
        let prepared: Vec<Vec<ElemJungloid>> = if generalize_first {
            let _span = prospector_obs::stage("generalize");
            generalize(&visible)
        } else {
            visible
        };
        let mut added = 0;
        for e in &prepared {
            if self.graph.add_example(&self.api, e)? {
                added += 1;
            }
        }
        // The graph (and its CSR) changed shape: every cached distance
        // field is stale. Cached query results need no eager sweep — the
        // splice advanced the graph epoch, so their stamps no longer
        // match and each is dropped (and counted as an invalidation) on
        // its next lookup.
        self.dist_cache.clear();
        Ok(added)
    }

    /// The §4.3 extension: splices *parameter-mined* examples — chains
    /// ending in a call whose `Object`/`String` parameter the example
    /// feeds. With [`GraphConfig::restrict_weak_params`] set, these are
    /// the only way to synthesize code that passes values into such
    /// parameters, which removes the "any Object will do" inviable
    /// jungloids §4.3 describes.
    ///
    /// # Errors
    ///
    /// Propagates [`ExampleError`] for ill-typed examples.
    pub fn add_param_examples(
        &mut self,
        examples: &[Vec<ElemJungloid>],
        generalize_first: bool,
    ) -> Result<usize, ExampleError> {
        let config = self.graph.config();
        let visible: Vec<Vec<ElemJungloid>> = examples
            .iter()
            .filter(|e| e.iter().all(|elem| self.elem_visible(elem, config)))
            .cloned()
            .collect();
        let prepared: Vec<Vec<ElemJungloid>> = if generalize_first {
            let _span = prospector_obs::stage("generalize");
            crate::generalize::generalize_terminal(&visible)
        } else {
            visible
        };
        let mut added = 0;
        for e in &prepared {
            if self.graph.add_example(&self.api, e)? {
                added += 1;
            }
        }
        self.dist_cache.clear();
        Ok(added)
    }

    fn elem_visible(&self, elem: &ElemJungloid, config: crate::graph::GraphConfig) -> bool {
        use jungloid_apidef::Visibility;
        let vis = match *elem {
            ElemJungloid::Call { method, .. } => self.api.method(method).visibility,
            ElemJungloid::FieldAccess { field } => self.api.field(field).visibility,
            _ => return true,
        };
        match vis {
            Visibility::Public => true,
            Visibility::Protected => config.include_protected,
            Visibility::Private => false,
        }
    }

    /// The cached (or freshly built) distance field for `target`, plus
    /// whether this lookup was a cache hit.
    fn distances(&self, target: TyId) -> (Arc<DistanceField>, bool) {
        let (field, outcome) = self.dist_cache.get_or_insert_with(target, || {
            let field = DistanceField::towards(&self.graph, target);
            // Heat accounting folds the reached set in once per *build*
            // (cache hits re-use the same settled nodes), keeping the 0-1
            // BFS relaxation loop itself untouched.
            if crate::heat::enabled() {
                crate::heat::record_field(
                    self.graph.epoch(),
                    field.raw(),
                    self.graph.edge_count(),
                );
            }
            Arc::new(field)
        });
        if outcome.hit {
            prospector_obs::add("engine.dist_cache.hits", 1);
        } else {
            prospector_obs::add("engine.dist_cache.misses", 1);
            if outcome.evicted > 0 {
                prospector_obs::add("engine.dist_cache.evictions", outcome.evicted as u64);
            }
            prospector_obs::gauge_set("engine.dist_cache.entries", self.dist_cache.len() as u64);
        }
        (field, outcome.hit)
    }

    /// Answers an explicit query `(tin, tout)` (§2.1). `tin` may be
    /// `void`.
    ///
    /// # Errors
    ///
    /// Rejects primitive/`void` outputs and primitive inputs.
    pub fn query(&self, tin: TyId, tout: TyId) -> Result<QueryResult, QueryError> {
        self.query_with_trace(tin, tout, TraceId::next())
    }

    /// [`Prospector::query`] under a caller-allocated trace id — the
    /// form the batch fan-out uses so ids follow input order, and the
    /// form a server uses to report the id it logged.
    ///
    /// # Errors
    ///
    /// Rejects primitive/`void` outputs and primitive inputs.
    pub fn query_with_trace(
        &self,
        tin: TyId,
        tout: TyId,
        id: TraceId,
    ) -> Result<QueryResult, QueryError> {
        self.check_out(tout)?;
        if tin != self.api.types().void() && !self.api.types().is_reference(tin) {
            return Err(QueryError::NotAReferenceType {
                ty: self.api.types().display(tin),
                position: "input",
            });
        }
        if !self.cache_results {
            let result = self.run(&[(None, tin)], tout, id);
            crate::heat::record_query(tin, tout, true, result.truncation.truncated());
            return Ok(result);
        }
        // The key is the full query intent; the graph's state is carried
        // by the epoch stamp instead, so entries invalidate lazily when a
        // splice/load advances it. Mutations take `&mut self`, so the
        // epoch cannot move underneath an in-flight lookup.
        let key = QueryKey { tin, tout, search: self.search, ranking: self.ranking };
        let (lookup, invalidated) = self.result_cache.lookup(key, self.graph.epoch());
        if invalidated {
            prospector_obs::add("engine.result_cache.invalidations", 1);
        }
        let lease = match lookup {
            Lookup::Hit(cached) => {
                let result = self.replay_cached(&cached, id, false);
                crate::heat::record_query(tin, tout, false, result.truncation.truncated());
                return Ok(result);
            }
            Lookup::Shared(cached) => {
                let result = self.replay_cached(&cached, id, true);
                crate::heat::record_query(tin, tout, false, result.truncation.truncated());
                return Ok(result);
            }
            Lookup::Miss(lease) => lease,
        };
        // This caller leads: run the pipeline once; waiters collapsed
        // onto the flight receive the same Arc. If `run` panics, the
        // lease's drop guard abandons the flight so waiters retry rather
        // than hang.
        prospector_obs::add("engine.result_cache.misses", 1);
        let mut result = self.run(&[(None, tin)], tout, id);
        result.stats.result_cache_misses = 1;
        crate::heat::record_query(tin, tout, true, result.truncation.truncated());
        let evicted = lease.complete(Arc::new(result.clone()));
        if evicted > 0 {
            prospector_obs::add("engine.result_cache.evictions", evicted as u64);
        }
        prospector_obs::gauge_set("engine.result_cache.entries", self.result_cache.len() as u64);
        Ok(result)
    }

    /// Clones a cached result for one more caller: same suggestions, rank
    /// keys, and truncation byte-for-byte, but fresh per-query stats —
    /// the hit paid for none of the pipeline, so every cost counter is 0
    /// and only the hit marker (and the caller's own trace id) is set.
    fn replay_cached(&self, cached: &QueryResult, id: TraceId, shared: bool) -> QueryResult {
        if shared {
            prospector_obs::add("engine.result_cache.collapsed", 1);
        } else {
            prospector_obs::add("engine.result_cache.hits", 1);
        }
        let mut qspan = trace::span(id);
        qspan.count("cache", "result_cache_hit", 1);
        let mut result = cached.clone();
        result.stats =
            QueryStats { trace_id: id.0, result_cache_hits: 1, ..QueryStats::default() };
        let total = qspan.finish();
        if total > 0 {
            prospector_obs::metrics::histogram("query.latency_ns").record(total);
        }
        result
    }

    /// Answers a batch of explicit queries concurrently, fanning out
    /// across `std::thread::scope` workers that share the immutable CSR
    /// graph and the sharded distance cache. Worker count defaults to the
    /// machine's available parallelism (capped at the batch size).
    ///
    /// Results come back in input order, and each slot is exactly what
    /// [`Prospector::query`] would have produced for that pair — ranking
    /// runs per-query inside the workers, so serial and batched runs are
    /// byte-identical.
    #[must_use]
    pub fn query_batch(&self, queries: &[(TyId, TyId)]) -> Vec<BatchEntry> {
        let threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.query_batch_threads(queries, threads)
    }

    /// [`Prospector::query_batch`] with an explicit worker count
    /// (clamped to `1..=queries.len()`).
    #[must_use]
    pub fn query_batch_threads(&self, queries: &[(TyId, TyId)], threads: usize) -> Vec<BatchEntry> {
        let _span = prospector_obs::stage("batch");
        let threads = threads.clamp(1, queries.len().max(1));
        prospector_obs::add("engine.batch.calls", 1);
        prospector_obs::add("engine.batch.queries", queries.len() as u64);
        prospector_obs::gauge_set("engine.batch.threads", threads as u64);
        // Trace ids are allocated here, in input order, not inside the
        // workers: the id sequence of a batch is then a pure function of
        // the recorder seed, whatever the thread interleaving does.
        let ids: Vec<TraceId> = queries.iter().map(|_| TraceId::next()).collect();
        let mut slots: Vec<Option<BatchEntry>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, BatchEntry)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(tin, tout)) = queries.get(i) else { break };
                            let start = Instant::now();
                            let result = self.query_with_trace(tin, tout, ids[i]);
                            done.push((
                                i,
                                BatchEntry {
                                    tin,
                                    tout,
                                    trace_id: ids[i],
                                    result,
                                    time: start.elapsed(),
                                },
                            ));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, entry) in handle.join().expect("batch worker panicked") {
                    slots[i] = Some(entry);
                }
            }
        });
        let entries: Vec<BatchEntry> =
            slots.into_iter().map(|s| s.expect("every batch slot filled")).collect();
        let errors = entries.iter().filter(|e| e.result.is_err()).count();
        if errors > 0 {
            prospector_obs::add("engine.batch.errors", errors as u64);
        }
        entries
    }

    /// Content-assist query (§5): find code producing `tout` from any
    /// lexically visible variable, or from nothing (`void`).
    ///
    /// # Errors
    ///
    /// Rejects primitive/`void` outputs.
    pub fn assist(&self, visible: &[(&str, TyId)], tout: TyId) -> Result<QueryResult, QueryError> {
        self.check_out(tout)?;
        let _span = prospector_obs::stage("assist");
        prospector_obs::add("engine.assist.calls", 1);
        let mut sources: Vec<(Option<String>, TyId)> = Vec::new();
        for (name, ty) in visible {
            if self.api.types().is_reference(*ty) {
                sources.push((Some((*name).to_owned()), *ty));
            }
        }
        sources.push((None, self.api.types().void()));
        prospector_obs::add("engine.assist.sources", sources.len() as u64);
        // Attribute the fan-out before the single fused search: one
        // cached distance-field lookup answers, per sub-query source,
        // whether it can reach `tout` at all. The field this warms is the
        // one `run` uses, so the extra lookup is a guaranteed cache hit.
        {
            let (field, _) = self.distances(tout);
            let mut reachable: u64 = 0;
            for (_, ty) in &sources {
                let _sub = prospector_obs::stage("assist.source");
                if field.from(&self.graph, NodeId::Ty(*ty)) != u32::MAX {
                    reachable += 1;
                }
            }
            prospector_obs::add("engine.assist.reachable", reachable);
            prospector_obs::add("engine.assist.unreachable", sources.len() as u64 - reachable);
        }
        let mut result = self.run(&sources, tout, TraceId::next());
        for (name, ty) in visible {
            if self.api.types().is_subtype(*ty, tout) {
                result.already_available.push((*name).to_owned());
            }
        }
        prospector_obs::add(
            "engine.assist.already_available",
            result.already_available.len() as u64,
        );
        Ok(result)
    }

    /// Top-K view of the global heat table resolved against this
    /// engine's graph and API (empty if the table belongs to another
    /// graph epoch).
    #[must_use]
    pub fn heat_snapshot(&self, k: usize) -> crate::heat::HeatSnapshot {
        crate::heat::snapshot(&self.graph, &self.api, k)
    }

    /// Top-K view of the workload sketches with `(tin, tout)` names
    /// resolved against this engine's API.
    #[must_use]
    pub fn workload_snapshot(&self, k: usize) -> crate::heat::WorkloadSnapshot {
        crate::heat::workload_snapshot(&self.api, k)
    }

    fn check_out(&self, tout: TyId) -> Result<(), QueryError> {
        let kind = self.api.types().ty(tout);
        if !self.api.types().is_reference(tout) || matches!(kind, Ty::Null) {
            return Err(QueryError::NotAReferenceType {
                ty: self.api.types().display(tout),
                position: "output",
            });
        }
        Ok(())
    }

    fn run(&self, sources: &[(Option<String>, TyId)], tout: TyId, id: TraceId) -> QueryResult {
        // The flight-recorder span. When tracing is disabled (the
        // default) opening it costs one relaxed atomic load, every event
        // call below is a plain branch, and no clock is read.
        let mut qspan = trace::span(id);
        let tys: Vec<TyId> = sources.iter().map(|(_, t)| *t).collect();
        let search_timer = qspan.timer();
        let (outcome, cache_hit, relaxations) = {
            let _span = prospector_obs::stage("search");
            let (field, cache_hit) = self.distances(tout);
            let relaxations = if cache_hit { 0 } else { field.relaxations() };
            let outcome = SCRATCH.with(|scratch| {
                enumerate_with(
                    &self.graph,
                    &tys,
                    tout,
                    &field,
                    &self.search,
                    &mut scratch.borrow_mut(),
                )
            });
            (outcome, cache_hit, relaxations)
        };
        let SearchOutcome { jungloids, shortest, truncation, expansions } = outcome;
        let stats = QueryStats {
            trace_id: id.0,
            dist_cache_hits: u64::from(cache_hit),
            dist_cache_misses: u64::from(!cache_hit),
            dfs_expansions: expansions as u64,
            bfs_relaxations: relaxations,
            result_cache_hits: 0,
            result_cache_misses: 0,
        };
        let dur = qspan.span_event("search", "total", search_timer);
        if dur > 0 {
            prospector_obs::metrics::histogram("query.stage_ns.search").record(dur);
        }
        qspan.count("search", "dist_cache_hits", stats.dist_cache_hits);
        qspan.count("search", "dist_cache_misses", stats.dist_cache_misses);
        qspan.count("search", "bfs_relaxations", stats.bfs_relaxations);
        qspan.count("search", "dfs_expansions", stats.dfs_expansions);
        qspan.count("search", "paths_enumerated", jungloids.len() as u64);
        qspan.count("search", "truncation", truncation as u64);

        // Synthesize, rank, and dedupe by rendered code (distinct paths —
        // e.g. differing only in widening — can render identically).
        let synth_timer = qspan.timer();
        let mut best: BTreeMap<String, Suggestion> = BTreeMap::new();
        let mut snippets: u64 = 0;
        let mut dedup_drops: u64 = 0;
        {
            let _span = prospector_obs::stage("synth");
            for j in jungloids {
                let input_var = sources
                    .iter()
                    .find(|(name, t)| *t == j.source && name.is_some())
                    .and_then(|(name, _)| name.clone());
                let snippet = synthesize(&self.api, &j, input_var.as_deref());
                snippets += 1;
                let code = snippet.code();
                let key = rank_key(&self.api, &j, code.clone(), &self.ranking);
                let replace = match best.get(&code) {
                    Some(existing) => {
                        dedup_drops += 1;
                        existing.key > key
                    }
                    None => true,
                };
                if replace {
                    best.insert(
                        code.clone(),
                        Suggestion { jungloid: j, snippet, code, input_var, key },
                    );
                }
            }
        }
        prospector_obs::add("synth.snippets", snippets);
        prospector_obs::add("engine.dedup_drops", dedup_drops);
        let dur = qspan.span_event("synth", "total", synth_timer);
        if dur > 0 {
            prospector_obs::metrics::histogram("query.stage_ns.synth").record(dur);
        }
        qspan.count("synth", "snippets", snippets);
        qspan.count("synth", "dedup_drops", dedup_drops);

        // `best` is a BTreeMap so the pre-rank order (and therefore the
        // sort's comparison count, which the flight recorder attributes
        // to the query) is deterministic — and key ties break by code
        // instead of by hash-map iteration order.
        let mut suggestions: Vec<Suggestion> = best.into_values().collect();
        let comparisons = std::cell::Cell::new(0u64);
        let rank_timer = qspan.timer();
        {
            let _span = prospector_obs::stage("rank");
            suggestions.sort_by(|a, b| {
                comparisons.set(comparisons.get() + 1);
                a.key.cmp(&b.key)
            });
        }
        prospector_obs::add("rank.comparisons", comparisons.get());
        let dur = qspan.span_event("rank", "total", rank_timer);
        if dur > 0 {
            prospector_obs::metrics::histogram("query.stage_ns.rank").record(dur);
        }
        qspan.count("rank", "comparisons", comparisons.get());
        qspan.count("rank", "suggestions", suggestions.len() as u64);

        let total = qspan.finish();
        if total > 0 {
            prospector_obs::metrics::histogram("query.latency_ns").record(total);
        }
        QueryResult {
            suggestions: Arc::new(suggestions),
            shortest,
            truncation,
            already_available: Vec::new(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::ApiLoader;

    /// The paper's running example (§1): parsing an IFile into an AST.
    fn eclipse_mini() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "jdt.api",
                r"
                package org.eclipse.core.resources;
                public interface IFile { String getName(); }
                package org.eclipse.jdt.core;
                public interface ICompilationUnit {}
                public class JavaCore {
                    static ICompilationUnit createCompilationUnitFrom(org.eclipse.core.resources.IFile file);
                }
                package org.eclipse.jdt.core.dom;
                public class ASTNode {}
                public class CompilationUnit extends ASTNode {}
                public class AST {
                    static CompilationUnit parseCompilationUnit(org.eclipse.jdt.core.ICompilationUnit cu, boolean resolve);
                }
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    #[test]
    fn intro_example_rank_one() {
        let api = eclipse_mini();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let p = Prospector::new(api);
        let result = p.query(ifile, ast).unwrap();
        assert_eq!(result.shortest, Some(2));
        let top = &result.suggestions[0];
        assert_eq!(
            top.code,
            "AST.parseCompilationUnit(JavaCore.createCompilationUnitFrom(file), resolve)"
        );
        // grep-for-ASTNode fails (§1) because the return type is the
        // subclass CompilationUnit; the graph finds it through widening.
        assert_eq!(
            top.jungloid.concrete_output_ty(p.api()),
            p.api().types().resolve("CompilationUnit").unwrap()
        );
    }

    #[test]
    fn assist_finds_void_sources_and_matches_variables() {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "ui.api",
                r"
                package ui;
                public interface IEditorInput {}
                public interface IEditorPart { IEditorInput getEditorInput(); }
                public interface IDocumentProvider {}
                public class DocumentProviderRegistry {
                    static DocumentProviderRegistry getDefault();
                    IDocumentProvider getDocumentProvider(IEditorInput input);
                }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let part = api.types().resolve("IEditorPart").unwrap();
        let inp = api.types().resolve("IEditorInput").unwrap();
        let reg = api.types().resolve("DocumentProviderRegistry").unwrap();
        let p = Prospector::new(api);

        // §2.2: the free-variable query for DocumentProviderRegistry —
        // visible objects cannot produce one; the void query can.
        let result = p.assist(&[("ep", part), ("inp", inp)], reg).unwrap();
        assert_eq!(result.suggestions[0].code, "DocumentProviderRegistry.getDefault()");
        assert!(result.suggestions[0].input_var.is_none());
        assert!(result.already_available.is_empty());

        // And the document-provider query uses the matched variable name.
        let dp = p.api().types().resolve("IDocumentProvider").unwrap();
        let result = p.assist(&[("ep", part), ("inp", inp)], dp).unwrap();
        let top = &result.suggestions[0];
        assert!(top.code.contains("getDocumentProvider(inp)"), "got {}", top.code);
        assert_eq!(top.input_var.as_deref(), Some("inp"));
    }

    #[test]
    fn assist_reports_already_available() {
        let api = eclipse_mini();
        let ast = api.types().resolve("ASTNode").unwrap();
        let cu = api.types().resolve("CompilationUnit").unwrap();
        let p = Prospector::new(api);
        let result = p.assist(&[("unit", cu)], ast).unwrap();
        assert_eq!(result.already_available, vec!["unit".to_owned()]);
    }

    #[test]
    fn non_reference_queries_rejected() {
        let api = eclipse_mini();
        let void = api.types().void();
        let int = api.types().prim(jungloid_typesys::Prim::Int);
        let ifile = api.types().resolve("IFile").unwrap();
        let p = Prospector::new(api);
        assert!(p.query(ifile, void).is_err());
        assert!(p.query(ifile, int).is_err());
        assert!(p.query(int, ifile).is_err());
        // void as *input* is fine.
        assert!(p.query(void, ifile).is_ok());
    }

    #[test]
    fn unsatisfiable_query_is_empty_not_error() {
        let api = eclipse_mini();
        let ast = api.types().resolve("ASTNode").unwrap();
        let ifile = api.types().resolve("IFile").unwrap();
        let p = Prospector::new(api);
        let result = p.query(ast, ifile).unwrap();
        assert!(result.suggestions.is_empty());
        assert_eq!(result.shortest, None);
    }

    #[test]
    fn mined_examples_change_answers() {
        use jungloid_apidef::elem::elems_of_method;
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "sel.api",
                r"
                package ui;
                public interface ISelection {}
                public interface IStructuredSelection extends ISelection { Object getFirstElement(); }
                public class SelectionChangedEvent { ISelection getSelection(); }
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let event = api.types().resolve("SelectionChangedEvent").unwrap();
        let sel = api.types().resolve("ISelection").unwrap();
        let structured = api.types().resolve("IStructuredSelection").unwrap();
        let get_sel = elems_of_method(&api, api.lookup_instance_method(event, "getSelection", 0)[0])[0];

        let mut p = Prospector::new(api);
        // Without mining, the downcast query has no answer.
        assert!(p.query(event, structured).unwrap().suggestions.is_empty());

        p.add_examples(
            &[vec![get_sel, ElemJungloid::Downcast { from: sel, to: structured }]],
            false,
        )
        .unwrap();
        let result = p.query(event, structured).unwrap();
        assert_eq!(
            result.suggestions[0].code,
            "(IStructuredSelection) selectionChangedEvent.getSelection()"
        );
    }

    #[test]
    fn dedupe_keeps_best_ranked_duplicate() {
        // Two widening routes can render the same code; only one survives.
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "d.api",
                r"
                package d;
                public interface I {}
                public interface J extends I {}
                public class X implements J { Y make(); }
                public class Y implements J, I {}
                ",
            )
            .unwrap();
        let api = loader.finish().unwrap();
        let x = api.types().resolve("d.X").unwrap();
        let i = api.types().resolve("d.I").unwrap();
        let p = Prospector::new(api);
        let result = p.query(x, i).unwrap();
        // Y -> J -> I and Y -> I both render `x.make()`.
        assert_eq!(result.suggestions.len(), 1);
        assert_eq!(result.suggestions[0].code, "x.make()");
    }

    /// The acceptance pin for the flight recorder's disabled cost: a
    /// full query with tracing off publishes zero events, and enabling
    /// tracing changes nothing about the ranked output. This is the only
    /// core test that flips the global trace switch (the `event_count ==
    /// 0` assertion runs before the flip, so parallel tests — which never
    /// enable tracing — cannot race it).
    #[test]
    fn tracing_off_records_nothing_and_results_are_identical() {
        let api = eclipse_mini();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let mut p = Prospector::new(api);
        // Caching off: both runs must exercise the full pipeline (the
        // traced repeat would otherwise be a result-cache hit with no
        // search events to assert on).
        p.cache_results = false;

        assert!(!prospector_obs::trace::enabled(), "tracing is off by default");
        let baseline = p.query(ifile, ast).unwrap();
        assert_eq!(prospector_obs::trace::event_count(), 0, "disabled query published events");

        prospector_obs::trace::set_enabled(true);
        let traced = p.query(ifile, ast).unwrap();
        prospector_obs::trace::set_enabled(false);

        let codes = |r: &QueryResult| -> Vec<String> {
            r.suggestions.iter().map(|s| s.code.clone()).collect()
        };
        assert_eq!(codes(&baseline), codes(&traced), "tracing must not perturb ranking");
        assert!(prospector_obs::trace::event_count() > 0, "enabled query published a timeline");
        let id = prospector_obs::trace::TraceId(traced.stats.trace_id);
        let events = prospector_obs::trace::events_for(id);
        assert!(!events.is_empty(), "timeline retained under the query's id");
        assert!(events.iter().any(|e| e.stage == "query" && e.key == "total"));
        assert!(events.iter().any(|e| e.stage == "search" && e.key == "dfs_expansions"));
    }

    #[test]
    fn per_query_stats_split_cache_hits_from_misses() {
        let api = eclipse_mini();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let mut p = Prospector::new(api);

        let first = p.query(ifile, ast).unwrap();
        assert_eq!(first.stats.dist_cache_hits, 0);
        assert_eq!(first.stats.dist_cache_misses, 1);
        assert!(first.stats.bfs_relaxations > 0, "the miss paid for the BFS build");
        assert!(first.stats.dfs_expansions > 0);
        assert_eq!(first.stats.result_cache_hits, 0);
        assert_eq!(first.stats.result_cache_misses, 1);

        // A different search config is a different result-cache key, but
        // the same `tout` — so this query misses the result cache while
        // hitting the distance cache, and the stats must say so.
        p.search.extra_steps = 0;
        let second = p.query(ifile, ast).unwrap();
        assert_eq!(second.stats.result_cache_misses, 1);
        assert_eq!(second.stats.dist_cache_hits, 1);
        assert_eq!(second.stats.dist_cache_misses, 0);
        assert_eq!(second.stats.bfs_relaxations, 0, "dist hits charge no BFS work");
        assert!(second.stats.dfs_expansions > 0);
        assert_ne!(second.stats.trace_id, first.stats.trace_id, "each query gets its own id");

        // Repeating the original query is a result-cache hit: no pipeline
        // work at all, only the hit marker and a fresh trace id.
        p.search.extra_steps = 1;
        let third = p.query(ifile, ast).unwrap();
        assert_eq!(third.stats.result_cache_hits, 1);
        assert_eq!(third.stats.result_cache_misses, 0);
        assert_eq!(third.stats.dist_cache_hits + third.stats.dist_cache_misses, 0);
        assert_eq!(third.stats.dfs_expansions, 0);
        assert_eq!(third.stats.bfs_relaxations, 0);
        assert_ne!(third.stats.trace_id, first.stats.trace_id);
    }

    /// The acceptance pin for cached-hit determinism: a result-cache hit
    /// must be byte-identical — suggestion codes, rank keys, truncation,
    /// shortest length — to what the uncached pipeline produces for the
    /// same query, with only the per-query stats differing.
    #[test]
    fn result_cache_hit_is_byte_identical_to_the_pipeline() {
        let ids = |api: &Api| {
            (api.types().resolve("IFile").unwrap(), api.types().resolve("ASTNode").unwrap())
        };
        let cached_engine = Prospector::new(eclipse_mini());
        let mut raw_engine = Prospector::new(eclipse_mini());
        raw_engine.cache_results = false;

        let (ifile, ast) = ids(cached_engine.api());
        let miss = cached_engine.query(ifile, ast).unwrap();
        let hit = cached_engine.query(ifile, ast).unwrap();
        assert_eq!(hit.stats.result_cache_hits, 1, "second identical query must hit");
        let raw = raw_engine.query(ifile, ast).unwrap();
        assert_eq!(raw.stats.result_cache_misses, 0, "caching disabled leaves stats untouched");

        for other in [&miss, &raw] {
            assert_eq!(hit.shortest, other.shortest);
            assert_eq!(hit.truncation, other.truncation);
            assert_eq!(hit.suggestions.len(), other.suggestions.len());
            for (a, b) in hit.suggestions.iter().zip(other.suggestions.iter()) {
                assert_eq!(a.code, b.code);
                assert_eq!(a.key, b.key);
                assert_eq!(a.input_var, b.input_var);
                assert_eq!(a.jungloid.source, b.jungloid.source);
                assert_eq!(a.jungloid.elems, b.jungloid.elems);
            }
        }
    }

    #[test]
    fn batch_preallocates_trace_ids_in_input_order() {
        let api = eclipse_mini();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let cu = api.types().resolve("ICompilationUnit").unwrap();
        let p = Prospector::new(api);
        let queries = vec![(ifile, ast), (ifile, cu), (ifile, ast), (ifile, cu)];
        let batch = p.query_batch_threads(&queries, 4);
        assert_eq!(batch.len(), 4);
        for window in batch.windows(2) {
            assert!(
                window[0].trace_id < window[1].trace_id,
                "ids follow input order regardless of worker interleaving"
            );
        }
        for entry in &batch {
            let result = entry.result.as_ref().unwrap();
            assert_eq!(result.stats.trace_id, entry.trace_id.0);
        }
    }

    #[test]
    fn rank_where_is_one_based() {
        let api = eclipse_mini();
        let ifile = api.types().resolve("IFile").unwrap();
        let ast = api.types().resolve("ASTNode").unwrap();
        let p = Prospector::new(api);
        let result = p.query(ifile, ast).unwrap();
        assert_eq!(result.rank_where(|s| s.code.contains("parseCompilationUnit")), Some(1));
        assert_eq!(result.rank_where(|s| s.code.contains("nope")), None);
    }
}
