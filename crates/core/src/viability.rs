//! Viability checking (§4.1).
//!
//! *"We call such a jungloid **inviable**, by which we mean that it always
//! either throws an exception or returns null. A jungloid is **viable** if
//! there is at least one environment (i.e., combination of global program
//! state and input values) that makes the jungloid return normally."*
//!
//! This module implements that existential semantics over a *behavior
//! model*: a per-method/per-field map from signature to the set of dynamic
//! types the member can actually produce at run time (what the paper's
//! mined corpus knows implicitly and signatures don't). Execution
//! propagates the set of possible dynamic types through the chain; a
//! downcast filters the set; the jungloid is viable iff some possibility
//! survives to the end.
//!
//! The behavior model plays the role of "the run-time type system": it is
//! how the repository *scores* synthesis output (e.g. the viability rates
//! in the mining ablation), never an input to synthesis itself — exactly
//! like the paper, where viability is a property checked against reality,
//! not something the tool gets to see.

use std::collections::HashMap;

use jungloid_apidef::{Api, ElemJungloid, FieldId, MethodId};
use jungloid_typesys::TyId;

use crate::path::Jungloid;

/// A run-time behavior model: which dynamic types members really produce.
///
/// Members without an entry behave "as declared": they produce exactly
/// their static return type (sound for classes, optimistic for
/// interfaces).
#[derive(Clone, Debug, Default)]
pub struct Behavior {
    method_dynamics: HashMap<MethodId, Vec<TyId>>,
    field_dynamics: HashMap<FieldId, Vec<TyId>>,
    always_null: Vec<MethodId>,
}

impl Behavior {
    /// An empty model (everything behaves as declared).
    #[must_use]
    pub fn new() -> Self {
        Behavior::default()
    }

    /// Declares the set of dynamic types `method` can return.
    pub fn method_returns(&mut self, method: MethodId, dynamics: &[TyId]) -> &mut Self {
        self.method_dynamics.insert(method, dynamics.to_vec());
        self
    }

    /// Declares the set of dynamic types `field` can hold.
    pub fn field_holds(&mut self, field: FieldId, dynamics: &[TyId]) -> &mut Self {
        self.field_dynamics.insert(field, dynamics.to_vec());
        self
    }

    /// Declares that `method` returns null in every environment (the
    /// paper's other inviability source).
    pub fn method_always_null(&mut self, method: MethodId) -> &mut Self {
        self.always_null.push(method);
        self
    }
}

/// The result of existential execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Some environment makes the jungloid return normally; the possible
    /// dynamic types of the result are listed.
    Viable {
        /// Possible dynamic result types.
        dynamics: Vec<TyId>,
    },
    /// Every environment throws `ClassCastException` at the given step.
    CastFails {
        /// Index into the jungloid's elems.
        step: usize,
        /// The dynamic possibilities that reached the cast.
        reaching: Vec<TyId>,
        /// The cast target.
        target: TyId,
    },
    /// A step always returns null, so the chain cannot continue.
    NullAt {
        /// Index into the jungloid's elems.
        step: usize,
    },
}

impl Outcome {
    /// Whether the jungloid is viable (§4.1).
    #[must_use]
    pub fn is_viable(&self) -> bool {
        matches!(self, Outcome::Viable { .. })
    }
}

/// Executes `jungloid` existentially under `behavior`.
///
/// The input object's dynamic type may be any subtype of the source type
/// (including itself) — the caller controls the environment, so every
/// concrete possibility is allowed.
#[must_use]
pub fn execute(api: &Api, behavior: &Behavior, jungloid: &Jungloid) -> Outcome {
    // Possible dynamic types of the current value. For the input we take
    // the static type plus all of its subtypes (the ∃-environment).
    let mut dynamics: Vec<TyId> = possible_dynamics(api, jungloid.source);
    for (step, elem) in jungloid.elems.iter().enumerate() {
        match *elem {
            ElemJungloid::Widen { .. } => {}
            ElemJungloid::Downcast { to, .. } => {
                let reaching = dynamics.clone();
                dynamics.retain(|&d| api.types().is_subtype(d, to) || api.types().is_subtype(to, d));
                if dynamics.is_empty() {
                    return Outcome::CastFails { step, reaching, target: to };
                }
                // After a successful cast the value is (at least) `to`.
                dynamics.retain(|&d| api.types().is_subtype(d, to));
                if dynamics.is_empty() {
                    dynamics.push(to);
                }
            }
            ElemJungloid::Call { method, .. } => {
                if behavior.always_null.contains(&method) {
                    return Outcome::NullAt { step };
                }
                dynamics = match behavior.method_dynamics.get(&method) {
                    Some(ds) => ds.clone(),
                    None => possible_dynamics(api, api.method(method).ret),
                };
            }
            ElemJungloid::FieldAccess { field } => {
                dynamics = match behavior.field_dynamics.get(&field) {
                    Some(ds) => ds.clone(),
                    None => possible_dynamics(api, api.field(field).ty),
                };
            }
        }
    }
    Outcome::Viable { dynamics }
}

/// Fraction of `jungloids` that are viable under `behavior`.
#[must_use]
pub fn viability_rate(api: &Api, behavior: &Behavior, jungloids: &[&Jungloid]) -> f64 {
    if jungloids.is_empty() {
        return 1.0;
    }
    let viable = jungloids
        .iter()
        .filter(|j| execute(api, behavior, j).is_viable())
        .count();
    viable as f64 / jungloids.len() as f64
}

/// The dynamic possibilities of an *unconstrained* value of static type
/// `ty`: itself plus every strict subtype.
fn possible_dynamics(api: &Api, ty: TyId) -> Vec<TyId> {
    let mut out = vec![ty];
    out.extend(api.types().strict_subtypes(ty));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungloid_apidef::{ApiLoader, InputSlot};

    fn api() -> Api {
        let mut loader = ApiLoader::with_prelude();
        loader
            .add_source(
                "v.api",
                r"
                package v;
                public interface ISel { Object first(); }
                public interface IStructured extends ISel {}
                public class Viewer { ISel getSelection(); Object getInput(); }
                public class Watch {}
                public class Doc {}
                ",
            )
            .unwrap();
        loader.finish().unwrap()
    }

    fn call(api: &Api, class: &str, name: &str) -> (MethodId, ElemJungloid) {
        let c = api.types().resolve(class).unwrap();
        let m = api.lookup_instance_method(c, name, 0)[0];
        (m, ElemJungloid::Call { method: m, input: Some(InputSlot::Receiver) })
    }

    #[test]
    fn declared_behavior_makes_casts_viable_or_not() {
        let api = api();
        let viewer = api.types().resolve("Viewer").unwrap();
        let isel = api.types().resolve("ISel").unwrap();
        let istructured = api.types().resolve("IStructured").unwrap();
        let watch = api.types().resolve("Watch").unwrap();
        let (get_sel_m, get_sel) = call(&api, "Viewer", "getSelection");

        // viewer.getSelection() really returns IStructured.
        let mut behavior = Behavior::new();
        behavior.method_returns(get_sel_m, &[istructured]);

        let good = Jungloid::new(
            &api,
            viewer,
            vec![get_sel, ElemJungloid::Downcast { from: isel, to: istructured }],
        )
        .unwrap();
        assert!(execute(&api, &behavior, &good).is_viable());

        // Casting getInput()'s Object to Watch: without behavior evidence
        // the Object could be anything — ∃-viable. With evidence that
        // getInput only returns Doc, it is inviable.
        let (get_input_m, get_input) = call(&api, "Viewer", "getInput");
        let obj = api.types().object().unwrap();
        let bad = Jungloid::new(
            &api,
            viewer,
            vec![get_input, ElemJungloid::Downcast { from: obj, to: watch }],
        )
        .unwrap();
        assert!(execute(&api, &behavior, &bad).is_viable(), "no evidence: optimistic");
        let doc = api.types().resolve("Doc").unwrap();
        behavior.method_returns(get_input_m, &[doc]);
        let outcome = execute(&api, &behavior, &bad);
        assert!(!outcome.is_viable());
        assert!(matches!(outcome, Outcome::CastFails { step: 1, .. }));
    }

    #[test]
    fn always_null_is_inviable() {
        let api = api();
        let viewer = api.types().resolve("Viewer").unwrap();
        let isel = api.types().resolve("ISel").unwrap();
        let istructured = api.types().resolve("IStructured").unwrap();
        let (m, get_sel) = call(&api, "Viewer", "getSelection");
        let mut behavior = Behavior::new();
        behavior.method_always_null(m);
        let j = Jungloid::new(
            &api,
            viewer,
            vec![get_sel, ElemJungloid::Downcast { from: isel, to: istructured }],
        )
        .unwrap();
        assert_eq!(execute(&api, &behavior, &j), Outcome::NullAt { step: 0 });
    }

    #[test]
    fn chained_casts_narrow_the_set() {
        let api = api();
        let viewer = api.types().resolve("Viewer").unwrap();
        let isel = api.types().resolve("ISel").unwrap();
        let istructured = api.types().resolve("IStructured").unwrap();
        let (m, get_sel) = call(&api, "Viewer", "getSelection");
        let mut behavior = Behavior::new();
        // getSelection can return a plain ISel or an IStructured.
        behavior.method_returns(m, &[isel, istructured]);
        let j = Jungloid::new(
            &api,
            viewer,
            vec![get_sel, ElemJungloid::Downcast { from: isel, to: istructured }],
        )
        .unwrap();
        let Outcome::Viable { dynamics } = execute(&api, &behavior, &j) else {
            panic!("cast can succeed in the IStructured environment")
        };
        assert_eq!(dynamics, vec![istructured]);
    }

    #[test]
    fn viability_rate_counts() {
        let api = api();
        let viewer = api.types().resolve("Viewer").unwrap();
        let isel = api.types().resolve("ISel").unwrap();
        let istructured = api.types().resolve("IStructured").unwrap();
        let watch = api.types().resolve("Watch").unwrap();
        let doc = api.types().resolve("Doc").unwrap();
        let obj = api.types().object().unwrap();
        let (sel_m, get_sel) = call(&api, "Viewer", "getSelection");
        let (input_m, get_input) = call(&api, "Viewer", "getInput");
        let mut behavior = Behavior::new();
        behavior.method_returns(sel_m, &[istructured]).method_returns(input_m, &[doc]);

        let good = Jungloid::new(
            &api,
            viewer,
            vec![get_sel, ElemJungloid::Downcast { from: isel, to: istructured }],
        )
        .unwrap();
        let bad = Jungloid::new(
            &api,
            viewer,
            vec![get_input, ElemJungloid::Downcast { from: obj, to: watch }],
        )
        .unwrap();
        let rate = viability_rate(&api, &behavior, &[&good, &bad]);
        assert!((rate - 0.5).abs() < 1e-9);
        assert!((viability_rate(&api, &behavior, &[]) - 1.0).abs() < 1e-9);
    }
}
